"""Quickstart: locally private heavy hitters in a dozen lines.

Scenario: 60,000 users each hold one item from a domain of a million possible
values; a handful of items are genuinely popular.  The untrusted server never
sees anyone's true value:

1. the server *publishes* serializable public parameters (hash seeds, bucket
   counts, ε) — ``PublicParams.to_dict()`` is the payload clients download;
2. every user runs a *stateless client encoder* on her own device and ships a
   single differentially private report (a few dozen bits);
3. the server *absorbs* the report stream into a compact aggregate, and
   *finalizes* it into frequency estimates for the recovered popular items.

The one-shot ``protocol.run(values)`` used below is the simulation
convenience that performs exactly those three steps in-process (see
``examples/sharded_aggregation.py`` for driving the wire API explicitly with
K shard workers).

Run with::

    python examples/quickstart.py
"""

from repro import (
    HashtogramParams,
    PrivateExpanderSketch,
    planted_workload,
    score_heavy_hitters,
)

NUM_USERS = 60_000
DOMAIN_SIZE = 1 << 20      # |X| = ~1M possible items
EPSILON = 4.0              # per-user privacy budget
BETA = 0.05                # target failure probability


def main() -> None:
    # Synthetic population: three popular items holding 30% / 22% / 15% of the
    # users, everyone else holding effectively unique values.
    workload = planted_workload(
        num_users=NUM_USERS,
        domain_size=DOMAIN_SIZE,
        heavy_fractions=[0.30, 0.22, 0.15],
        rng=0,
    )
    print(f"planted heavy hitters (item -> true count): {workload.as_dict()}")

    # ----- the client/server wire API, in miniature --------------------------------
    # The same decomposition underlies every protocol in the library: the
    # server publishes parameters, each client encodes one report, the server
    # aggregates.  Here: one user's Hashtogram report, end to end.
    params = HashtogramParams.create(DOMAIN_SIZE, EPSILON, num_buckets=256,
                                     rng=0)
    payload = params.to_dict()                      # ship this to clients
    encoder = HashtogramParams.from_dict(payload).make_encoder()
    report = encoder.encode(workload.values[0], rng=42, user_index=0)
    print(f"\none user's wire report ({params.report_bits:.0f} bits): "
          f"{report.to_dict()}")

    # ----- full protocol, one-shot simulation ---------------------------------------
    protocol = PrivateExpanderSketch(domain_size=DOMAIN_SIZE, epsilon=EPSILON,
                                     beta=BETA)
    result = protocol.run(workload.values, rng=1)

    print(f"\nprotocol: {result.protocol}")
    print(f"users: {result.num_users}, privacy: epsilon = {result.epsilon}")
    print(f"communication per user: "
          f"{result.communication_bits_per_user():.1f} bits")
    print(f"output list size: {result.list_size}")

    print("\nrecovered heavy hitters (item, estimated count):")
    for item, estimate in result.top(5):
        true = workload.true_frequency(item)
        print(f"  {item:>8d}  estimate = {estimate:8.0f}   true = {true}")

    score = score_heavy_hitters(result.estimates, workload.values,
                                threshold=0.15 * NUM_USERS)
    print(f"\nrecall of items above the 15% threshold: {score.recall:.2f}")
    print(f"worst estimation error: {score.max_estimation_error:.0f} users "
          f"({100 * score.max_estimation_error / NUM_USERS:.2f}% of n)")

    # The result also carries the final frequency oracle, so any further item
    # can be queried after the fact (still covered by the same privacy budget).
    absent_item = 12_345
    print(f"\nestimate for an item nobody holds ({absent_item}): "
          f"{result.oracle.estimate(absent_item):.0f}")


if __name__ == "__main__":
    main()
