"""Apple-style new-word discovery with a frequency oracle and heavy hitters.

The second industrial deployment cited by the paper [33]: discover newly
trending words typed by users (for keyboard suggestions) without learning what
any individual typed.  This example shows the two-level workflow:

1. run the heavy-hitters protocol to *discover* trending words, then
2. use the Hashtogram frequency oracle directly to *track* an explicit watch
   list of words over time at higher accuracy (querying an oracle over known
   candidates needs no decoding machinery).

Run with::

    python examples/new_word_discovery.py
"""

from repro import HashtogramOracle, PrivateExpanderSketch, synthetic_word_dataset

NUM_USERS = 50_000
EPSILON = 4.0
TRENDING = ["rizzler", "skibidi", "delulu", "yeetish"]


def main() -> None:
    values, domain, trending_counts = synthetic_word_dataset(
        num_users=NUM_USERS, new_words=TRENDING, adoption=0.75, rng=3)
    print("trending words this week (ground truth, hidden from the server):")
    for word, count in sorted(trending_counts.items(), key=lambda kv: -kv[1]):
        print(f"  {word:<10s} typed by {count:>6d} users")

    # ----- stage 1: discovery ------------------------------------------------------
    protocol = PrivateExpanderSketch(domain_size=domain.domain_size,
                                     epsilon=EPSILON, beta=0.1)
    result = protocol.run(values, rng=4)
    discovered = []
    print("\ndiscovered words (heavy hitters over the full string domain):")
    for code, estimate in result.top(6):
        try:
            word = domain.decode(int(code))
        except ValueError:
            continue
        discovered.append(word)
        print(f"  {word:<10s} estimated {estimate:8.0f} users")

    # ----- stage 2: tracking a watch list with a plain frequency oracle --------------
    # A fresh day of data; this time the server only needs frequencies of the
    # words discovered above, so a single Hashtogram suffices (Theorem 3.7).
    new_values, _, new_counts = synthetic_word_dataset(
        num_users=NUM_USERS, new_words=TRENDING, adoption=0.55, rng=5)
    oracle = HashtogramOracle(domain_size=domain.domain_size, epsilon=EPSILON)
    oracle.collect(new_values, rng=6)

    print("\nnext-day tracking of the discovered watch list:")
    print(f"  (oracle error bound at beta=0.05: "
          f"+/- {oracle.expected_error(0.05):.0f} users)")
    for word in discovered:
        estimate = oracle.estimate(domain.encode(word))
        true = new_counts.get(word, 0)
        print(f"  {word:<10s} estimated {estimate:8.0f}   true {true:>6d}")


if __name__ == "__main__":
    main()
