"""Auditing group privacy in the local model (Section 4 of the paper).

A company runs an ε-LDP survey and is asked: "what does the protocol reveal
about a *household* of k people rather than a single person?"  The central-DP
answer is kε.  The paper's advanced grouposition (Theorem 4.2) shows the local
model does much better — about ε·sqrt(k) — and this example measures it:

* the empirical (1-δ)-quantile of the actual privacy loss of k randomized-
  response reports, versus
* the kε line and the advanced-grouposition curve,

followed by the max-information consequence (Theorem 4.5) that makes adaptive
reuse of LDP survey results safe.

Run with::

    python examples/group_privacy_audit.py
"""

from repro import GroupPrivacyAnalyzer, advanced_grouposition, ldp_max_information
from repro.accounting.composition import central_group_privacy
from repro.accounting.max_information import central_max_information
from repro.randomizers.randomized_response import BinaryRandomizedResponse

EPSILON = 0.2      # per-person survey budget
DELTA = 0.05       # group-privacy failure probability
GROUP_SIZES = [1, 4, 16, 64, 256, 1024]


def main() -> None:
    print(f"per-user randomizer: binary randomized response, epsilon = {EPSILON}\n")
    analyzer = GroupPrivacyAnalyzer(BinaryRandomizedResponse(EPSILON))

    header = (f"{'household size k':>16s}  {'measured loss':>13s}  "
              f"{'sqrt(k) bound (Thm 4.2)':>23s}  {'central bound k*eps':>19s}")
    print(header)
    print("-" * len(header))
    for k in GROUP_SIZES:
        estimate = analyzer.empirical_group_epsilon([0] * k, [1] * k, DELTA,
                                                    num_samples=30_000, rng=k)
        local_bound = advanced_grouposition(k, EPSILON, DELTA)
        central_bound, _ = central_group_privacy(k, EPSILON)
        print(f"{k:>16d}  {estimate.quantile:>13.3f}  {local_bound:>23.3f}  "
              f"{central_bound:>19.3f}")

    print("\nreading: the measured loss tracks the sqrt(k) curve; for a "
          "1024-person group the\nlocal model leaks an order of magnitude "
          "less than the naive k*eps accounting suggests.")

    # ----- the max-information consequence -----------------------------------------
    num_users = 100_000
    beta = 0.01
    ldp_bound = ldp_max_information(num_users, EPSILON, beta)
    central_bound = central_max_information(num_users, EPSILON)
    print(f"\nmax-information of the whole {num_users}-user protocol "
          f"(beta = {beta}):")
    print(f"  LDP bound (Theorem 4.5, any input distribution): "
          f"{ldp_bound:,.0f} nats")
    print(f"  central-DP bound (arbitrary distributions):      "
          f"{central_bound:,.0f} nats")
    print("  -> conclusions drawn adaptively from the LDP survey generalise "
          "with the stronger bound.")


if __name__ == "__main__":
    main()
