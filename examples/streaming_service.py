"""The streaming aggregation service, end to end in one process.

This example runs the full telemetry-service story of ``repro.server``
against an in-process asyncio server:

1. the operator samples public parameters and starts an
   :class:`~repro.server.AggregationServer` with a snapshot directory and a
   7-epoch retention window (think: one epoch per day, keep a week);
2. a fleet of clients streams epoch-tagged report batches at it over TCP —
   the engine's canonical chunk stream stands in for millions of devices;
3. queries are answered *live*, mid-ingestion, over any epoch window;
4. the server checkpoints a durable snapshot, is torn down, restored from
   the snapshot into a fresh server, and keeps collecting —
   bit-identically to a server that never went down.

Run with::

    PYTHONPATH=src python examples/streaming_service.py
"""

import asyncio
import tempfile

import numpy as np

from repro.engine import encode_stream
from repro.protocol import HashtogramParams
from repro.server import AggregationServer, AsyncAggregationClient

DOMAIN_SIZE = 1 << 16
EPSILON = 2.0
USERS_PER_EPOCH = 20_000
EPOCHS = 3
WINDOW = 7
HEAVY_ITEM = 4_242


def epoch_batches(params, epoch: int):
    """One epoch's simulated traffic: a planted heavy hitter plus noise."""
    values = np.random.default_rng(epoch).integers(0, DOMAIN_SIZE,
                                                   size=USERS_PER_EPOCH)
    values[: (epoch + 1) * 2_000] = HEAVY_ITEM  # heavier every epoch
    return list(encode_stream(params, values,
                              rng=np.random.default_rng(100 + epoch)))


async def main() -> None:
    snapshot_dir = tempfile.mkdtemp(prefix="repro-snapshots-")
    params = HashtogramParams.create(DOMAIN_SIZE, EPSILON, num_buckets=256,
                                     rng=0)

    print(f"--- day 1-{EPOCHS}: ingest with live queries ---")
    server = AggregationServer(params, window=WINDOW,
                               snapshot_dir=snapshot_dir)
    host, port = await server.start()
    client = await AsyncAggregationClient.connect(host, port)
    assert await client.hello() == params     # clients fetch the parameters

    for epoch in range(EPOCHS):
        await client.send_stream(epoch_batches(params, epoch), epoch=epoch)
        await client.sync()
        latest = (await client.query([HEAVY_ITEM], window=1))[0]
        overall = (await client.query([HEAVY_ITEM]))[0]
        print(f"epoch {epoch}: planted item ~{latest:8.0f} this epoch, "
              f"~{overall:8.0f} across the window")

    snapshot_path = await client.snapshot()
    stats = await client.stats()
    print(f"snapshot written: {snapshot_path} "
          f"({stats['reports_absorbed']} reports, epochs {stats['epochs']})")
    pre_crash = await client.query(list(range(64)))
    await client.close()
    await server.stop()

    print("--- crash, restore, keep collecting ---")
    restored = AggregationServer.restore(snapshot_path,
                                         snapshot_dir=snapshot_dir)
    host, port = await restored.start()
    client = await AsyncAggregationClient.connect(host, port)
    post_restore = await client.query(list(range(64)))
    assert np.array_equal(pre_crash, post_restore)
    print(f"restored {await client.sync()} reports; estimates bit-identical "
          f"to the pre-crash server: {np.array_equal(pre_crash, post_restore)}")

    await client.send_stream(epoch_batches(params, EPOCHS), epoch=EPOCHS)
    await client.sync()
    newest = (await client.query([HEAVY_ITEM], window=1))[0]
    print(f"epoch {EPOCHS} (post-restore): planted item ~{newest:8.0f}")
    await client.shutdown()
    await client.close()


if __name__ == "__main__":
    asyncio.run(main())
