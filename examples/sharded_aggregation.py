"""Sharded server-side aggregation through the wire API.

A production LDP collector does not see the population as one array: millions
of client reports arrive interleaved at whatever ingestion worker happens to
be closest, and the workers' partial aggregates are merged later.  This
example drives exactly that topology for the Hashtogram frequency oracle and
for the full PrivateExpanderSketch heavy-hitters protocol:

1. the server samples public parameters once and publishes ``to_dict()``;
2. clients encode their reports (here: one vectorized ``encode_batch`` call,
   standing in for millions of independent ``encode`` calls);
3. the report stream is scattered across K shard aggregators;
4. shard states are merged — the merge is commutative, associative, and
   *exact* (integer arithmetic), so the merged estimate equals single-server
   aggregation bit for bit;
5. ``finalize()`` turns the merged aggregate into a fitted estimator.

Run with::

    python examples/sharded_aggregation.py
"""

import numpy as np

from repro import (
    HashtogramParams,
    PrivateExpanderSketch,
    merge_aggregators,
    planted_workload,
)

NUM_USERS = 40_000
DOMAIN_SIZE = 1 << 20
EPSILON = 4.0
NUM_SHARDS = 4


def sharded_frequency_oracle(workload) -> None:
    print(f"--- Hashtogram over {NUM_SHARDS} shards ---")
    params = HashtogramParams.create(DOMAIN_SIZE, EPSILON, num_buckets=256,
                                     rng=0)
    payload = params.to_dict()                       # published to clients
    print(f"published parameters: {len(str(payload))} serialized chars, "
          f"{params.report_bits:.0f} bits per report")

    # Clients encode.  In a real deployment every user calls encode() on her
    # own device; encode_batch is the simulation of those n independent calls.
    encoder = HashtogramParams.from_dict(payload).make_encoder()
    batch = encoder.encode_batch(workload.values, rng=1)

    # Reports land on K independent ingestion workers in arbitrary chunks.
    shards = [params.make_aggregator() for _ in range(NUM_SHARDS)]
    for shard, part in zip(shards, batch.split(NUM_SHARDS), strict=True):
        shard.absorb_batch(part)

    # Merging is exact: compare against one server absorbing everything.
    merged = merge_aggregators(shards)
    single = params.make_aggregator().absorb_batch(batch)
    queries = list(workload.heavy_elements) + [12_345]
    sharded_estimates = merged.finalize().estimate_many(queries)
    single_estimates = single.finalize().estimate_many(queries)
    assert np.array_equal(sharded_estimates, single_estimates)
    print("merged K-shard aggregate == single-server aggregate (bit for bit)")

    for item, estimate in zip(queries, sharded_estimates, strict=True):
        print(f"  item {item:>8d}: estimate = {estimate:9.1f}   "
              f"true = {workload.true_frequency(item)}")


def sharded_heavy_hitters(workload) -> None:
    print(f"\n--- PrivateExpanderSketch over {NUM_SHARDS} shards ---")
    protocol = PrivateExpanderSketch(domain_size=DOMAIN_SIZE, epsilon=EPSILON)
    wire = protocol.public_params(NUM_USERS, rng=2)

    batch = wire.make_encoder().encode_batch(workload.values, rng=3)
    shards = [wire.make_aggregator() for _ in range(NUM_SHARDS)]
    for shard, part in zip(shards, batch.split(NUM_SHARDS), strict=True):
        shard.absorb_batch(part)
    result = merge_aggregators(shards).finalize()

    print(f"recovered {result.list_size} candidates; top 5:")
    for item, estimate in result.top(5):
        print(f"  item {item:>8d}: estimate = {estimate:9.0f}   "
              f"true = {workload.true_frequency(item)}")


def main() -> None:
    workload = planted_workload(num_users=NUM_USERS, domain_size=DOMAIN_SIZE,
                                heavy_fractions=[0.3, 0.2, 0.12], rng=7)
    print(f"planted heavy hitters: {workload.as_dict()}\n")
    sharded_frequency_oracle(workload)
    sharded_heavy_hitters(workload)


if __name__ == "__main__":
    main()
