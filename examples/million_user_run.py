"""A million simulated users through the multiprocess engine.

This is the ROADMAP's "heavy traffic" scenario on laptop hardware: one
million users encode Hashtogram reports for a 2^20-element domain, the
engine spreads the chunk plan over a process pool, per-worker aggregators
merge exactly, and the finalized oracle answers queries — with output
bit-identical to a single-core run by construction.

Run with::

    python examples/million_user_run.py [num_users] [workers]

Defaults: 1,000,000 users and ``os.cpu_count()`` workers.  Pass ``--verify``
as a final argument to additionally replay the run on 1 worker and assert
bit-exact agreement (doubles the runtime).
"""

import os
import sys

import numpy as np

from repro import HashtogramParams, run_simulation, zipf_workload
from repro.analysis.metrics import true_frequencies

DOMAIN_SIZE = 1 << 20
EPSILON = 1.0
SEED = 0


def main(argv) -> None:
    positional = [a for a in argv if a != "--verify"]
    verify = "--verify" in argv
    num_users = int(positional[0]) if positional else 1_000_000
    workers = int(positional[1]) if len(positional) > 1 else (os.cpu_count() or 1)

    gen = np.random.default_rng(SEED)
    print(f"generating a Zipf workload of {num_users:,} users ...")
    values = zipf_workload(num_users, DOMAIN_SIZE, support=10_000, rng=gen)

    # Public randomness: sampled once, published to every client.
    params = HashtogramParams.create(DOMAIN_SIZE, EPSILON,
                                     num_buckets=1_024, rng=gen)
    print(f"published parameters: {params.report_bits:.0f} bits per report, "
          f"{params.num_repetitions} repetitions x {params.num_buckets} buckets")

    # The chunk plan and its client seeds are drawn from `gen` up front, so
    # the run below is bit-identical for ANY worker count.
    seed_state = gen.bit_generator.state
    result = run_simulation(params, values, rng=gen, workers=workers)
    print(f"engine: {workers} worker(s), {result.num_chunks} chunks, "
          f"encode+ingest {result.ingest_s:.2f}s + merge {result.merge_s:.3f}s "
          f"= {result.reports_per_s:,.0f} reports/s")

    oracle = result.finalize()
    truth = true_frequencies(values)
    top = sorted(truth.items(), key=lambda kv: -kv[1])[:5]
    estimates = oracle.estimate_many([x for x, _ in top])
    print("top-5 estimates:")
    for (item, count), estimate in zip(top, estimates, strict=True):
        print(f"  item {item:>8d}: estimate = {estimate:10.1f}   true = {count}")

    if verify:
        replay_gen = np.random.default_rng(SEED)
        replay_gen.bit_generator.state = seed_state
        serial = run_simulation(params, values, rng=replay_gen, workers=1)
        assert np.array_equal(serial.finalize().estimate_many([x for x, _ in top]),
                              estimates)
        print("verified: 1-worker replay is bit-identical")


if __name__ == "__main__":
    main(sys.argv[1:])
