"""Private median and quantile estimation (the application the intro motivates).

The paper notes that LDP heavy-hitters / frequency-oracle machinery is the
workhorse behind other local-model analyses such as median estimation.  This
example estimates the median and quartiles of a sensitive numeric attribute
(say, a latency measurement or an age) under ε-LDP, using the hierarchical
range oracle built from this library's frequency oracles.

Run with::

    python examples/private_median.py
"""

import numpy as np

from repro import PrivateQuantileEstimator

NUM_USERS = 50_000
DOMAIN = 1024          # values are integers in [0, 1024)
EPSILON = 2.0


def main() -> None:
    rng = np.random.default_rng(42)
    # A bimodal sensitive attribute: most users around 300, a heavy tail near 800.
    values = np.concatenate([
        rng.normal(300, 40, size=int(0.7 * NUM_USERS)),
        rng.normal(800, 60, size=NUM_USERS - int(0.7 * NUM_USERS)),
    ])
    values = np.clip(values, 0, DOMAIN - 1).astype(np.int64)

    estimator = PrivateQuantileEstimator(domain_size=DOMAIN, epsilon=EPSILON)
    estimator.collect(values, rng=7)

    print(f"n = {NUM_USERS} users, epsilon = {EPSILON}, domain = [0, {DOMAIN})")
    print(f"range-query error bound (beta = 0.05): "
          f"+/- {estimator.oracle.expected_range_error(0.05):.0f} users\n")

    quantile_targets = [0.1, 0.25, 0.5, 0.75, 0.9]
    private = estimator.quantiles(quantile_targets)
    print(f"{'quantile':>9s}  {'private estimate':>16s}  {'true value':>10s}  "
          f"{'rank error':>10s}")
    for q in quantile_targets:
        true_value = float(np.quantile(values, q))
        rank_error = estimator.rank_error(values, q)
        print(f"{q:>9.2f}  {private[q]:>16d}  {true_value:>10.0f}  "
              f"{rank_error:>10.0f}")

    print(f"\nprivate median = {estimator.median()}, "
          f"true median = {np.median(values):.0f}")
    print("every user sent a single constant-size report; the server never "
          "saw an individual value.")


if __name__ == "__main__":
    main()
