"""From approximate to pure local privacy with GenProt (Section 6).

A team has deployed an (ε, δ)-LDP histogram protocol based on the Gaussian
mechanism and is asked by compliance to provide a *pure* ε'-DP guarantee (no
δ failure mass) — without rebuilding the client.  GenProt (Theorem 6.1) does
exactly that: wrap the existing local randomizer, publish T input-independent
candidate reports per user, and have each user send only the index of a
rejection-sampled candidate (a few bits).  The result is purely 10ε-private
and statistically indistinguishable from the original protocol's output.

The example wraps a Gaussian histogram randomizer, checks the transformed
report size and privacy, and compares the histogram estimated from the
original reports with the one estimated from the GenProt surrogates.

Run with::

    python examples/approx_to_pure.py
"""

import numpy as np

from repro import GenProt
from repro.randomizers.laplace import GaussianHistogramRandomizer

EPSILON = 0.25          # Theorem 6.1 needs epsilon <= 1/4
DELTA = 1e-9
NUM_USERS = 4_000
DOMAIN = 4              # a small categorical survey question


def main() -> None:
    rng = np.random.default_rng(0)
    base = GaussianHistogramRandomizer(EPSILON, DELTA, DOMAIN)
    genprot = GenProt(base, beta=0.05)

    print(f"base protocol: Gaussian histogram randomizer, "
          f"(epsilon, delta) = ({EPSILON}, {DELTA})")
    print(f"transformed guarantee: pure {genprot.transformed_epsilon}-LDP")
    print(f"candidates per user T = {genprot.candidates_for(NUM_USERS)}; "
          f"report size = {genprot.report_bits(NUM_USERS)} bits "
          "(versus a full noisy vector before)")
    print(f"Theorem 6.1 utility loss bound (total variation): "
          f"{genprot.utility_bound(NUM_USERS):.4f}")
    print(f"theorem preconditions satisfied: "
          f"{genprot.theorem_conditions_hold(NUM_USERS)}\n")

    # A skewed categorical population.
    values = rng.choice(DOMAIN, size=NUM_USERS, p=[0.45, 0.3, 0.2, 0.05])
    true_histogram = np.bincount(values, minlength=DOMAIN)

    original_reports = np.stack([base.randomize(int(v), rng) for v in values])
    original_estimate = base.unbiased_histogram(original_reports)

    surrogate_reports = np.stack(genprot.surrogate_reports(
        [int(v) for v in values], rng))
    transformed_estimate = base.unbiased_histogram(surrogate_reports)

    print(f"{'answer':>8s}  {'true':>8s}  {'(eps,delta) estimate':>20s}  "
          f"{'pure GenProt estimate':>21s}")
    for v in range(DOMAIN):
        print(f"{v:>8d}  {true_histogram[v]:>8d}  "
              f"{original_estimate[v]:>20.0f}  {transformed_estimate[v]:>21.0f}")

    worst_original = np.abs(original_estimate - true_histogram).max()
    worst_transformed = np.abs(transformed_estimate - true_histogram).max()
    print(f"\nworst-case histogram error: original {worst_original:.0f}, "
          f"GenProt {worst_transformed:.0f}")
    print("-> the pure protocol pays (essentially) nothing in accuracy, "
          "confirming that approximate\n   local privacy buys no additional "
          "utility over pure local privacy (Section 6).")

    loss = genprot.empirical_index_privacy(0, 1, num_trials=2_000, rng=rng)
    print(f"\nMonte-Carlo privacy audit of the transmitted index: "
          f"worst observed loss {loss:.2f} "
          f"(bound {genprot.transformed_epsilon:.2f})")


if __name__ == "__main__":
    main()
