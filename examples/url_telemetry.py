"""Chrome-style URL telemetry: discover popular home pages without seeing them.

This reproduces the motivating application of the paper's introduction (and of
RAPPOR [12]): each browser installation reports its home-page URL under local
differential privacy, and the vendor wants the list of popular home pages.
The domain is *the space of all bounded-length URL strings* — far too large to
enumerate — which is exactly the regime the PrivateExpanderSketch protocol is
designed for (server time O~(n), not O(|X|)).

The example also runs the RAPPOR baseline on the same reports budget to show
its structural limitation: RAPPOR can only *confirm* candidates it already
knows, it cannot discover new strings.

Run with::

    python examples/url_telemetry.py
"""

from repro import PrivateExpanderSketch, RapporHeavyHitters, synthetic_url_dataset

NUM_USERS = 60_000
EPSILON = 4.0


def main() -> None:
    values, domain, popular = synthetic_url_dataset(
        num_users=NUM_USERS, num_popular=5, popular_mass=0.8, rng=7)
    print(f"string domain size |X| = {domain.domain_size:.3e} "
          f"(all URLs up to {domain.max_length} characters)")
    print("actually popular home pages (hidden from the server):")
    for url, count in sorted(popular.items(), key=lambda kv: -kv[1]):
        print(f"  {url:<16s} {count:>6d} users")

    # ----- the paper's protocol: discovers the strings from scratch ----------------
    protocol = PrivateExpanderSketch(domain_size=domain.domain_size,
                                     epsilon=EPSILON, beta=0.1)
    result = protocol.run(values, rng=8)

    print("\nPrivateExpanderSketch discoveries (decoded back to strings):")
    for code, estimate in result.top(8):
        try:
            url = domain.decode(int(code))
        except ValueError:
            url = f"<undecodable id {code}>"
        marker = "*" if url in popular else " "
        print(f"  {marker} {url:<16s} estimated {estimate:8.0f} users")
    print("  (* = genuinely popular)")

    # ----- the RAPPOR baseline: needs a candidate dictionary -----------------------
    candidates = [domain.encode(url) for url in popular]        # the "known" list
    candidates += [domain.encode(u) for u in ("news.net", "mail.org")]
    rappor = RapporHeavyHitters(domain_size=domain.domain_size, epsilon=EPSILON,
                                candidates=candidates, num_bits=256)
    rappor_result = rappor.run(values, rng=9)
    print("\nRAPPOR baseline (can only score the candidate dictionary):")
    for code, estimate in rappor_result.sorted_items():
        print(f"    {domain.decode(int(code)):<16s} estimated {estimate:8.0f} users")
    print("  -> a URL missing from the dictionary can never be discovered by "
          "RAPPOR;\n     the hashing + list-recovery machinery of the paper "
          "removes that limitation.")


if __name__ == "__main__":
    main()
