"""Tests for heavy-hitter scoring metrics (Definition 3.1 semantics)."""

import pytest

from repro.analysis.metrics import (
    empirical_failure_rate,
    frequency_estimation_errors,
    heavy_elements,
    mean_squared_frequency_error,
    score_heavy_hitters,
    true_frequencies,
    worst_case_frequency_error,
)


DATA = [1] * 50 + [2] * 30 + [3] * 5 + [9] * 15


class TestGroundTruthHelpers:
    def test_true_frequencies(self):
        freq = true_frequencies(DATA)
        assert freq == {1: 50, 2: 30, 3: 5, 9: 15}

    def test_heavy_elements(self):
        assert heavy_elements(DATA, 15) == [1, 2, 9]
        assert heavy_elements(DATA, 100) == []

    def test_frequency_estimation_errors(self):
        errors = frequency_estimation_errors({1: 45.0, 7: 3.0}, DATA)
        assert errors == {1: 5.0, 7: 3.0}


class TestScoreHeavyHitters:
    def test_perfect_output(self):
        estimates = {1: 50.0, 2: 30.0, 9: 15.0}
        score = score_heavy_hitters(estimates, DATA, threshold=15)
        assert score.recall == 1.0
        assert score.succeeded
        assert score.max_estimation_error == 0.0
        assert score.missed_heavy == ()
        assert score.list_size == 3
        assert score.false_positive_mass == 0.0

    def test_missing_heavy_element(self):
        estimates = {1: 50.0, 2: 30.0}
        score = score_heavy_hitters(estimates, DATA, threshold=15)
        assert score.missed_heavy == (9,)
        assert score.recall == pytest.approx(2 / 3)
        assert not score.succeeded
        # 9 has frequency 15, so detection threshold becomes 16.
        assert score.detection_threshold == 16.0

    def test_estimation_error_and_false_positives(self):
        estimates = {1: 40.0, 1000: 12.0}
        score = score_heavy_hitters(estimates, DATA, threshold=45)
        assert score.max_estimation_error == pytest.approx(12.0)
        assert score.false_positive_mass == pytest.approx(12.0)

    def test_no_heavy_elements_means_recall_one(self):
        score = score_heavy_hitters({}, DATA, threshold=1000)
        assert score.recall == 1.0
        assert score.succeeded

    def test_empty_estimates(self):
        score = score_heavy_hitters({}, DATA, threshold=15)
        assert score.max_estimation_error == 0.0
        assert score.recall == 0.0


class TestOracleMetrics:
    def test_worst_case_error(self):
        estimates = {1: 48.0, 2: 33.0}
        worst = worst_case_frequency_error(estimates, DATA, query_set=[1, 2, 3])
        assert worst == pytest.approx(5.0)  # element 3 estimated as 0, truth 5

    def test_mean_squared_error(self):
        estimates = {1: 48.0}
        mse = mean_squared_frequency_error(estimates, DATA, query_set=[1, 3])
        assert mse == pytest.approx((4.0 + 25.0) / 2)

    def test_empty_query_set(self):
        assert mean_squared_frequency_error({}, DATA, []) == 0.0


class TestFailureRate:
    def test_failure_rate(self):
        good = score_heavy_hitters({1: 50.0, 2: 30.0, 9: 15.0}, DATA, 15)
        bad = score_heavy_hitters({}, DATA, 15)
        assert empirical_failure_rate([good, good, bad, bad]) == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_failure_rate([])
