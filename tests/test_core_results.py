"""Tests for HeavyHitterResult."""

import pytest

from repro.core.results import HeavyHitterResult
from repro.utils.timer import ResourceMeter


def make_result():
    meter = ResourceMeter()
    meter.add_communication(1_000)
    return HeavyHitterResult(
        estimates={5: 120.0, 9: 340.5, 2: 80.0},
        protocol="test",
        num_users=100,
        epsilon=1.0,
        meter=meter,
    )


class TestViews:
    def test_sorted_items(self):
        result = make_result()
        assert result.sorted_items() == [(9, 340.5), (5, 120.0), (2, 80.0)]

    def test_top(self):
        result = make_result()
        assert result.top(2) == [(9, 340.5), (5, 120.0)]
        assert result.top(0) == []
        with pytest.raises(ValueError):
            result.top(-1)

    def test_above(self):
        result = make_result()
        assert result.above(100.0) == [(9, 340.5), (5, 120.0)]

    def test_estimate_of_defaults_to_zero(self):
        result = make_result()
        assert result.estimate_of(9) == 340.5
        assert result.estimate_of(12345) == 0.0

    def test_list_size(self):
        assert make_result().list_size == 3

    def test_candidates_default_to_estimates(self):
        result = make_result()
        assert sorted(result.candidates) == [2, 5, 9]

    def test_explicit_candidates_preserved(self):
        result = HeavyHitterResult(estimates={1: 2.0}, protocol="p", num_users=10,
                                   epsilon=1.0, candidates=[1, 7, 9])
        assert result.candidates == [1, 7, 9]


class TestAccounting:
    def test_communication_per_user(self):
        result = make_result()
        assert result.communication_bits_per_user() == pytest.approx(10.0)

    def test_as_dict(self):
        flattened = make_result().as_dict()
        assert flattened["protocol"] == "test"
        assert flattened["list_size"] == 3
        assert flattened["communication_bits"] == 1_000.0
