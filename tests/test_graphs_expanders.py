"""Tests for repro.graphs.expanders: regular expander construction and mixing lemma."""

import networkx as nx
import pytest

from repro.graphs.expanders import (
    expander_mixing_lower_bound,
    neighbor_map,
    random_regular_expander,
    second_eigenvalue,
)


class TestSecondEigenvalue:
    def test_complete_graph(self):
        # K_n has eigenvalues n-1 and -1 (n-1 times): second largest magnitude is 1.
        assert second_eigenvalue(nx.complete_graph(6)) == pytest.approx(1.0, abs=1e-8)

    def test_disconnected_graph_has_large_lambda2(self):
        graph = nx.disjoint_union(nx.complete_graph(4), nx.complete_graph(4))
        # Two copies of K_4: eigenvalue 3 has multiplicity 2.
        assert second_eigenvalue(graph) == pytest.approx(3.0, abs=1e-8)

    def test_single_vertex(self):
        assert second_eigenvalue(nx.empty_graph(1)) == 0.0


class TestRandomRegularExpander:
    def test_regularity_and_spectral_bound(self):
        expander = random_regular_expander(64, 8, spectral_ratio=0.7, rng=0)
        assert expander.num_vertices == 64
        assert expander.degree == 8
        for m in range(64):
            assert len(expander.neighbors(m)) == 8
            assert m not in expander.neighbors(m)
        assert expander.lambda2 <= 0.7 * 8
        assert expander.spectral_ratio == pytest.approx(expander.lambda2 / 8)

    def test_symmetry_of_neighbor_lists(self):
        expander = random_regular_expander(32, 4, rng=1)
        for u in range(32):
            for v in expander.neighbors(u):
                assert u in expander.neighbors(v)

    def test_neighbor_index_round_trip(self):
        expander = random_regular_expander(20, 4, rng=2)
        for u in range(20):
            for v in expander.neighbors(u):
                assert expander.neighbors(u)[expander.neighbor_index(u, v)] == v
        with pytest.raises(ValueError):
            expander.neighbor_index(0, [v for v in range(20)
                                        if v != 0 and v not in expander.neighbors(0)][0])

    def test_small_vertex_count_falls_back_to_complete_graph(self):
        expander = random_regular_expander(4, 6, rng=0)
        assert expander.degree == 3
        for u in range(4):
            assert set(expander.neighbors(u)) == set(range(4)) - {u}

    def test_odd_degree_odd_vertices_adjusted(self):
        # n*d odd is impossible for a regular graph; the constructor bumps d.
        expander = random_regular_expander(15, 3, rng=0)
        assert expander.degree in (3, 4)
        assert expander.num_vertices == 15

    def test_to_networkx_round_trip(self):
        expander = random_regular_expander(16, 4, rng=3)
        graph = expander.to_networkx()
        assert graph.number_of_nodes() == 16
        degrees = [d for _, d in graph.degree()]
        assert all(d == 4 for d in degrees)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            random_regular_expander(0, 3)
        with pytest.raises(ValueError):
            random_regular_expander(10, 0)


class TestEdgeBoundaryAndMixing:
    def test_edge_boundary_complete_graph(self):
        expander = random_regular_expander(6, 8, rng=0)  # complete graph K_6
        assert expander.edge_boundary_size([0, 1]) == 2 * 4

    def test_mixing_lemma_holds_empirically(self):
        expander = random_regular_expander(64, 8, spectral_ratio=0.7, rng=5)
        subset = list(range(16))
        bound = expander_mixing_lower_bound(expander.degree, expander.lambda2,
                                            len(subset), expander.num_vertices)
        assert expander.edge_boundary_size(subset) >= bound - 1e-9

    def test_mixing_lemma_edge_cases(self):
        assert expander_mixing_lower_bound(4, 1.0, 0, 10) == 0.0
        with pytest.raises(ValueError):
            expander_mixing_lower_bound(4, 1.0, 11, 10)

    def test_neighbor_map(self):
        expander = random_regular_expander(8, 2, rng=0)
        mapping = neighbor_map(expander)
        assert set(mapping) == set(range(8))
        assert all(len(v) == expander.degree for v in mapping.values())
