"""Tests for repro.utils.rng: generator coercion and child spawning."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    bernoulli,
    choice_weighted,
    random_odd_integer,
    sample_distinct,
    spawn_generators,
)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, 10)
        b = as_generator(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")


class TestSpawnGenerators:
    def test_count_and_independence(self):
        children = spawn_generators(0, 3)
        assert len(children) == 3
        draws = [g.integers(0, 2**32) for g in children]
        assert len(set(draws)) == 3

    def test_deterministic_given_seed(self):
        a = [g.integers(0, 1000) for g in spawn_generators(9, 4)]
        b = [g.integers(0, 1000) for g in spawn_generators(9, 4)]
        assert a == b

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestSamplingHelpers:
    def test_random_odd_integer_is_odd(self):
        for seed in range(10):
            assert random_odd_integer(seed, 16) % 2 == 1

    def test_sample_distinct(self):
        values = sample_distinct(3, 0, 100, 20)
        assert len(set(values.tolist())) == 20
        assert values.min() >= 0 and values.max() < 100

    def test_sample_distinct_range_too_small(self):
        with pytest.raises(ValueError):
            sample_distinct(3, 0, 5, 10)

    def test_bernoulli_scalar_and_vector(self):
        assert bernoulli(0, 1.0) == 1
        assert bernoulli(0, 0.0) == 0
        draws = bernoulli(1, 0.5, size=1000)
        assert draws.shape == (1000,)
        assert 300 < draws.sum() < 700

    def test_choice_weighted_prefers_heavy_weight(self):
        gen = np.random.default_rng(2)
        picks = [choice_weighted(gen, ["a", "b"], [0.99, 0.01]) for _ in range(200)]
        assert picks.count("a") > 150

    def test_choice_weighted_rejects_zero_weights(self):
        with pytest.raises(ValueError):
            choice_weighted(0, ["a"], [0.0])
