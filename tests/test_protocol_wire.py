"""Tests for the client/server wire API (:mod:`repro.protocol`).

The three contracts the redesign promises:

(a) the legacy one-shot ``collect()`` / ``run()`` entry points are *exactly*
    the wire path: the engine's canonical chunk stream
    (``encode_concat``: per-chunk seeds pre-drawn from the caller's
    generator) fed through ``absorb_batch → finalize`` under the same seed
    reproduces them bit for bit, including with K merged shards;
(b) ``merge`` is commutative and associative, and K-shard aggregation equals
    single-shard aggregation exactly;
(c) ``PublicParams`` serialization round-trips through JSON, and reports are
    individually serializable.
"""

import json

import numpy as np
import pytest

from repro.baselines.rappor_hh import RapporHeavyHitters
from repro.baselines.single_hash import SingleHashHeavyHitters
from repro.core.heavy_hitters import PrivateExpanderSketch
from repro.engine import encode_concat
from repro.frequency.count_mean_sketch import CountMeanSketchOracle
from repro.frequency.explicit import ExplicitHistogramOracle
from repro.frequency.hashtogram import HashtogramOracle
from repro.protocol import (
    CountMeanSketchParams,
    ExplicitHistogramParams,
    HashtogramParams,
    PublicParams,
    RapporParams,
    Report,
    ReportBatch,
    merge_aggregators,
)


def _wire_estimates(params, values, seed, num_shards):
    """encode the canonical chunk stream, scatter over shards, merge, finalize."""
    batch = encode_concat(params, values, np.random.default_rng(seed))
    shards = [params.make_aggregator() for _ in range(num_shards)]
    for shard, part in zip(shards, batch.split(num_shards), strict=True):
        shard.absorb_batch(part)
    return merge_aggregators(shards).finalize()


# --------------------------------------------------------------------------------------
# (a) wire path == legacy collect(), bit for bit, under a fixed rng
# --------------------------------------------------------------------------------------

class TestLegacyCollectEquivalence:
    @pytest.mark.parametrize("randomizer", ["hadamard", "oue", "krr"])
    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_explicit_matches_collect(self, rng, randomizer, num_shards):
        domain = 32
        values = rng.integers(0, domain, size=4_000)
        oracle = ExplicitHistogramOracle(domain, 1.0, randomizer=randomizer)
        oracle.collect(values, np.random.default_rng(7))
        params = ExplicitHistogramParams(domain, 1.0, randomizer)
        fitted = _wire_estimates(params, values, seed=7, num_shards=num_shards)
        assert np.array_equal(fitted.histogram(), oracle.histogram())
        assert fitted.num_users == oracle.num_users

    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_hashtogram_matches_collect(self, rng, num_shards):
        domain = 1 << 18
        values = rng.integers(0, domain, size=6_000)
        oracle = HashtogramOracle(domain, 1.0, num_buckets=64)
        oracle.collect(values, np.random.default_rng(11))
        # collect() first samples the published hashes, then encodes the
        # engine's chunk stream — replay the same generator through the same
        # two steps.
        gen = np.random.default_rng(11)
        params = HashtogramParams.create(domain, 1.0, num_buckets=64, rng=gen)
        batch = encode_concat(params, values, gen)
        shards = [params.make_aggregator() for _ in range(num_shards)]
        for shard, part in zip(shards, batch.split(num_shards), strict=True):
            shard.absorb_batch(part)
        fitted = merge_aggregators(shards).finalize()
        queries = rng.integers(0, domain, size=100)
        assert np.array_equal(fitted.estimate_many(queries),
                              oracle.estimate_many(queries))

    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_cms_matches_collect(self, rng, num_shards):
        domain = 1 << 14
        values = rng.integers(0, domain, size=5_000)
        oracle = CountMeanSketchOracle(domain, 2.0, num_hashes=8, num_buckets=64)
        oracle.collect(values, np.random.default_rng(13))
        gen = np.random.default_rng(13)
        params = CountMeanSketchParams.create(domain, 2.0, num_hashes=8,
                                              num_buckets=64, rng=gen)
        batch = encode_concat(params, values, gen)
        shards = [params.make_aggregator() for _ in range(num_shards)]
        for shard, part in zip(shards, batch.split(num_shards), strict=True):
            shard.absorb_batch(part)
        fitted = merge_aggregators(shards).finalize()
        queries = rng.integers(0, domain, size=100)
        assert np.array_equal(fitted.estimate_many(queries),
                              oracle.estimate_many(queries))

    def test_expander_sketch_matches_run(self, rng):
        domain = 1 << 16
        values = rng.integers(0, domain, size=8_000)
        values[:2_000] = 4_242
        protocol = PrivateExpanderSketch(domain_size=domain, epsilon=4.0)
        result = protocol.run(values, rng=np.random.default_rng(3))
        # run() consumes the generator as: sample wire params, then encode
        # the engine's canonical chunk stream.
        gen = np.random.default_rng(3)
        wire = protocol.public_params(values.size, rng=gen)
        batch = encode_concat(wire, values, gen)
        shards = [wire.make_aggregator() for _ in range(4)]
        for shard, part in zip(shards, batch.split(4), strict=True):
            shard.absorb_batch(part)
        sharded = merge_aggregators(shards).finalize()
        assert sharded.estimates == result.estimates
        assert sharded.candidates == result.candidates

    def test_single_hash_matches_run(self, rng):
        domain = 1 << 16
        values = rng.integers(0, domain, size=8_000)
        values[:2_500] = 31_337
        protocol = SingleHashHeavyHitters(domain_size=domain, epsilon=4.0,
                                          num_repetitions=2)
        result = protocol.run(values, rng=np.random.default_rng(5))
        gen = np.random.default_rng(5)
        wire = protocol.public_params(values.size, rng=gen)
        batch = encode_concat(wire, values, gen)
        shards = [wire.make_aggregator() for _ in range(4)]
        for shard, part in zip(shards, batch.split(4), strict=True):
            shard.absorb_batch(part)
        sharded = merge_aggregators(shards).finalize()
        assert sharded.estimates == result.estimates

    def test_rappor_matches_run(self, rng):
        domain = 512
        values = rng.integers(0, domain, size=3_000)
        values[:1_000] = 77
        protocol = RapporHeavyHitters(domain_size=domain, epsilon=3.0,
                                      candidates=[77, 5, 300], num_bits=64)
        result = protocol.run(values, rng=np.random.default_rng(9))
        gen = np.random.default_rng(9)
        wire = protocol.public_params(rng=gen)
        batch = encode_concat(wire, values, gen)
        shards = [wire.make_aggregator() for _ in range(4)]
        for shard, part in zip(shards, batch.split(4), strict=True):
            shard.absorb_batch(part)
        aggregate = merge_aggregators(shards).finalize()
        estimates = aggregate.estimate_candidates([77, 5, 300])
        # The sharded decode reproduces run()'s estimate of the heavy candidate
        # exactly; the others fell below run()'s noise floor and were dropped.
        assert result.estimates[77] == float(estimates[0])


# --------------------------------------------------------------------------------------
# (b) merge algebra: commutative, associative, K shards == 1 shard
# --------------------------------------------------------------------------------------

class TestMergeAlgebra:
    def _three_shards(self, rng):
        params = HashtogramParams.create(1 << 12, 1.0, num_buckets=32, rng=0)
        values = rng.integers(0, 1 << 12, size=3_000)
        batch = params.make_encoder().encode_batch(values, rng)
        parts = batch.split(3)
        shards = [params.make_aggregator().absorb_batch(p) for p in parts]
        return params, batch, shards

    def test_merge_commutes(self, rng):
        params, _, (a, b, c) = self._three_shards(rng)
        queries = np.arange(200)
        ab = a.merge(b).merge(c).finalize().estimate_many(queries)
        ba = c.merge(b).merge(a).finalize().estimate_many(queries)
        assert np.array_equal(ab, ba)

    def test_merge_associates(self, rng):
        params, _, (a, b, c) = self._three_shards(rng)
        queries = np.arange(200)
        left = (a.merge(b)).merge(c).finalize().estimate_many(queries)
        right = a.merge(b.merge(c)).finalize().estimate_many(queries)
        assert np.array_equal(left, right)

    def test_k_shards_equal_single_shard(self, rng):
        params, batch, shards = self._three_shards(rng)
        single = params.make_aggregator().absorb_batch(batch)
        queries = np.arange(200)
        assert np.array_equal(merge_aggregators(shards).finalize()
                              .estimate_many(queries),
                              single.finalize().estimate_many(queries))

    def test_merge_rejects_mismatched_params(self, rng):
        a = HashtogramParams.create(1 << 12, 1.0, num_buckets=32,
                                    rng=0).make_aggregator()
        b = HashtogramParams.create(1 << 12, 1.0, num_buckets=32,
                                    rng=1).make_aggregator()
        with pytest.raises(ValueError):
            a.merge(b)
        with pytest.raises(TypeError):
            a.merge(ExplicitHistogramParams(16, 1.0).make_aggregator())

    def test_merge_leaves_operands_untouched(self, rng):
        params, _, (a, b, c) = self._three_shards(rng)
        before = a.num_reports
        a.merge(b)
        assert a.num_reports == before


# --------------------------------------------------------------------------------------
# (c) serialization round-trips
# --------------------------------------------------------------------------------------

class TestSerialization:
    def _roundtrip(self, params):
        payload = json.loads(json.dumps(params.to_dict()))
        rebuilt = PublicParams.from_dict(payload)
        assert rebuilt == params
        assert rebuilt.to_dict() == params.to_dict()
        return rebuilt

    def test_explicit_roundtrip(self):
        for randomizer in ("hadamard", "oue", "krr"):
            self._roundtrip(ExplicitHistogramParams(40, 1.5, randomizer))

    def test_hashtogram_roundtrip(self):
        params = HashtogramParams.create(1 << 20, 1.0, num_buckets=128, rng=0)
        rebuilt = self._roundtrip(params)
        # The reconstructed hashes are behaviourally identical.
        xs = np.arange(1_000)
        for mine, theirs in zip(params.bucket_hashes, rebuilt.bucket_hashes,
                                strict=True):
            assert np.array_equal(mine(xs), theirs(xs))

    def test_cms_roundtrip(self):
        self._roundtrip(CountMeanSketchParams.create(1 << 16, 2.0,
                                                     num_hashes=4,
                                                     num_buckets=64, rng=3))

    def test_rappor_roundtrip(self):
        params = RapporParams.create(1 << 10, 2.0, num_bits=64, rng=1)
        rebuilt = self._roundtrip(params)
        assert np.array_equal(params.randomizer.bloom_bits(17),
                              rebuilt.randomizer.bloom_bits(17))

    def test_expander_sketch_roundtrip(self, rng):
        protocol = PrivateExpanderSketch(domain_size=1 << 16, epsilon=4.0)
        params = protocol.public_params(8_000, rng=0)
        rebuilt = self._roundtrip(params)
        # The reconstructed code derives identical stage-1 cells.
        values = rng.integers(0, 1 << 16, size=500)
        gen_a, gen_b = np.random.default_rng(4), np.random.default_rng(4)
        batch_a = params.make_encoder().encode_batch(values, gen_a)
        batch_b = rebuilt.make_encoder().encode_batch(values, gen_b)
        for key in batch_a.columns:
            assert np.array_equal(batch_a.columns[key], batch_b.columns[key])

    def test_single_hash_roundtrip(self):
        protocol = SingleHashHeavyHitters(domain_size=1 << 16, epsilon=2.0,
                                          num_repetitions=2)
        self._roundtrip(protocol.public_params(5_000, rng=2))

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            PublicParams.from_dict({"protocol": "telepathy"})

    def test_report_roundtrips_through_json(self):
        params = HashtogramParams.create(1 << 12, 1.0, num_buckets=32, rng=0)
        report = params.make_encoder().encode(99, rng=1, user_index=5)
        payload = json.loads(json.dumps(report.to_dict()))
        rebuilt = Report.from_dict(payload)
        aggregator = params.make_aggregator()
        aggregator.absorb(rebuilt)
        assert aggregator.num_reports == 1


# --------------------------------------------------------------------------------------
# streaming ingestion + report-cost accounting
# --------------------------------------------------------------------------------------

class TestStreamingIngestion:
    def test_absorb_stream_equals_batch(self, rng):
        params = CountMeanSketchParams.create(1 << 10, 1.0, num_hashes=4,
                                              num_buckets=16, rng=0)
        values = rng.integers(0, 1 << 10, size=200)
        batch = params.make_encoder().encode_batch(values, rng)
        streamed = params.make_aggregator()
        for report in batch:
            streamed.absorb(report)
        batched = params.make_aggregator().absorb_batch(batch)
        queries = np.arange(50)
        assert np.array_equal(streamed.finalize().estimate_many(queries),
                              batched.finalize().estimate_many(queries))

    def test_absorb_rejects_foreign_reports(self):
        params = ExplicitHistogramParams(16, 1.0)
        other = CountMeanSketchParams.create(16, 1.0, num_hashes=2,
                                             num_buckets=4, rng=0)
        report = other.make_encoder().encode(3, rng=1)
        with pytest.raises(ValueError):
            params.make_aggregator().absorb(report)

    def test_encode_batch_split_concat_roundtrip(self, rng):
        params = ExplicitHistogramParams(16, 1.0)
        batch = params.make_encoder().encode_batch(rng.integers(0, 16, 100), rng)
        rejoined = ReportBatch.concat(batch.split(7))
        for key in batch.columns:
            assert np.array_equal(batch.columns[key], rejoined.columns[key])


class TestReportCostAccounting:
    """Every retrofitted oracle reports real wire/report sizes (satellite 2)."""

    def test_frequency_oracles_report_costs(self, rng):
        values = rng.integers(0, 1 << 12, size=2_000)
        oracles = [ExplicitHistogramOracle(1 << 12, 1.0),
                   HashtogramOracle(1 << 12, 1.0),
                   CountMeanSketchOracle(1 << 12, 1.0, num_hashes=4)]
        for oracle in oracles:
            oracle.collect(values, rng)
            assert np.isfinite(oracle.report_bits) and oracle.report_bits > 0
            assert oracle.server_state_size > 0

    def test_heavy_hitters_report_costs(self, rng):
        values = rng.integers(0, 1 << 16, size=6_000)
        values[:2_000] = 123
        for protocol in (PrivateExpanderSketch(1 << 16, 4.0),
                         SingleHashHeavyHitters(1 << 16, 4.0,
                                                num_repetitions=2)):
            result = protocol.run(values, rng=np.random.default_rng(1))
            assert result.metadata["report_bits"] > 0
            assert result.metadata["server_state_size"] > 0
            assert result.meter.communication_bits > 0

    def test_rappor_report_costs(self, rng):
        values = rng.integers(0, 256, size=1_000)
        protocol = RapporHeavyHitters(256, 2.0, candidates=[1, 2], num_bits=32)
        result = protocol.run(values, rng=rng)
        assert result.metadata["report_bits"] == 32.0
        assert result.metadata["server_state_size"] == 32

    def test_wire_report_bits_match_oracle_report_bits(self):
        assert (ExplicitHistogramParams(100, 1.0, "oue").report_bits
                == ExplicitHistogramOracle(100, 1.0, "oue").report_bits)
        assert (ExplicitHistogramParams(100, 1.0, "hadamard").report_bits
                == ExplicitHistogramOracle(100, 1.0, "hadamard").report_bits)


# --------------------------------------------------------------------------------------
# batch estimation plumbing (satellite 1)
# --------------------------------------------------------------------------------------

class TestResultEstimateMany:
    def test_listed_and_unlisted_queries(self, rng):
        domain = 1 << 16
        values = rng.integers(0, domain, size=6_000)
        values[:2_000] = 4_242
        protocol = PrivateExpanderSketch(domain_size=domain, epsilon=4.0)
        result = protocol.run(values, rng=np.random.default_rng(2))
        queries = [4_242, 1, 2]
        plain = result.estimate_many(queries)
        assert plain[0] == result.estimate_of(4_242)
        assert plain[1] == result.estimate_of(1)
        via_oracle = result.estimate_many(queries, use_oracle=True)
        assert via_oracle[0] == result.estimate_of(4_242)
        # Unlisted queries flow through the retained oracle's batch path.
        assert via_oracle[1] == pytest.approx(result.oracle.estimate(1))
        assert result.estimate_many([]).size == 0
