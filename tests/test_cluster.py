"""Tests for the sharded cluster serving tier (:mod:`repro.cluster`).

The contract under test is the cluster version of the repo's north-star
guarantee: a K-shard cluster — router + K independent shard server
processes — answers every query **bit-identically** to the offline
:func:`repro.engine.run_simulation` reference under the same seed, for
every registered protocol, through any frame interleaving, and through a
``SIGKILL``-ed shard that is restarted from its snapshot and replayed from
the router's journal.  Also covered: the published pairwise-independent
:class:`~repro.engine.partition.ShardPartition`, the shard-routing header
in both wire formats, and the ``state`` (state-pull) frame the router's
query path is built on.
"""

import asyncio
import threading
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.baselines.single_hash import SingleHashHeavyHitters
from repro.cluster import ClusterRouter, ClusterSupervisor
from repro.cluster.router import _ShardLink
from repro.core.heavy_hitters import PrivateExpanderSketch
from repro.engine import ShardPartition, encode_stream, make_plan, run_simulation
from repro.engine.partition import ROUTE_PRIME
from repro.protocol import (
    CountMeanSketchParams,
    ExplicitHistogramParams,
    HashtogramParams,
    RapporParams,
)
from repro.protocol.binary import (
    BinaryFormatError,
    decode_reports_payload,
    encode_reports_payload,
    peek_reports_header,
)
from repro.protocol.wire import load_child_state
from repro.server import (
    AggregationClient,
    AggregationServer,
    ServerError,
    ShardUnavailable,
    decode_frame,
)
from repro.server.framing import encode_reports_frame
from repro.server.window import WindowedAggregator

DOMAIN = 1 << 12


# --------------------------------------------------------------------------------------
# the published shard partition
# --------------------------------------------------------------------------------------

class TestShardPartition:
    def test_deterministic_and_in_range(self):
        partition = ShardPartition.sample(4, rng=0)
        keys = [0, 1, 4096, 123_456, ROUTE_PRIME - 1, ROUTE_PRIME + 5]
        first = [partition.shard_of(k) for k in keys]
        second = [partition.shard_of(k) for k in keys]
        assert first == second
        assert all(0 <= s < 4 for s in first)

    def test_serialization_round_trip(self):
        partition = ShardPartition.sample(5, rng=7)
        clone = ShardPartition.from_dict(partition.to_dict())
        assert clone == partition
        assert [clone.shard_of(k) for k in range(50)] == \
               [partition.shard_of(k) for k in range(50)]

    def test_covers_every_shard(self):
        partition = ShardPartition.sample(3, rng=0)
        shards = {partition.shard_of(k * 1024) for k in range(200)}
        assert shards == {0, 1, 2}

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardPartition.sample(0, rng=0)

    def test_chunk_route_key_is_first_user_index(self):
        params = ExplicitHistogramParams(64, 1.0)
        plan = make_plan(params, 5000, rng=0, chunk_size=1024)
        assert [c.route_key for c in plan] == [c.start for c in plan]


# --------------------------------------------------------------------------------------
# the shard-routing header on reports frames
# --------------------------------------------------------------------------------------

def _small_batch(n=64, seed=0):
    params = HashtogramParams.create(DOMAIN, 1.0, num_buckets=16, rng=0)
    gen = np.random.default_rng(seed)
    values = gen.integers(0, DOMAIN, size=n)
    return params, params.make_encoder().encode_batch(values, gen)


class TestRoutedFrames:
    def test_binary_route_header_round_trip(self):
        params, batch = _small_batch()
        payload = encode_reports_payload(batch, epoch=5, route=4096)
        header = peek_reports_header(payload)
        assert header == {"epoch": 5, "route": 4096, "seq": None,
                          "num_reports": len(batch),
                          "protocol": params.protocol}
        epoch, decoded = decode_reports_payload(payload)
        assert epoch == 5
        plain = encode_reports_payload(batch, epoch=5)
        _, reference = decode_reports_payload(plain)
        for key in reference.columns:
            assert np.array_equal(decoded.columns[key], reference.columns[key])

    def test_binary_unrouted_header_peeks_none(self):
        _, batch = _small_batch()
        header = peek_reports_header(encode_reports_payload(batch, epoch=2))
        assert header["route"] is None
        assert header["num_reports"] == len(batch)

    def test_negative_route_keys_survive(self):
        _, batch = _small_batch()
        payload = encode_reports_payload(batch, route=-7)
        assert peek_reports_header(payload)["route"] == -7

    def test_unknown_flag_bits_rejected(self):
        _, batch = _small_batch()
        payload = bytearray(encode_reports_payload(batch))
        payload[3] = 0x04  # an undefined flag bit
        with pytest.raises(BinaryFormatError, match="unknown header flags"):
            decode_reports_payload(bytes(payload))
        with pytest.raises(BinaryFormatError, match="unknown header flags"):
            peek_reports_header(bytes(payload))

    def test_json_route_field(self):
        _, batch = _small_batch()
        frame = encode_reports_frame(batch, epoch=3, wire_format="json",
                                     route=11)
        message = decode_frame(frame[4:])
        assert message["type"] == "reports"
        assert message["route"] == 11
        assert message["epoch"] == 3

    def test_json_frame_omits_route_by_default(self):
        _, batch = _small_batch()
        message = decode_frame(encode_reports_frame(batch)[4:])
        assert "route" not in message


# --------------------------------------------------------------------------------------
# in-process cluster harness (real shard subprocesses, router on a thread)
# --------------------------------------------------------------------------------------

@contextmanager
def running_cluster(params, num_shards, base_dir, **router_kwargs):
    """A live cluster: supervised shard subprocesses + router event loop."""
    supervisor = ClusterSupervisor(params, num_shards, base_dir)
    supervisor.start()
    router = ClusterRouter(params, supervisor=supervisor, rng=0,
                           **router_kwargs)
    started = threading.Event()
    address = {}

    def run() -> None:
        async def main() -> None:
            address["hp"] = await router.start("127.0.0.1", 0)
            started.set()
            await router.serve_until_stopped()
        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        assert started.wait(30), "cluster router failed to start"
        host, port = address["hp"]
        yield supervisor, router, host, port
        try:
            with AggregationClient(host, port) as client:
                client.shutdown()
        except OSError:
            pass  # already stopped by the test body
        thread.join(30)
    finally:
        supervisor.stop()


def _routed_stream(params, values, plan_seed, chunk_size):
    """The canonical chunk stream plus each chunk's published route key."""
    batches = list(encode_stream(params, values,
                                 rng=np.random.default_rng(plan_seed),
                                 chunk_size=chunk_size))
    routes, start = [], 0
    for batch in batches:
        routes.append(start)
        start += len(batch)
    return batches, routes


def _workload(params, num_users, seed=3):
    gen = np.random.default_rng(seed)
    values = gen.integers(0, params.domain_size, size=num_users)
    values[: num_users // 4] = params.domain_size // 2  # a planted heavy hitter
    return values


def _cluster_case(name):
    """Public parameters for every registered wire protocol."""
    num_users = 600
    if name == "explicit":
        return ExplicitHistogramParams(64, 1.0, "hadamard")
    if name == "hashtogram":
        return HashtogramParams.create(DOMAIN, 1.0, num_buckets=16, rng=0)
    if name == "cms":
        return CountMeanSketchParams.create(DOMAIN, 1.0, num_hashes=4,
                                            num_buckets=16, rng=0)
    if name == "rappor":
        return RapporParams.create(256, 2.0, num_bits=64, num_hashes=2, rng=0)
    if name == "expander_sketch":
        sketch = PrivateExpanderSketch(domain_size=1 << 16, epsilon=4.0)
        return sketch.public_params(num_users, rng=np.random.default_rng(3))
    if name == "single_hash":
        single = SingleHashHeavyHitters(domain_size=1 << 16, epsilon=4.0,
                                        num_repetitions=2)
        return single.public_params(num_users, rng=np.random.default_rng(5))
    raise AssertionError(name)


CLUSTER_PROTOCOLS = ["explicit", "hashtogram", "cms", "rappor",
                     "expander_sketch", "single_hash"]


@pytest.mark.cluster
class TestClusterBitIdentity:
    @pytest.mark.parametrize("name", CLUSTER_PROTOCOLS)
    def test_cluster_matches_offline_engine(self, tmp_path, name):
        params = _cluster_case(name)
        values = _workload(params, 600)
        plan_seed = 7
        offline = run_simulation(params, values,
                                 rng=np.random.default_rng(plan_seed),
                                 chunk_size=128).finalize()
        batches, routes = _routed_stream(params, values, plan_seed, 128)
        queries = [int(x) for x in
                   np.random.default_rng(1).integers(0, params.domain_size,
                                                     size=32)]
        with running_cluster(params, 2, tmp_path) as (_, _router, host, port):
            with AggregationClient(host, port) as client:
                published = client.hello()
                assert published == params
                for batch, route in zip(batches, routes, strict=True):
                    client.send_batch(batch, route=route)
                assert client.sync() == len(values)
                if hasattr(offline, "estimate_many"):
                    served = client.query(queries)
                    expected = offline.estimate_many(queries)
                else:
                    # RAPPOR finalizes to candidate-set estimation only, so
                    # the cluster is read through the state-pull frame: the
                    # router merges the shards' packed states exactly.
                    pull = client.pull_state()
                    merged = load_child_state(params.make_aggregator(),
                                              pull["state"])
                    served = merged.finalize().estimate_candidates(queries)
                    expected = offline.estimate_candidates(queries)
        assert np.array_equal(served, expected), name

    def test_binary_frames_and_three_shards(self, tmp_path):
        params = _cluster_case("hashtogram")
        values = _workload(params, 900)
        plan_seed = 11
        offline = run_simulation(params, values,
                                 rng=np.random.default_rng(plan_seed),
                                 chunk_size=128).finalize()
        batches, routes = _routed_stream(params, values, plan_seed, 128)
        queries = list(range(40))
        with running_cluster(params, 3, tmp_path) as (_, router, host, port):
            with AggregationClient(host, port,
                                   wire_format="binary") as client:
                client.hello()
                for batch, route in zip(batches, routes, strict=True):
                    client.send_batch(batch, route=route)
                assert client.sync() == len(values)
                served = client.query(queries)
                stats = client.stats()
        assert np.array_equal(served, offline.estimate_many(queries))
        # the partition actually split the stream (with only a handful of
        # chunk keys a shard may legitimately stay empty; full coverage is
        # asserted over many keys in TestShardPartition)
        absorbed = [s["reports_absorbed"] for s in stats["shards"]]
        assert sum(absorbed) == len(values)
        assert sum(1 for a in absorbed if a > 0) >= 2
        assert stats["router"]["frames_forwarded"] == len(batches)

    def test_unrouted_frames_round_robin(self, tmp_path):
        params = _cluster_case("explicit")
        values = _workload(params, 400)
        plan_seed = 5
        offline = run_simulation(params, values,
                                 rng=np.random.default_rng(plan_seed),
                                 chunk_size=64).finalize()
        batches, _ = _routed_stream(params, values, plan_seed, 64)
        queries = list(range(20))
        with running_cluster(params, 2, tmp_path) as (_, router, host, port):
            with AggregationClient(host, port) as client:
                for i, batch in enumerate(batches):
                    client.send_batch(batch)  # no route key
                assert client.sync() == len(values)
                served = client.query(queries)
                stats = client.stats()
        assert np.array_equal(served, offline.estimate_many(queries))
        assert stats["router"]["frames_unrouted"] == len(batches)

    def test_windowed_query_exact_across_shards(self, tmp_path):
        params = _cluster_case("explicit")
        values = _workload(params, 480)
        plan_seed = 9
        batches, routes = _routed_stream(params, values, plan_seed, 60)
        assert len(batches) >= 4
        # single-server reference over the same epoch tagging
        reference = WindowedAggregator(params)
        for i, batch in enumerate(batches):
            reference.absorb_batch(batch, epoch=i)
        queries = list(range(24))
        with running_cluster(params, 2, tmp_path) as (_, _router, host, port):
            with AggregationClient(host, port) as client:
                for i, (batch, route) in enumerate(zip(batches, routes, strict=True)):
                    client.send_batch(batch, epoch=i, route=route)
                client.sync()
                for window in (1, 3, None):
                    served = client.query(queries, window=window)
                    expected = reference.finalize(window).estimate_many(queries)
                    assert np.array_equal(served, expected), window

    def test_rejects_mismatched_protocol(self, tmp_path):
        params = _cluster_case("explicit")
        other = _cluster_case("hashtogram")
        _, batch = _small_batch()
        with running_cluster(params, 2, tmp_path) as (_, router, host, port):
            with AggregationClient(host, port) as client:
                client.send_batch(batch, route=0)
                assert client.sync() == 0
                stats = client.stats()
        assert stats["router"]["frames_rejected"] == 1
        assert other.protocol in stats["router"]["last_rejection"]


# --------------------------------------------------------------------------------------
# shard failure: SIGKILL mid-ingest, snapshot-restore, journal replay
# --------------------------------------------------------------------------------------

@pytest.mark.cluster
class TestShardFailure:
    def test_kill_one_shard_mid_ingest_converges(self, tmp_path):
        params = _cluster_case("hashtogram")
        values = _workload(params, 4000)
        plan_seed = 13
        offline = run_simulation(params, values,
                                 rng=np.random.default_rng(plan_seed),
                                 chunk_size=256).finalize()
        batches, routes = _routed_stream(params, values, plan_seed, 256)
        assert len(batches) >= 8
        queries = [int(x) for x in
                   np.random.default_rng(2).integers(0, params.domain_size,
                                                     size=48)]
        # A small checkpoint threshold so auto-checkpoints run during the
        # first half: the post-kill replay then exercises the
        # restore-from-snapshot path, not just an empty-state replay.
        with running_cluster(params, 3, tmp_path,
                             checkpoint_reports=512) as cluster:
            supervisor, router, host, port = cluster
            with AggregationClient(host, port) as client:
                half = len(batches) // 2
                for i in range(half):
                    client.send_batch(batches[i], route=routes[i])
                client.sync()
                supervisor.kill(1)  # SIGKILL, mid-collection
                for i in range(half, len(batches)):
                    client.send_batch(batches[i], route=routes[i])
                # the barrier detects the dead shard on fan-out; the router
                # restarts it from its snapshot and replays the journal
                assert client.sync() == len(values)
                served = client.query(queries)
                stats = client.stats()
            assert supervisor.shards[1].restarts >= 1
        assert stats["router"]["shard_restarts"] >= 1
        assert int(stats["reports_absorbed"]) == len(values)
        assert np.array_equal(served, offline.estimate_many(queries))

    def test_kill_then_explicit_snapshot_barrier(self, tmp_path):
        params = _cluster_case("explicit")
        values = _workload(params, 600)
        plan_seed = 17
        offline = run_simulation(params, values,
                                 rng=np.random.default_rng(plan_seed),
                                 chunk_size=100).finalize()
        batches, routes = _routed_stream(params, values, plan_seed, 100)
        queries = list(range(16))
        with running_cluster(params, 2, tmp_path) as cluster:
            supervisor, router, host, port = cluster
            with AggregationClient(host, port) as client:
                for batch, route in zip(batches[:3], routes[:3], strict=True):
                    client.send_batch(batch, route=route)
                client.snapshot()  # explicit barrier: journals clear
                supervisor.kill(0)
                for batch, route in zip(batches[3:], routes[3:], strict=True):
                    client.send_batch(batch, route=route)
                assert client.sync() == len(values)
                served = client.query(queries)
        assert np.array_equal(served, offline.estimate_many(queries))


@pytest.mark.cluster
class TestShardUnavailableAndHealth:
    """The bounded recovery ladder and the ``health`` fan-out frame."""

    def test_dead_shard_without_supervisor_raises_typed_error(self, tmp_path):
        # No supervisor: the ladder can only reconnect, never restart, so a
        # SIGKILL-ed shard must surface as a typed ShardUnavailable reply —
        # within a bounded time, not a hang.
        params = _cluster_case("hashtogram")
        supervisor = ClusterSupervisor(params, 2, tmp_path)
        supervisor.start()
        try:
            router = ClusterRouter(params, endpoints=supervisor.endpoints(),
                                   rng=0, connect_timeout=0.5,
                                   request_timeout=1.0, recovery_attempts=2,
                                   backoff_base=0.01)
            started = threading.Event()
            address = {}

            def run() -> None:
                async def main() -> None:
                    address["hp"] = await router.start("127.0.0.1", 0)
                    started.set()
                    await router.serve_until_stopped()
                asyncio.run(main())

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            assert started.wait(30), "router failed to start"
            host, port = address["hp"]
            with AggregationClient(host, port, timeout=30.0) as client:
                assert client.query([0, 1, 2]) is not None  # cluster is up
                supervisor.kill(1)
                begin = time.monotonic()
                with pytest.raises(ShardUnavailable, match="shard 1"):
                    client.query([0, 1, 2])
                assert time.monotonic() - begin < 15.0
                # the typed error is also a ServerError (one except clause
                # catches both), and the cluster stays up for a shutdown
                assert issubclass(ShardUnavailable, ServerError)
                client.shutdown()
            thread.join(30)
        finally:
            supervisor.stop()

    def test_health_fanout_and_recovery(self, tmp_path):
        params = _cluster_case("hashtogram")
        values = _workload(params, 800)
        batches, routes = _routed_stream(params, values, 19, 100)
        with running_cluster(params, 2, tmp_path) as cluster:
            supervisor, router, host, port = cluster
            with AggregationClient(host, port) as client:
                reply = client.health()
                assert reply["type"] == "health"
                assert reply["status"] == "ok"
                assert reply["num_shards"] == 2
                assert [s["status"] for s in reply["shards"]] == ["ok", "ok"]

                supervisor.kill(1)
                degraded = client.health()
                assert degraded["status"] == "degraded"
                by_shard = {s["shard"]: s for s in degraded["shards"]}
                assert by_shard[0]["status"] == "ok"
                assert by_shard[1]["status"] == "unreachable"
                assert by_shard[1]["last_fault"]

                # ingest traffic drives the recovery ladder (restart +
                # journal replay); health then reports all-ok again
                for batch, route in zip(batches, routes, strict=True):
                    client.send_batch(batch, route=route)
                assert client.sync() == len(values)
                recovered = client.health()
                assert recovered["status"] == "ok"
                by_shard = {s["shard"]: s for s in recovered["shards"]}
                assert by_shard[1]["restarts"] >= 1
                assert all(s["status"] == "ok"
                           for s in recovered["shards"])
                # the router stamps a strictly increasing seq per link
                assert all(s["seq"] >= 0 for s in recovered["shards"])
                assert sum(s["num_reports"]
                           for s in recovered["shards"]) == len(values)


# --------------------------------------------------------------------------------------
# the state-pull frame on a single server (the router's query primitive)
# --------------------------------------------------------------------------------------

class TestStatePull:
    def test_pull_state_rebuilds_bit_identically(self):
        from test_server import running_server

        params, batch = _small_batch(200)
        with running_server(params) as (server, host, port):
            with AggregationClient(host, port) as client:
                client.send_batch(batch, epoch=4)
                client.sync()
                pull = client.pull_state()
        assert pull["num_reports"] == len(batch)
        assert pull["epochs"] == [4]
        rebuilt = load_child_state(params.make_aggregator(), pull["state"])
        reference = params.make_aggregator().absorb_batch(batch)
        assert np.array_equal(rebuilt.finalize().estimate_many(range(32)),
                              reference.finalize().estimate_many(range(32)))

    def test_pull_state_min_epoch_cutoff(self):
        from test_server import running_server

        params, _ = _small_batch()
        encoder = params.make_encoder()
        gen = np.random.default_rng(0)
        with running_server(params) as (server, host, port):
            with AggregationClient(host, port) as client:
                for epoch in (1, 2, 3):
                    values = gen.integers(0, DOMAIN, size=50)
                    client.send_batch(encoder.encode_batch(values, gen),
                                      epoch=epoch)
                client.sync()
                everything = client.pull_state()
                newest_two = client.pull_state(min_epoch=1)
                empty = client.pull_state(min_epoch=10)
        assert everything["epochs"] == [1, 2, 3]
        assert newest_two["epochs"] == [2, 3]
        assert newest_two["num_reports"] == 100
        assert empty["epochs"] == []
        assert empty["num_reports"] == 0

    def test_window_and_min_epoch_mutually_exclusive(self):
        params, _ = _small_batch()
        windowed = WindowedAggregator(params)
        with pytest.raises(ValueError, match="mutually exclusive"):
            windowed.select_epochs(window=2, min_epoch=3)

    def test_server_rejects_both_selectors(self):
        from test_server import running_server

        params, batch = _small_batch()
        with running_server(params) as (server, host, port):
            with AggregationClient(host, port) as client:
                client.send_batch(batch)
                client.sync()
                with pytest.raises(ServerError, match="mutually exclusive"):
                    client.pull_state(window=1, min_epoch=0)


# --------------------------------------------------------------------------------------
# async-safety regressions (defects found by `python -m repro.tools.lint`)
# --------------------------------------------------------------------------------------

class TestRouterAsyncSafetyRegressions:
    """Pin the fixes for the RPL3 findings of the static-analysis suite."""

    @staticmethod
    def _params():
        return HashtogramParams.create(DOMAIN, 1.0, num_buckets=16, rng=0)

    def test_concurrent_router_start_raises_exactly_once(self):
        # RPL302: ClusterRouter.start() used to read self._server, await
        # the shard handshakes, then write it — two concurrent start()
        # calls both passed the guard.
        params = self._params()

        async def main():
            shard = AggregationServer(params)
            host, port = await shard.start("127.0.0.1", 0)
            router = ClusterRouter(params, endpoints=[(host, port)], rng=0)
            results = await asyncio.gather(router.start("127.0.0.1", 0),
                                           router.start("127.0.0.1", 0),
                                           return_exceptions=True)
            errors = [r for r in results
                      if isinstance(r, RuntimeError)
                      and "already started" in str(r)]
            assert len(errors) == 1, results
            await router.stop()
            await shard.stop()

        asyncio.run(main())

    def test_shardlink_close_detaches_before_awaiting(self):
        # RPL302: _ShardLink.close() used to null reader/writer only after
        # awaiting wait_closed(), so a connect() racing the close had its
        # fresh streams clobbered.  The streams must now be detached
        # before the first await.
        params = self._params()

        async def main():
            shard = AggregationServer(params)
            host, port = await shard.start("127.0.0.1", 0)
            link = _ShardLink(0, host, port)
            await link.connect()
            writer = link.writer
            observed = {}
            real_wait = writer.wait_closed

            async def spying_wait_closed():
                observed["writer_during_wait"] = link.writer
                await real_wait()

            writer.wait_closed = spying_wait_closed
            await link.close()
            assert observed["writer_during_wait"] is None
            assert link.writer is None and link.reader is None
            await shard.stop()

        asyncio.run(main())
