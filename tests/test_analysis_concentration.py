"""Tests for the concentration-inequality toolbox (Theorems 3.9-3.12)."""

import math

import numpy as np
import pytest

from repro.analysis.concentration import (
    bernstein_limited_independence,
    binomial_anticoncentration_lower,
    binomial_entropy_lower_tail,
    chernoff_lower_tail,
    chernoff_upper_tail,
    hoeffding_tail,
    poisson_tail_lower,
    poisson_tail_upper,
    poissonization_penalty,
)


class TestChernoff:
    def test_upper_tail_formula(self):
        assert chernoff_upper_tail(100, 0.5) == pytest.approx(math.exp(-0.25 * 100 / 3))

    def test_lower_tail_formula(self):
        assert chernoff_lower_tail(100, 0.5) == pytest.approx(math.exp(-0.25 * 100 / 2))

    def test_limited_independence_requirement(self):
        # ceil(mu * alpha) = 50-wise independence required.
        assert chernoff_upper_tail(100, 0.5, independence=50) > 0
        with pytest.raises(ValueError):
            chernoff_upper_tail(100, 0.5, independence=10)

    def test_bounds_are_valid_against_simulation(self):
        """The bound must upper-bound the empirical tail of a true binomial."""
        rng = np.random.default_rng(0)
        n, p, alpha = 2_000, 0.1, 0.3
        mu = n * p
        samples = rng.binomial(n, p, size=20_000)
        empirical_upper = np.mean(samples >= mu * (1 + alpha))
        empirical_lower = np.mean(samples <= mu * (1 - alpha))
        assert empirical_upper <= chernoff_upper_tail(mu, alpha) + 0.01
        assert empirical_lower <= chernoff_lower_tail(mu, alpha) + 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(0, 0.5)
        with pytest.raises(ValueError):
            chernoff_upper_tail(10, 1.5)


class TestPoisson:
    def test_tail_formulas(self):
        assert poisson_tail_upper(50, 0.2) == pytest.approx(math.exp(-0.04 * 50 / 2))
        assert poisson_tail_lower(50, 0.2) == pytest.approx(math.exp(-0.04 * 50 / 2))

    def test_bounds_valid_against_simulation(self):
        rng = np.random.default_rng(1)
        mu, alpha = 40, 0.3
        samples = rng.poisson(mu, size=20_000)
        assert np.mean(samples >= mu * (1 + alpha)) <= poisson_tail_upper(mu, alpha) + 0.01
        assert np.mean(samples <= mu * (1 - alpha)) <= poisson_tail_lower(mu, alpha) + 0.01

    def test_poissonization_penalty(self):
        assert poissonization_penalty(100) == pytest.approx(math.e * 10)
        assert poissonization_penalty(0) == pytest.approx(math.e)
        with pytest.raises(ValueError):
            poissonization_penalty(-1)


class TestBernstein:
    def test_decreases_with_deviation(self):
        loose = bernstein_limited_independence(sigma=10, bound=1, k=4, deviation=50)
        tight = bernstein_limited_independence(sigma=10, bound=1, k=4, deviation=200)
        assert tight < loose

    def test_clipped_at_one(self):
        assert bernstein_limited_independence(sigma=10, bound=1, k=4, deviation=1) == 1.0

    def test_requires_even_k(self):
        with pytest.raises(ValueError):
            bernstein_limited_independence(sigma=1, bound=1, k=3, deviation=10)
        with pytest.raises(ValueError):
            bernstein_limited_independence(sigma=-1, bound=1, k=4, deviation=10)

    def test_valid_against_simulation(self):
        """Check on bounded iid variables (which are in particular k-wise independent)."""
        rng = np.random.default_rng(2)
        n = 400
        samples = rng.uniform(-1, 1, size=(20_000, n)).sum(axis=1)
        sigma = math.sqrt(n / 3)
        deviation = 6 * sigma
        empirical = np.mean(np.abs(samples) > deviation)
        bound = bernstein_limited_independence(sigma=sigma, bound=1, k=4,
                                               deviation=deviation)
        assert empirical <= bound + 0.01


class TestHoeffdingAndAnticoncentration:
    def test_hoeffding_formula(self):
        assert hoeffding_tail(100, 0.5, 10.0) == pytest.approx(
            math.exp(-100 / (2 * 100 * 0.25)))

    def test_hoeffding_validation(self):
        with pytest.raises(ValueError):
            hoeffding_tail(0, 1.0, 1.0)

    def test_entropy_lower_tail_range(self):
        value = binomial_entropy_lower_tail(100, 1.0)
        assert 0 < value < 1
        with pytest.raises(ValueError):
            binomial_entropy_lower_tail(100, 6.0)

    def test_binomial_anticoncentration_range_check(self):
        value = binomial_anticoncentration_lower(1_000, 0.5, 50.0)
        assert 0 < value < 1
        with pytest.raises(ValueError):
            binomial_anticoncentration_lower(1_000, 0.5, 1.0)
