"""Cross-format equivalence of the binary columnar wire codec.

The contract under test (``docs/wire-protocol.md`` §3.1 and §8): for every
registered protocol, a batch encoded as ``json`` columns, ``b64`` columns,
or a binary frame decodes to the same reports, absorbs to the same exact
integer state, and finalizes to the same estimates — bit for bit.  Also
covered: byte-level binary round trips, the oversized-frame error path on
both the write and the read side, truncated/corrupted-frame fuzzing, the
binary snapshot container, and the engine's binary worker-result channel.
"""

import io
import json
import struct

import numpy as np
import pytest

from repro.baselines.single_hash import SingleHashHeavyHitters
from repro.core.heavy_hitters import PrivateExpanderSketch
from repro.engine import run_simulation
from repro.protocol import (
    CountMeanSketchParams,
    ExplicitHistogramParams,
    HashtogramParams,
    RapporParams,
    ReportBatch,
    ServerAggregator,
)
from repro.protocol.binary import (
    BINARY_MAGIC,
    BinaryFormatError,
    decode_reports_payload,
    encode_reports_payload,
    is_binary_payload,
    pack_state,
    peek_reports_header,
    stamp_sequence,
    unpack_state,
)
from repro.server import (
    FrameError,
    SnapshotStore,
    WindowedAggregator,
    encode_reports_frame,
    read_frame_sync,
)
from repro.server.snapshot import (
    SNAPSHOT_MAGIC,
    read_snapshot,
    write_snapshot,
)

DOMAIN = 1 << 12


def _cases():
    expander = PrivateExpanderSketch(domain_size=1 << 16, epsilon=4.0)
    single = SingleHashHeavyHitters(domain_size=1 << 16, epsilon=4.0,
                                    num_repetitions=2)
    return [
        ("explicit/hadamard", ExplicitHistogramParams(256, 1.0, "hadamard")),
        ("explicit/oue", ExplicitHistogramParams(64, 1.0, "oue")),
        ("explicit/krr", ExplicitHistogramParams(64, 1.0, "krr")),
        ("hashtogram",
         HashtogramParams.create(DOMAIN, 1.0, num_buckets=16, rng=0)),
        ("cms", CountMeanSketchParams.create(DOMAIN, 1.0, num_hashes=4,
                                             num_buckets=16, rng=0)),
        ("rappor", RapporParams.create(512, 2.0, num_bits=64, rng=0)),
        ("expander_sketch",
         expander.public_params(3_000, rng=np.random.default_rng(3))),
        ("single_hash",
         single.public_params(3_000, rng=np.random.default_rng(5))),
    ]


CASES = _cases()
CASE_IDS = [name for name, _ in CASES]


def _batch(params, n=1_500):
    values = np.random.default_rng(7).integers(0, params.domain_size, size=n)
    values[: n // 4] = params.domain_size // 3  # a planted heavy hitter
    return params.make_encoder().encode_batch(values, np.random.default_rng(9))


class TestCrossFormatMatrix:
    """json columns == b64 columns == binary frame, end to end."""

    @pytest.mark.parametrize("name,params", CASES, ids=CASE_IDS)
    def test_all_formats_round_trip_and_absorb_identically(self, name, params):
        batch = _batch(params)
        decoded = {
            "json": ReportBatch.from_dict(
                json.loads(json.dumps(batch.to_dict("json")))),
            "b64": ReportBatch.from_dict(
                json.loads(json.dumps(batch.to_dict("b64")))),
            "binary": decode_reports_payload(
                encode_reports_payload(batch, epoch=0))[1],
        }
        snapshots = {}
        for fmt, copy in decoded.items():
            assert copy.protocol == batch.protocol
            assert set(copy.columns) == set(batch.columns)
            for key, col in batch.columns.items():
                assert np.array_equal(copy.columns[key], col), (fmt, key)
            aggregator = params.make_aggregator().absorb_batch(copy)
            snapshots[fmt] = aggregator.snapshot()
        # identical exact integer state across every wire form
        assert snapshots["json"] == snapshots["b64"] == snapshots["binary"]

    @pytest.mark.parametrize("name,params", CASES, ids=CASE_IDS)
    def test_binary_round_trip_is_byte_identical(self, name, params):
        batch = _batch(params, n=600)
        payload = encode_reports_payload(batch, epoch=42)
        assert is_binary_payload(payload)
        epoch, decoded = decode_reports_payload(payload)
        assert epoch == 42
        for col in decoded.columns.values():
            assert not col.flags.writeable  # zero-copy read-only views
        # the narrowing rule depends only on values: re-encoding the decoded
        # batch must reproduce the wire bytes exactly
        assert encode_reports_payload(decoded, epoch=42) == payload

    def test_finalized_estimates_identical(self):
        params = HashtogramParams.create(DOMAIN, 1.0, num_buckets=16, rng=0)
        batch = _batch(params)
        queries = np.arange(256)
        via_json = params.make_aggregator().absorb_batch(
            ReportBatch.from_dict(batch.to_dict("b64"))
        ).finalize().estimate_many(queries)
        via_binary = params.make_aggregator().absorb_batch(
            decode_reports_payload(encode_reports_payload(batch))[1]
        ).finalize().estimate_many(queries)
        assert np.array_equal(via_json, via_binary)

    def test_empty_batch_round_trips(self):
        params = ExplicitHistogramParams(64, 1.0, "krr")
        batch = params.make_encoder().encode_batch(
            np.asarray([], dtype=np.int64), np.random.default_rng(0))
        epoch, decoded = decode_reports_payload(encode_reports_payload(batch))
        assert len(decoded) == 0
        assert set(decoded.columns) == set(batch.columns)


class TestSequencedFrames:
    """The §8.1 delivery-sequence field and the router's stamping primitive."""

    def _params(self):
        return HashtogramParams.create(DOMAIN, 1.0, num_buckets=16, rng=0)

    def test_stamp_unrouted_matches_direct_encode(self):
        batch = _batch(self._params(), n=400)
        plain = encode_reports_payload(batch, epoch=3)
        stamped = stamp_sequence(plain, 17)
        assert stamped == encode_reports_payload(batch, epoch=3, seq=17)
        header = peek_reports_header(stamped)
        assert header["seq"] == 17
        assert header["route"] is None
        # the stamped frame still decodes to the identical batch
        epoch, decoded = decode_reports_payload(stamped)
        assert epoch == 3
        for key, col in batch.columns.items():
            assert np.array_equal(decoded.columns[key], col)

    def test_stamp_routed_matches_direct_encode(self):
        batch = _batch(self._params(), n=400)
        plain = encode_reports_payload(batch, epoch=1, route=-9)
        stamped = stamp_sequence(plain, 2**63)
        assert stamped == encode_reports_payload(batch, epoch=1, route=-9,
                                                 seq=2**63)
        header = peek_reports_header(stamped)
        assert header == {"epoch": 1, "route": -9, "seq": 2**63,
                          "num_reports": 400, "protocol": "hashtogram"}

    def test_restamp_overwrites_in_place(self):
        batch = _batch(self._params(), n=200)
        once = stamp_sequence(encode_reports_payload(batch), 5)
        twice = stamp_sequence(once, 6)
        assert len(twice) == len(once)
        assert twice == encode_reports_payload(batch, seq=6)

    def test_unsequenced_frames_peek_none(self):
        payload = encode_reports_payload(_batch(self._params(), n=50))
        assert peek_reports_header(payload)["seq"] is None

    def test_seq_out_of_u64_range_rejected(self):
        payload = encode_reports_payload(_batch(self._params(), n=50))
        with pytest.raises(BinaryFormatError):
            stamp_sequence(payload, -1)
        with pytest.raises(BinaryFormatError):
            stamp_sequence(payload, 1 << 64)

    def test_undefined_flag_bit_rejected(self):
        payload = bytearray(
            encode_reports_payload(_batch(self._params(), n=50)))
        payload[3] |= 0x04  # first flag bit outside ROUTED|SEQUENCED
        with pytest.raises(BinaryFormatError):
            decode_reports_payload(bytes(payload))


class TestBinaryErrorPaths:
    def _payload(self):
        params = ExplicitHistogramParams(256, 1.0, "hadamard")
        return encode_reports_payload(_batch(params, n=200), epoch=1)

    def test_write_side_oversize_rejected_before_serialization(self):
        params = ExplicitHistogramParams(256, 1.0, "hadamard")
        batch = _batch(params, n=5_000)
        with pytest.raises(BinaryFormatError, match="exceeds the 64-byte"):
            encode_reports_payload(batch, max_bytes=64)
        # the framing layer maps the announced-size violation to FrameError
        import repro.server.framing as framing
        original = framing.MAX_FRAME_BYTES
        framing.MAX_FRAME_BYTES = 64
        try:
            with pytest.raises(FrameError, match="limit"):
                encode_reports_frame(batch, wire_format="binary")
        finally:
            framing.MAX_FRAME_BYTES = original

    def test_read_side_oversize_announcement_rejected(self):
        stream = io.BytesIO(struct.pack("!I", (1 << 30) + 1)
                            + bytes([BINARY_MAGIC]))
        with pytest.raises(FrameError, match="limit"):
            read_frame_sync(stream)

    def test_truncation_always_fails_loudly(self):
        payload = self._payload()
        for cut in list(range(0, 64)) + [len(payload) // 2, len(payload) - 1]:
            with pytest.raises(BinaryFormatError):
                decode_reports_payload(payload[:cut])

    def test_header_corruption_fuzz(self):
        # Flip every byte of the structural prefix (header + column table):
        # the decoder must either raise BinaryFormatError or still produce a
        # well-formed batch (a flipped shape byte that happens to stay
        # consistent) — never crash with anything else.
        payload = bytearray(self._payload())
        rng = np.random.default_rng(0)
        for pos in range(min(len(payload), 120)):
            for flip in (0xFF, rng.integers(1, 256)):
                corrupted = bytearray(payload)
                corrupted[pos] ^= int(flip)
                try:
                    _, batch = decode_reports_payload(bytes(corrupted))
                except (BinaryFormatError, FrameError):
                    continue
                assert isinstance(batch, ReportBatch)

    def test_frame_layer_wraps_binary_errors(self):
        payload = self._payload()
        frame = struct.pack("!I", len(payload) - 3) + payload[:-3]
        with pytest.raises(FrameError, match="invalid binary frame"):
            read_frame_sync(io.BytesIO(frame))

    def test_declared_num_reports_must_match(self):
        payload = bytearray(self._payload())
        # num_reports is the i64 immediately after the 4-byte header + epoch
        struct.pack_into("<Q", payload, 4 + 8, 9999)
        with pytest.raises(BinaryFormatError, match="num_reports"):
            decode_reports_payload(bytes(payload))


class TestStateContainer:
    def test_pack_state_round_trips_nested_payloads(self):
        payload = {"format": "x", "version": 1, "window": None,
                   "ratio": 0.25, "name": "abc", "flags": [True, False],
                   "state": {"accumulator": list(range(1000)),
                             "nested": [{"num_reports": 3,
                                         "state": {"ones": [[1, 2], [3, 4]]}}]}}
        restored = unpack_state(pack_state(payload))
        assert restored["format"] == "x" and restored["window"] is None
        assert restored["ratio"] == 0.25 and restored["flags"] == [True, False]
        acc = restored["state"]["accumulator"]
        assert isinstance(acc, np.ndarray) and acc.flags.writeable
        assert np.array_equal(acc, np.arange(1000))
        assert np.array_equal(restored["state"]["nested"][0]["state"]["ones"],
                              [[1, 2], [3, 4]])

    def test_uint64_range_values_survive_exactly(self):
        # ints in [2^63, 2^64) infer as uint64; forcing them through the
        # int64 column path would wrap silently, so they must stay in the
        # JSON skeleton and round-trip exactly.
        payload = {"big_list": [2**63, 2**64 - 1],
                   "big_array": np.asarray([2**63 + 5], dtype=np.uint64),
                   "small": [1, 2, 3]}
        restored = unpack_state(pack_state(payload))
        assert restored["big_list"] == [2**63, 2**64 - 1]
        assert restored["big_array"] == [2**63 + 5]
        assert np.array_equal(restored["small"], [1, 2, 3])

    def test_reserved_column_key_rejected(self):
        with pytest.raises(ValueError, match="reserved key"):
            pack_state({"state": {"__repro_column__": 5}})

    @pytest.mark.parametrize("name,params", CASES, ids=CASE_IDS)
    def test_binary_snapshot_restores_bit_identically(self, name, params):
        aggregator = params.make_aggregator().absorb_batch(_batch(params))
        restored = ServerAggregator.from_snapshot(
            unpack_state(pack_state(aggregator.snapshot())))
        assert restored.num_reports == aggregator.num_reports
        assert restored.snapshot() == aggregator.snapshot()

    def test_snapshot_file_format_sniffing(self, tmp_path):
        params = HashtogramParams.create(DOMAIN, 1.0, num_buckets=16, rng=0)
        windowed = WindowedAggregator(params, window=4)
        windowed.absorb_batch(_batch(params), epoch=2)
        payload = windowed.snapshot()
        json_path = write_snapshot(tmp_path / "snap.json", payload, "json")
        bin_path = write_snapshot(tmp_path / "snap.bin", payload, "binary")
        # Both files wear the checksummed snapshot container; the *body* of
        # the binary one is a BINARY_MAGIC state container (that first byte
        # is what read_snapshot sniffs the encoding from).
        raw = (tmp_path / "snap.bin").read_bytes()
        assert raw[0] == SNAPSHOT_MAGIC & 0xFF
        assert raw[12] == BINARY_MAGIC
        queries = np.arange(128)
        expected = windowed.finalize().estimate_many(queries)
        for path in (json_path, bin_path):
            restored = WindowedAggregator.from_snapshot(read_snapshot(path))
            assert restored.window == 4 and restored.epochs == [2]
            assert np.array_equal(restored.finalize().estimate_many(queries),
                                  expected)

    def test_snapshot_store_binary_format(self, tmp_path):
        params = ExplicitHistogramParams(64, 1.0, "krr")
        windowed = WindowedAggregator(params)
        windowed.absorb_batch(_batch(params))
        store = SnapshotStore(tmp_path, keep=2, format="binary")
        path = store.save(windowed.snapshot())
        assert path.name == "snapshot-000001.bin"
        restored = WindowedAggregator.from_snapshot(store.load_latest())
        assert restored.num_reports == windowed.num_reports
        # binary and json stores interleave; latest() spans both suffixes
        SnapshotStore(tmp_path, keep=2, format="json").save(windowed.snapshot())
        assert store.latest().name == "snapshot-000002.json"

    def test_binary_restore_then_absorb_more(self):
        params = HashtogramParams.create(DOMAIN, 1.0, num_buckets=16, rng=0)
        first, second = _batch(params), _batch(params, n=700)
        checkpointed = params.make_aggregator().absorb_batch(first)
        restored = ServerAggregator.from_snapshot(
            unpack_state(pack_state(checkpointed.snapshot())))
        restored.absorb_batch(second)  # restored state must be writable
        straight = params.make_aggregator().absorb_batch(first) \
                                           .absorb_batch(second)
        queries = np.arange(256)
        assert np.array_equal(restored.finalize().estimate_many(queries),
                              straight.finalize().estimate_many(queries))


class TestEngineResultChannel:
    def test_binary_channel_matches_pickle_channel(self):
        params = HashtogramParams.create(DOMAIN, 1.0, num_buckets=16, rng=0)
        values = np.random.default_rng(1).integers(0, DOMAIN, size=6_000)
        queries = np.arange(256)
        estimates = {}
        for result_format in ("binary", "pickle"):
            result = run_simulation(params, values,
                                    rng=np.random.default_rng(2), workers=2,
                                    chunk_size=1_500,
                                    result_format=result_format)
            assert result.num_users == values.size
            estimates[result_format] = result.finalize().estimate_many(queries)
        assert np.array_equal(estimates["binary"], estimates["pickle"])

    def test_unknown_result_format_rejected(self):
        params = ExplicitHistogramParams(16, 1.0)
        with pytest.raises(ValueError, match="result_format"):
            run_simulation(params, [1, 2, 3], result_format="msgpack")
