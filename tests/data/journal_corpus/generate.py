"""Regenerate the committed journal-recovery corpus (``corpus.json``).

Every case is one raw journal *file image* (a byte string of CRC32-framed
records, possibly damaged) plus the pinned verdict of
:func:`repro.cluster.journal.scan_records`: exactly which record payloads
replay, and the byte offset the file must be truncated to.  The corpus
pins the write-ahead-log recovery rule the cluster tier relies on — **a
torn or corrupt tail is truncated, never parsed, and never raises** —
against the damage shapes a real crash (or the chaos harness) produces:
torn headers, short payloads, flipped bytes, scribbled lengths, and a
tail record that was duplicated by a replayed append.

Deterministic by construction (fixed payload bytes, no seeds, no wall
clock): running

    PYTHONPATH=src python tests/data/journal_corpus/generate.py

must reproduce the committed ``corpus.json`` byte for byte; the test
runner (``tests/test_journal.py``) enforces exactly that, so the
generator and the committed corpus cannot drift apart.
"""

from __future__ import annotations

import base64
import json
import struct
import sys
import zlib
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[3] / "src"))

OUT = Path(__file__).parent / "corpus.json"

_HEADER = struct.Struct("<II")


def _record(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _flip(raw: bytes, offset: int) -> bytes:
    mutated = bytearray(raw)
    mutated[offset] ^= 0xFF
    return bytes(mutated)


# three well-formed payloads every damaged case is built from; JSON-shaped
# like membership-journal entries so the corpus reads as what it models
P1 = b'{"op":"add","shard":2,"step":"spawned"}'
P2 = b'{"op":"add","shard":2,"step":"map-committed","cut_epoch":3}'
P3 = b'{"op":"drain","shard":0,"step":"handoff","target":1}'

R1, R2, R3 = _record(P1), _record(P2), _record(P3)


def _cases():
    clean = R1 + R2 + R3
    cases = [
        # ----- fully replayable images ------------------------------------------------
        ("clean", clean, [P1, P2, P3], len(clean),
         "three intact records replay completely"),
        ("empty-file", b"", [], 0,
         "an empty journal replays to nothing"),
        ("zero-length-record", R1 + _record(b""), [P1, b""],
         len(R1) + _HEADER.size,
         "an empty payload is a valid record (frame-journal barriers)"),
        ("duplicated-tail-record", clean + R3, [P1, P2, P3, P3],
         len(clean) + len(R3),
         "a re-appended tail record replays twice — byte-level recovery "
         "keeps it; the §7.1 delivery-sequence dedup one level up drops it"),
        # ----- torn tails (crash mid-append) ------------------------------------------
        ("torn-header", R1 + R2 + R3[:5], [P1, P2], len(R1) + len(R2),
         "5 bytes of a record header: incomplete, truncated"),
        ("torn-payload", R1 + R2 + R3[: _HEADER.size + 7], [P1, P2],
         len(R1) + len(R2),
         "header announces more payload than the file holds"),
        ("torn-first-record", R1[: len(R1) - 1], [], 0,
         "a single torn record truncates to an empty journal"),
        # ----- corruption behind the tail (scribbled sector) --------------------------
        ("flipped-payload-byte", _flip(clean, len(R1) + _HEADER.size + 4),
         [P1], len(R1),
         "a flipped byte mid-payload fails the CRC; that record and "
         "everything after it is discarded"),
        ("flipped-crc-field", _flip(clean, len(R1) + 4), [P1], len(R1),
         "a flipped byte in the stored CRC discards the record"),
        ("flipped-first-byte", _flip(clean, 0), [], 0,
         "a scribbled first length byte discards the whole journal"),
        ("scribbled-huge-length",
         R1 + _HEADER.pack(1 << 31, 0) + P2, [P1], len(R1),
         "an absurd announced length is refused outright, never allocated"),
    ]
    return cases


def main() -> None:
    cases = []
    for name, raw, payloads, valid_length, note in _cases():
        assert valid_length <= len(raw), name
        cases.append({
            "name": name,
            "raw_b64": base64.b64encode(raw).decode("ascii"),
            "payloads_b64": [base64.b64encode(p).decode("ascii")
                             for p in payloads],
            "valid_length": valid_length,
            "note": note,
        })
    document = {
        "format": "repro-journal-corpus",
        "version": 1,
        "cases": cases,
    }
    OUT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(cases)} cases to {OUT}")


if __name__ == "__main__":
    main()
