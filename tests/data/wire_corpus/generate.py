"""Regenerate the committed wire-fuzz regression corpus (``corpus.json``).

Every case is one frame *payload* (the bytes behind the 4-byte length
prefix) plus the expected verdict of
:func:`repro.server.framing.decode_frame`: ``accept`` (decodes to a
message) or ``reject`` (raises ``FrameError`` — never any other
exception, never a hang, never a crash).  The corpus pins the parser
behavior the chaos harness relies on: corrupted, truncated, and
flag-mangled frames must all reject *cleanly*.

Deterministic by construction (fixed seeds, no wall clock): running

    PYTHONPATH=src python tests/data/wire_corpus/generate.py

must reproduce the committed ``corpus.json`` byte for byte; the test
runner (``tests/test_wire_corpus.py``) enforces exactly that, so the
generator and the committed corpus cannot drift apart.
"""

from __future__ import annotations

import base64
import json
import struct
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[3] / "src"))

from repro.protocol import HashtogramParams  # noqa: E402
from repro.protocol.binary import (  # noqa: E402
    encode_reports_payload,
    stamp_sequence,
)

OUT = Path(__file__).parent / "corpus.json"


def _batch(n=32, seed=0):
    params = HashtogramParams.create(1 << 10, 1.0, num_buckets=16, rng=0)
    gen = np.random.default_rng(seed)
    values = gen.integers(0, params.domain_size, size=n)
    return params.make_encoder().encode_batch(values, gen)


def _cases():
    batch = _batch()
    binary = encode_reports_payload(batch, epoch=3)
    routed = encode_reports_payload(batch, epoch=3, route=4096)
    sequenced = stamp_sequence(routed, 17)
    json_reports = json.dumps(
        {"type": "reports", "epoch": 3, "batch": batch.to_dict("b64")},
        separators=(",", ":")).encode("utf-8")
    empty = encode_reports_payload(_batch(n=0, seed=1))

    cases = [
        # ----- accepted frames --------------------------------------------------------
        ("json-control-hello", b'{"type":"hello"}', "accept",
         "minimal JSON control frame"),
        ("json-reports-b64", json_reports, "accept",
         "canonical JSON reports frame"),
        ("json-reports-seq", json.dumps(
            {"type": "reports", "epoch": 0, "seq": 5,
             "batch": batch.to_dict("b64")},
            separators=(",", ":")).encode("utf-8"), "accept",
         "JSON reports frame with a delivery sequence number"),
        ("binary-plain", binary, "accept",
         "canonical binary reports payload"),
        ("binary-routed", routed, "accept",
         "binary payload with the FLAG_ROUTED header field"),
        ("binary-routed-sequenced", sequenced, "accept",
         "binary payload with route and seq header fields"),
        ("binary-empty-batch", empty, "accept",
         "zero-report binary payload round-trips"),
        # ----- rejected frames --------------------------------------------------------
        ("json-invalid-syntax", b"{nope", "reject",
         "malformed JSON must raise FrameError"),
        ("json-non-object", b"[1,2,3]", "reject",
         "a frame payload must be a JSON object"),
        ("json-bad-utf8", b'{"type":"reports"}'[:10] + b"\xa0\xff\xfe}",
         "reject",
         "bytes that are neither binary magic nor UTF-8 (regression: used "
         "to crash the connection handler with UnicodeDecodeError)"),
        ("binary-corrupt-magic", bytes([binary[0] ^ 0xFF]) + binary[1:],
         "reject",
         "first-byte bit flip: 0xB1 becomes 0x4E, invalid either way"),
        ("binary-bad-version", binary[:1] + b"\x7f" + binary[2:], "reject",
         "unknown binary format version"),
        ("binary-bad-kind", binary[:2] + b"\x09" + binary[3:], "reject",
         "unknown payload kind"),
        ("binary-unknown-flag", binary[:3] + b"\x04" + binary[4:], "reject",
         "undefined header flag bit (only ROUTED|SEQUENCED are defined)"),
        ("binary-truncated-header", binary[:3], "reject",
         "payload shorter than the fixed header"),
        ("binary-truncated-half", binary[: len(binary) // 2], "reject",
         "mid-frame truncation (what a chaos `truncate` fault delivers)"),
        ("binary-truncated-seq-field", sequenced[:16], "reject",
         "sequenced payload cut inside the seq field"),
        ("binary-empty", b"", "reject", "empty payload"),
        ("binary-magic-only", b"\xb1", "reject", "magic byte alone"),
        # fixed header is magic/version/kind/flags (4 bytes) then
        # epoch i64 + num_reports u64 + proto_len u16 + num_columns u16:
        # the column count lives at bytes [22, 24)
        ("binary-column-count-overflow",
         binary[:22] + struct.pack("<H", 0xFFFF) + binary[24:], "reject",
         "column count inflated: the table walk must stop at the frame "
         "edge, not read past it"),
        ("binary-data-corruption-is-invisible",
         binary[:-8] + struct.pack("<Q", 1 << 62), "accept",
         "flipping trailing *data* bytes decodes fine: there is no "
         "checksum, undetectable data corruption is a documented "
         "non-goal (docs/chaos.md) — this case pins that boundary"),
    ]
    return cases


def main() -> None:
    payload = {
        "_comment": "wire-fuzz regression corpus; regenerate with "
                    "`PYTHONPATH=src python tests/data/wire_corpus/"
                    "generate.py` (must be byte-identical, see "
                    "tests/test_wire_corpus.py)",
        "cases": [
            {"name": name,
             "payload_b64": base64.b64encode(raw).decode("ascii"),
             "expect": expect,
             "note": note}
            for name, raw, expect, note in _cases()
        ],
    }
    OUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT} ({len(payload['cases'])} cases)")


if __name__ == "__main__":
    main()
