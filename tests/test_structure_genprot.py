"""Tests for the GenProt approximate-to-pure transformation (Theorem 6.1)."""

import math

import numpy as np
import pytest

from repro.randomizers.laplace import GaussianHistogramRandomizer
from repro.randomizers.randomized_response import BinaryRandomizedResponse
from repro.structure.genprot import GenProt


class TestParameters:
    def test_transformed_epsilon(self):
        base = BinaryRandomizedResponse(0.2)
        assert GenProt(base).transformed_epsilon == pytest.approx(2.0)

    def test_candidate_derivation(self):
        base = BinaryRandomizedResponse(0.1)
        genprot = GenProt(base, beta=0.05)
        derived = genprot.candidates_for(10_000)
        assert derived >= genprot.minimum_candidates()
        assert derived >= 2 * math.log(2 * 10_000 / 0.05) - 1

    def test_explicit_candidates_respected(self):
        base = BinaryRandomizedResponse(0.1)
        assert GenProt(base, num_candidates=17).candidates_for(10**6) == 17

    def test_report_bits_are_loglog_scale(self):
        base = BinaryRandomizedResponse(0.1)
        genprot = GenProt(base, beta=0.05)
        bits = genprot.report_bits(1_000_000)
        # T = O(log n) so the report is O(log log n) bits - single digits here.
        assert bits <= 8

    def test_utility_bound_small_for_tiny_delta(self):
        base = GaussianHistogramRandomizer(0.2, 1e-9, 4)
        genprot = GenProt(base, beta=0.05)
        assert genprot.utility_bound(1_000) < 0.1

    def test_theorem_conditions(self):
        ok = GenProt(BinaryRandomizedResponse(0.2), beta=0.05)
        assert ok.theorem_conditions_hold(1_000)
        too_big_eps = GenProt(BinaryRandomizedResponse(0.5), beta=0.05)
        assert not too_big_eps.theorem_conditions_hold(1_000)

    def test_rejects_non_randomizer(self):
        with pytest.raises(TypeError):
            GenProt(object())


class TestPrivacy:
    def test_index_privacy_within_bound_rr_base(self):
        base = BinaryRandomizedResponse(0.2)
        genprot = GenProt(base, beta=0.05)
        loss = genprot.empirical_index_privacy(0, 1, num_trials=4_000, rng=0)
        # Theorem 6.1 guarantees 10 eps = 2.0; Monte-Carlo noise stays well below.
        assert loss < genprot.transformed_epsilon

    def test_index_privacy_within_bound_gaussian_base(self):
        base = GaussianHistogramRandomizer(0.2, 1e-4, 4)
        genprot = GenProt(base, beta=0.05)
        loss = genprot.empirical_index_privacy(0, 1, num_trials=3_000, rng=1)
        assert loss < genprot.transformed_epsilon

    def test_clipping_keeps_probabilities_in_range(self, rng):
        """Internal check: the rejection probabilities are clamped into
        [e^{-2eps}/2, e^{2eps}/2] (or reset to 1/2), which is what makes the
        transformed protocol purely private."""
        base = GaussianHistogramRandomizer(0.25, 1e-3, 3)
        genprot = GenProt(base, num_candidates=12)
        report = genprot.transform_user(1, rng, num_candidates=12)
        assert 0 <= report.chosen_index < 12


class TestUtility:
    def test_surrogate_reports_distributed_like_original_rr(self):
        """For a binary RR base the surrogate report distribution must match
        A(x) up to the Theorem 6.1 TV bound plus sampling noise."""
        epsilon = 0.25
        base = BinaryRandomizedResponse(epsilon)
        genprot = GenProt(base, beta=0.01)
        num_users = 4_000
        values = [1] * num_users
        reports = genprot.surrogate_reports(values, rng=2)
        ones = sum(int(r) for r in reports)
        expected = num_users * base.keep_probability
        sampling_slack = 4 * math.sqrt(num_users * 0.25)
        tv_slack = num_users * genprot.utility_bound(num_users)
        assert abs(ones - expected) < sampling_slack + tv_slack

    def test_counting_through_transformation(self):
        """End-to-end: estimate a count from the transformed reports and check
        it is as accurate as the original protocol would be."""
        epsilon = 0.25
        base = BinaryRandomizedResponse(epsilon)
        genprot = GenProt(base, beta=0.01)
        num_users, num_ones = 4_000, 2_400
        values = [1] * num_ones + [0] * (num_users - num_ones)
        reports = np.array(genprot.surrogate_reports(values, rng=3), dtype=np.int64)
        estimate = base.unbiased_count(reports)
        tolerance = 5 * math.sqrt(num_users * base.estimator_variance_per_user)
        assert abs(estimate - num_ones) < tolerance

    def test_run_returns_one_report_per_user(self):
        base = BinaryRandomizedResponse(0.2)
        genprot = GenProt(base, num_candidates=8)
        reports = genprot.run([0, 1, 0, 1], rng=4)
        assert len(reports) == 4
        for report in reports:
            assert report.selected_report in (0, 1)
            assert 0 <= report.chosen_index < 8

    def test_acceptance_is_common(self):
        """With T = O(log n) candidates the no-acceptance event (H_i empty) is
        rare - that is the (1/2 + eps)^T term of the utility bound."""
        base = BinaryRandomizedResponse(0.2)
        genprot = GenProt(base, beta=0.01)
        reports = genprot.run([1] * 300, rng=5)
        accepted = sum(1 for r in reports if r.accepted)
        assert accepted >= 290
