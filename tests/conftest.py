"""Shared fixtures for the test suite.

Every randomized test takes an explicit seed so failures are reproducible;
the fixtures below centralise the seeds and a few small synthetic workloads
used across modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.distributions import planted_workload


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need ad-hoc randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_planted_workload():
    """A small workload with two planted heavy hitters over a 2^16 domain."""
    return planted_workload(
        num_users=4_000,
        domain_size=1 << 16,
        heavy_fractions=[0.3, 0.2],
        heavy_elements=[4242, 31337],
        rng=7,
    )


@pytest.fixture
def medium_planted_workload():
    """A medium workload with three planted heavy hitters over a 2^20 domain."""
    return planted_workload(
        num_users=30_000,
        domain_size=1 << 20,
        heavy_fractions=[0.25, 0.18, 0.12],
        heavy_elements=[891944, 667902, 535965],
        rng=11,
    )
