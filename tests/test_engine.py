"""Tests for the multiprocess simulation engine (:mod:`repro.engine`).

The engine's contract is determinism by construction:

(a) the chunk plan and per-chunk seeds depend only on (params, n, rng,
    chunk_size) — never on the worker count;
(b) ``run_simulation`` returns bit-identical finalized estimates for
    1 worker, N in-process chunks, and N pool processes, for every protocol
    in :mod:`repro.protocol`;
(c) the legacy ``collect()`` / ``run()`` simulation shims are the engine's
    serial path, so they agree with a multiprocess run under the same seed;
(d) params and aggregators survive pickling (the process-pool transport)
    with state intact.
"""

import pickle

import numpy as np
import pytest

from repro.baselines.rappor_hh import RapporHeavyHitters
from repro.baselines.single_hash import SingleHashHeavyHitters
from repro.core.heavy_hitters import PrivateExpanderSketch
from repro.engine import (
    default_chunk_size,
    derive_chunk_seeds,
    make_plan,
    plan_chunks,
    run_simulation,
)
from repro.frequency.count_mean_sketch import CountMeanSketchOracle
from repro.frequency.explicit import ExplicitHistogramOracle
from repro.frequency.hashtogram import HashtogramOracle
from repro.protocol import (
    CountMeanSketchParams,
    ExplicitHistogramParams,
    HashtogramParams,
    RapporParams,
)

SEED = 2018
CHUNK = 257  # deliberately odd so chunk boundaries are non-trivial


def _all_params():
    """One compact parameter object per registered wire protocol."""
    expander = PrivateExpanderSketch(domain_size=1 << 16, epsilon=4.0)
    single = SingleHashHeavyHitters(domain_size=1 << 16, epsilon=4.0,
                                    num_repetitions=2)
    return [
        ExplicitHistogramParams(64, 1.0, "hadamard"),
        ExplicitHistogramParams(64, 1.0, "oue"),
        ExplicitHistogramParams(64, 1.0, "krr"),
        HashtogramParams.create(1 << 14, 1.0, num_buckets=32, rng=0),
        CountMeanSketchParams.create(1 << 14, 2.0, num_hashes=4,
                                     num_buckets=32, rng=1),
        RapporParams.create(512, 2.0, num_bits=64, rng=2),
        expander.public_params(3_000, rng=3),
        single.public_params(3_000, rng=4),
    ]


def _param_id(params):
    randomizer = getattr(params, "randomizer", None)
    suffix = f"/{randomizer}" if isinstance(randomizer, str) else ""
    return params.protocol + suffix


def _values_for(params, size=3_000):
    return np.random.default_rng(99).integers(0, params.domain_size, size=size)


def _finalized_estimates(params, result):
    """Protocol-agnostic fingerprint of a finalized engine result."""
    fitted = result.finalize()
    if params.protocol == "rappor":
        return fitted.estimate_candidates(list(range(16)))
    if hasattr(fitted, "estimate_many"):
        queries = np.arange(min(params.domain_size, 64))
        return np.asarray(fitted.estimate_many(queries))
    raise AssertionError(f"unexpected finalize() result for {params.protocol}")


# --------------------------------------------------------------------------------------
# (a) partitioning
# --------------------------------------------------------------------------------------

class TestPartition:
    def test_plan_covers_population_exactly(self):
        spans = plan_chunks(10_000, 257)
        assert spans[0].start == 0 and spans[-1].stop == 10_000
        assert sum(len(s) for s in spans) == 10_000
        for before, after in zip(spans, spans[1:], strict=False):
            assert before.stop == after.start

    def test_plan_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_chunks(-1, 10)
        with pytest.raises(ValueError):
            plan_chunks(10, 0)
        with pytest.raises(ValueError):
            derive_chunk_seeds(0, -1)

    def test_seeds_deterministic_in_rng(self):
        a = derive_chunk_seeds(np.random.default_rng(5), 10)
        b = derive_chunk_seeds(np.random.default_rng(5), 10)
        assert np.array_equal(a, b)
        c = derive_chunk_seeds(np.random.default_rng(6), 10)
        assert not np.array_equal(a, c)

    def test_make_plan_independent_of_worker_count(self):
        # The plan is a pure function of (params, n, rng, chunk_size): there
        # is no worker-count input at all, which is the whole determinism
        # argument.  Same inputs, same plan.
        params = ExplicitHistogramParams(64, 1.0)
        plan_a = make_plan(params, 5_000, np.random.default_rng(1), 613)
        plan_b = make_plan(params, 5_000, np.random.default_rng(1), 613)
        assert plan_a == plan_b
        assert [c.seed for c in plan_a] == [c.seed for c in plan_b]

    def test_default_chunk_size_shrinks_for_wide_reports(self):
        narrow = default_chunk_size(ExplicitHistogramParams(64, 1.0, "hadamard"))
        wide = default_chunk_size(ExplicitHistogramParams(1 << 14, 1.0, "oue"))
        assert narrow > wide
        assert wide >= 1_024

    def test_empty_population(self):
        params = ExplicitHistogramParams(64, 1.0)
        assert make_plan(params, 0, 0) == []
        result = run_simulation(params, np.zeros(0, dtype=np.int64), rng=0)
        assert result.num_users == 0 and result.num_chunks == 0


# --------------------------------------------------------------------------------------
# (b) bit-identical across worker counts, every protocol
# --------------------------------------------------------------------------------------

class TestWorkerCountInvariance:
    @pytest.mark.parametrize("params", _all_params(), ids=_param_id)
    def test_one_vs_many_workers(self, params):
        values = _values_for(params)
        results = [run_simulation(params, values, rng=np.random.default_rng(SEED),
                                  workers=workers, chunk_size=CHUNK)
                   for workers in (1, 3)]
        assert results[0].num_chunks == results[1].num_chunks > 1
        baseline = _finalized_estimates(params, results[0])
        parallel = _finalized_estimates(params, results[1])
        assert np.array_equal(baseline, parallel)
        assert results[0].aggregator.num_reports == values.size
        assert results[1].aggregator.num_reports == values.size

    def test_workers_beyond_chunks_are_harmless(self):
        params = ExplicitHistogramParams(64, 1.0)
        values = _values_for(params, size=500)
        a = run_simulation(params, values, rng=np.random.default_rng(1),
                           workers=1, chunk_size=200)
        b = run_simulation(params, values, rng=np.random.default_rng(1),
                           workers=16, chunk_size=200)
        assert np.array_equal(a.finalize().histogram(), b.finalize().histogram())

    def test_rejects_bad_worker_count(self):
        params = ExplicitHistogramParams(64, 1.0)
        with pytest.raises(ValueError):
            run_simulation(params, [1, 2, 3], rng=0, workers=0)


# --------------------------------------------------------------------------------------
# (c) the legacy simulation shims are the engine's serial path
# --------------------------------------------------------------------------------------

class TestLegacyPathEquivalence:
    def test_explicit_collect_matches_engine(self):
        oracle = ExplicitHistogramOracle(64, 1.0)
        values = _values_for(oracle.public_params())
        oracle.collect(values, np.random.default_rng(SEED), chunk_size=CHUNK)
        params = ExplicitHistogramParams(64, 1.0)
        result = run_simulation(params, values, rng=np.random.default_rng(SEED),
                                workers=3, chunk_size=CHUNK)
        assert np.array_equal(result.finalize().histogram(), oracle.histogram())

    def test_hashtogram_collect_matches_engine(self):
        domain = 1 << 14
        values = np.random.default_rng(99).integers(0, domain, size=3_000)
        oracle = HashtogramOracle(domain, 1.0, num_buckets=32)
        oracle.collect(values, np.random.default_rng(SEED), chunk_size=CHUNK)
        gen = np.random.default_rng(SEED)
        params = HashtogramParams.create(domain, 1.0, num_buckets=32, rng=gen)
        result = run_simulation(params, values, rng=gen, workers=3,
                                chunk_size=CHUNK)
        queries = np.arange(256)
        assert np.array_equal(result.finalize().estimate_many(queries),
                              oracle.estimate_many(queries))

    def test_cms_collect_matches_engine(self):
        domain = 1 << 14
        values = np.random.default_rng(99).integers(0, domain, size=3_000)
        oracle = CountMeanSketchOracle(domain, 2.0, num_hashes=4, num_buckets=32)
        oracle.collect(values, np.random.default_rng(SEED), chunk_size=CHUNK)
        gen = np.random.default_rng(SEED)
        params = CountMeanSketchParams.create(domain, 2.0, num_hashes=4,
                                              num_buckets=32, rng=gen)
        result = run_simulation(params, values, rng=gen, workers=3,
                                chunk_size=CHUNK)
        queries = np.arange(256)
        assert np.array_equal(result.finalize().estimate_many(queries),
                              oracle.estimate_many(queries))

    def test_collect_workers_matches_serial_collect(self):
        # The one-liner parallel API: collect(values, rng, workers=N).
        domain = 1 << 14
        values = np.random.default_rng(99).integers(0, domain, size=3_000)
        serial = HashtogramOracle(domain, 1.0, num_buckets=32)
        serial.collect(values, np.random.default_rng(SEED))
        parallel = HashtogramOracle(domain, 1.0, num_buckets=32)
        parallel.collect(values, np.random.default_rng(SEED), workers=3,
                         chunk_size=1_024)
        # workers=3 forces multiprocessing but must not change the chunk
        # plan semantics; with the default chunk size both fit one chunk, so
        # pin a size that yields several chunks for the parallel run.
        serial2 = HashtogramOracle(domain, 1.0, num_buckets=32)
        serial2.collect(values, np.random.default_rng(SEED), chunk_size=1_024)
        queries = np.arange(256)
        assert np.array_equal(parallel.estimate_many(queries),
                              serial2.estimate_many(queries))

    def test_expander_run_matches_engine(self):
        domain = 1 << 16
        values = np.random.default_rng(99).integers(0, domain, size=6_000)
        values[:2_000] = 4_242
        protocol = PrivateExpanderSketch(domain_size=domain, epsilon=4.0)
        legacy = protocol.run(values, rng=np.random.default_rng(SEED),
                              chunk_size=CHUNK)
        gen = np.random.default_rng(SEED)
        wire = protocol.public_params(values.size, rng=gen)
        result = run_simulation(wire, values, rng=gen, workers=3,
                                chunk_size=CHUNK)
        parallel = result.finalize()
        assert parallel.estimates == legacy.estimates
        assert parallel.candidates == legacy.candidates

    def test_single_hash_run_matches_engine(self):
        domain = 1 << 16
        values = np.random.default_rng(99).integers(0, domain, size=6_000)
        values[:2_000] = 31_337
        protocol = SingleHashHeavyHitters(domain_size=domain, epsilon=4.0,
                                          num_repetitions=2)
        legacy = protocol.run(values, rng=np.random.default_rng(SEED),
                              chunk_size=CHUNK)
        gen = np.random.default_rng(SEED)
        wire = protocol.public_params(values.size, rng=gen)
        result = run_simulation(wire, values, rng=gen, workers=3,
                                chunk_size=CHUNK)
        assert result.finalize().estimates == legacy.estimates

    def test_rappor_run_matches_engine(self):
        domain = 512
        values = np.random.default_rng(99).integers(0, domain, size=3_000)
        values[:1_000] = 77
        protocol = RapporHeavyHitters(domain_size=domain, epsilon=3.0,
                                      candidates=[77, 5, 300], num_bits=64)
        legacy = protocol.run(values, rng=np.random.default_rng(SEED),
                              chunk_size=CHUNK)
        gen = np.random.default_rng(SEED)
        wire = protocol.public_params(rng=gen)
        result = run_simulation(wire, values, rng=gen, workers=3,
                                chunk_size=CHUNK)
        estimates = result.finalize().estimate_candidates([77, 5, 300])
        assert legacy.estimates[77] == float(estimates[0])


# --------------------------------------------------------------------------------------
# (d) pickle stability — the process-pool transport contract
# --------------------------------------------------------------------------------------

class TestPickleStability:
    @pytest.mark.parametrize("params", _all_params(), ids=_param_id)
    def test_params_roundtrip(self, params):
        rebuilt = pickle.loads(pickle.dumps(params))
        assert rebuilt == params
        assert rebuilt.to_dict() == params.to_dict()
        # The rebuilt params encode identically under the same seed.
        values = _values_for(params, size=200)
        gen_a, gen_b = np.random.default_rng(4), np.random.default_rng(4)
        batch_a = params.make_encoder().encode_batch(values, gen_a)
        batch_b = rebuilt.make_encoder().encode_batch(values, gen_b)
        for key in batch_a.columns:
            assert np.array_equal(batch_a.columns[key], batch_b.columns[key])

    def test_aggregator_roundtrip_preserves_state(self):
        params = HashtogramParams.create(1 << 12, 1.0, num_buckets=32, rng=0)
        values = np.random.default_rng(8).integers(0, 1 << 12, size=1_000)
        aggregator = params.make_aggregator()
        aggregator.absorb_batch(params.make_encoder().encode_batch(values, 1))
        rebuilt = pickle.loads(pickle.dumps(aggregator))
        assert rebuilt.num_reports == aggregator.num_reports
        queries = np.arange(128)
        assert np.array_equal(rebuilt.finalize().estimate_many(queries),
                              aggregator.finalize().estimate_many(queries))

    def test_unpickled_aggregator_merges_with_local_one(self):
        params = HashtogramParams.create(1 << 12, 1.0, num_buckets=32, rng=0)
        values = np.random.default_rng(8).integers(0, 1 << 12, size=1_000)
        batch = params.make_encoder().encode_batch(values, 1)
        local = params.make_aggregator().absorb_batch(batch.select(slice(0, 500)))
        remote = params.make_aggregator().absorb_batch(
            batch.select(slice(500, 1_000)))
        remote = pickle.loads(pickle.dumps(remote))
        merged = local.merge(remote)
        single = params.make_aggregator().absorb_batch(batch)
        queries = np.arange(128)
        assert np.array_equal(merged.finalize().estimate_many(queries),
                              single.finalize().estimate_many(queries))
