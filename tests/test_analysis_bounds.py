"""Tests for the Table 1 / theorem-statement bound formulas."""

import math

import pytest

from repro.analysis.bounds import (
    advanced_grouposition_epsilon,
    central_grouposition_epsilon,
    central_max_information_bound,
    composed_rr_epsilon,
    frequency_oracle_error,
    frequency_oracle_error_small_domain,
    genprot_report_bits,
    genprot_tv_distance,
    heavy_hitter_error_bassily_et_al,
    heavy_hitter_error_bassily_smith,
    heavy_hitter_error_this_work,
    lower_bound_error,
    max_information_bound,
    table1_error_comparison,
    table1_rows,
)


N, DOMAIN, EPS, BETA = 100_000, 1 << 20, 1.0, 0.05


class TestErrorFormulas:
    def test_this_work_formula(self):
        expected = math.sqrt(N * math.log(DOMAIN / BETA))
        assert heavy_hitter_error_this_work(N, DOMAIN, EPS, BETA) == pytest.approx(expected)

    def test_epsilon_scaling(self):
        assert heavy_hitter_error_this_work(N, DOMAIN, 2.0, BETA) == pytest.approx(
            heavy_hitter_error_this_work(N, DOMAIN, 1.0, BETA) / 2)

    def test_this_work_beats_bassily_et_al(self):
        """The paper's improvement: dropping the extra sqrt(log(1/beta))."""
        ours = heavy_hitter_error_this_work(N, DOMAIN, EPS, BETA)
        theirs = heavy_hitter_error_bassily_et_al(N, DOMAIN, EPS, BETA)
        assert ours < theirs
        assert theirs / ours == pytest.approx(math.sqrt(math.log(1 / BETA)))

    def test_beta_dependence_ordering_for_small_beta(self):
        """For very small beta the ordering is: this work < [3] < [4]."""
        beta = 1e-9
        ours = heavy_hitter_error_this_work(N, DOMAIN, EPS, beta)
        bnst = heavy_hitter_error_bassily_et_al(N, DOMAIN, EPS, beta)
        bs = heavy_hitter_error_bassily_smith(N, DOMAIN, EPS, beta)
        assert ours < bnst < bs

    def test_upper_bound_matches_lower_bound_shape(self):
        """Theorem 3.13 and Theorem 7.2 agree up to the constant."""
        upper = heavy_hitter_error_this_work(N, DOMAIN, EPS, BETA)
        lower = lower_bound_error(N, DOMAIN, EPS, BETA)
        assert upper == pytest.approx(lower)

    def test_frequency_oracle_errors(self):
        general = frequency_oracle_error(N, DOMAIN, EPS, BETA)
        small = frequency_oracle_error_small_domain(N, EPS, BETA)
        assert small < general
        tiny_domain = frequency_oracle_error(N, 16, EPS, BETA)
        assert tiny_domain < general

    def test_validation(self):
        with pytest.raises(ValueError):
            heavy_hitter_error_this_work(0, DOMAIN, EPS, BETA)
        with pytest.raises(ValueError):
            heavy_hitter_error_this_work(N, DOMAIN, EPS, 0.0)


class TestStructuralFormulas:
    def test_grouposition_epsilons(self):
        local = advanced_grouposition_epsilon(100, 0.1, 1e-6)
        central = central_grouposition_epsilon(100, 0.1)
        assert local < central

    def test_max_information_bounds(self):
        ldp = max_information_bound(10_000, 0.01, 0.05)
        central = central_max_information_bound(10_000, 0.01)
        assert ldp < central

    def test_composed_rr_epsilon(self):
        assert composed_rr_epsilon(25, 0.1, math.exp(-1)) == pytest.approx(
            6 * 0.1 * 5)

    def test_genprot_formulas(self):
        tv = genprot_tv_distance(1_000, 0.1, 1e-9, 20)
        assert 0 < tv < 1
        assert genprot_report_bits(20) == 5
        assert genprot_report_bits(2) == 1


class TestTable1:
    def test_three_rows_in_paper_order(self):
        rows = table1_rows()
        assert [row.name for row in rows] == ["this_work", "bassily_et_al",
                                              "bassily_smith"]

    def test_row_error_dispatch(self):
        rows = {row.name: row for row in table1_rows()}
        assert rows["this_work"].error(N, DOMAIN, EPS, BETA) == pytest.approx(
            heavy_hitter_error_this_work(N, DOMAIN, EPS, BETA))
        assert rows["bassily_smith"].error(N, DOMAIN, EPS, BETA) == pytest.approx(
            heavy_hitter_error_bassily_smith(N, DOMAIN, EPS, BETA))

    def test_comparison_sweep(self):
        betas = [0.1, 0.01, 0.001]
        table = table1_error_comparison(N, DOMAIN, EPS, betas)
        assert set(table) == {"this_work", "bassily_et_al", "bassily_smith"}
        for series in table.values():
            assert len(series) == 3
            # error grows as beta shrinks
            assert series[0] < series[2]
