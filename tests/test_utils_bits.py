"""Tests for repro.utils.bits: integer/bit/symbol conversions."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import (
    bits_needed,
    bits_to_int,
    hamming_distance,
    int_to_bits,
    int_to_symbols,
    next_power_of_two,
    symbols_to_int,
)


class TestBitsNeeded:
    def test_small_values(self):
        assert bits_needed(1) == 1
        assert bits_needed(2) == 1
        assert bits_needed(3) == 2
        assert bits_needed(256) == 8
        assert bits_needed(257) == 9

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bits_needed(0)
        with pytest.raises(ValueError):
            bits_needed(-5)


class TestBitConversions:
    def test_round_trip_explicit(self):
        assert int_to_bits(13, 4) == [1, 0, 1, 1]
        assert bits_to_int([1, 0, 1, 1]) == 13

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    @given(st.integers(min_value=0, max_value=2**40 - 1))
    def test_round_trip_property(self, value):
        bits = int_to_bits(value, 40)
        assert bits_to_int(bits) == value


class TestSymbolConversions:
    def test_round_trip_explicit(self):
        symbols = int_to_symbols(1000, 4, 10)
        assert symbols == [0, 0, 0, 1]
        assert symbols_to_int(symbols, 10) == 1000

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_symbols(1000, 2, 10)

    def test_rejects_bad_symbol(self):
        with pytest.raises(ValueError):
            symbols_to_int([11], 10)

    def test_rejects_small_alphabet(self):
        with pytest.raises(ValueError):
            int_to_symbols(3, 4, 1)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=2, max_value=97))
    def test_round_trip_property(self, value, alphabet):
        num_symbols = 1
        while alphabet**num_symbols <= value:
            num_symbols += 1
        symbols = int_to_symbols(value, num_symbols, alphabet)
        assert all(0 <= s < alphabet for s in symbols)
        assert symbols_to_int(symbols, alphabet) == value


class TestHammingDistance:
    def test_basic(self):
        assert hamming_distance([1, 0, 1], [1, 1, 1]) == 1
        assert hamming_distance([0, 0], [0, 0]) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance([1], [1, 0])


class TestNextPowerOfTwo:
    def test_values(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1023) == 1024
        assert next_power_of_two(1024) == 1024

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    @given(st.integers(min_value=1, max_value=2**30))
    def test_property(self, value):
        power = next_power_of_two(value)
        assert power >= value
        assert power & (power - 1) == 0
        assert power < 2 * value
