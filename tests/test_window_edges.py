"""Edge cases of :mod:`repro.server.window` retention and restore.

Satellite coverage for the boundary behavior the service relies on:
eviction *exactly at* the retention boundary, queries over windows whose
epochs have been fully or partially evicted, and a snapshot taken on one
side of an epoch roll restoring bit-identically on the other side.
"""

import json

import numpy as np
import pytest

from repro.protocol import ExplicitHistogramParams
from repro.server.window import WindowedAggregator

PARAMS = ExplicitHistogramParams(64, 1.0, "hadamard")
QUERIES = list(range(32))


def _batch(seed, n=200):
    gen = np.random.default_rng(seed)
    values = gen.integers(0, PARAMS.domain_size, size=n)
    return PARAMS.make_encoder().encode_batch(values, gen)


class TestRetentionBoundary:
    def test_eviction_exactly_at_boundary(self):
        windowed = WindowedAggregator(PARAMS, window=3)
        for epoch in (0, 1, 2):
            windowed.absorb_batch(_batch(epoch), epoch=epoch)
        assert windowed.epochs == [0, 1, 2]
        # epoch 3 arrives: the cutoff is max - window = 0, and the epoch
        # *exactly at* the cutoff is evicted (retention keeps epochs
        # strictly newer than newest - window)
        windowed.absorb_batch(_batch(3), epoch=3)
        assert windowed.epochs == [1, 2, 3]

    def test_absorb_exactly_at_cutoff_rejected(self):
        windowed = WindowedAggregator(PARAMS, window=3)
        windowed.absorb_batch(_batch(0), epoch=3)
        # newest=3, window=3: epoch 0 sits exactly at the cutoff and is
        # already outside retention; epoch 1 is the oldest acceptable tag
        with pytest.raises(ValueError, match="outside the retention window"):
            windowed.absorb_batch(_batch(1), epoch=0)
        windowed.absorb_batch(_batch(2), epoch=1)
        assert windowed.epochs == [1, 3]

    def test_rejected_stale_epoch_leaves_state_untouched(self):
        windowed = WindowedAggregator(PARAMS, window=2)
        windowed.absorb_batch(_batch(0), epoch=5)
        before = windowed.finalize().estimate_many(QUERIES)
        with pytest.raises(ValueError, match="outside the retention window"):
            windowed.absorb_batch(_batch(1), epoch=3)
        assert windowed.num_reports == 200
        assert np.array_equal(windowed.finalize().estimate_many(QUERIES),
                              before)


class TestEvictedWindowQueries:
    def test_query_over_fully_evicted_window_is_empty(self):
        windowed = WindowedAggregator(PARAMS, window=2)
        windowed.absorb_batch(_batch(0), epoch=0)
        windowed.absorb_batch(_batch(1), epoch=10)  # evicts epoch 0
        assert windowed.epochs == [10]
        # everything at or before the newest epoch's cutoff is gone; an
        # absolute cutoff past the newest epoch selects nothing
        assert windowed.select_epochs(min_epoch=10) == []
        merged = windowed.merged(min_epoch=10)
        assert merged.num_reports == 0
        assert merged.state_size >= 0  # a fresh, empty aggregator

    def test_partially_evicted_window_equals_fresh_server(self):
        # A windowed server that evicted old epochs answers exactly like a
        # fresh server fed only the retained epochs' reports (the module
        # docstring's guarantee), even when the query window reaches past
        # the evicted history.
        batches = {epoch: _batch(epoch) for epoch in (0, 1, 5, 6)}
        windowed = WindowedAggregator(PARAMS, window=2)
        for epoch, batch in sorted(batches.items()):
            windowed.absorb_batch(batch, epoch=epoch)
        assert windowed.epochs == [5, 6]
        fresh = WindowedAggregator(PARAMS)
        for epoch in (5, 6):
            fresh.absorb_batch(batches[epoch], epoch=epoch)
        served = windowed.finalize(window=10).estimate_many(QUERIES)
        assert np.array_equal(served,
                              fresh.finalize(window=10).estimate_many(QUERIES))

    def test_sparse_tags_exclude_old_epochs_from_value_window(self):
        windowed = WindowedAggregator(PARAMS)
        windowed.absorb_batch(_batch(0), epoch=0)
        windowed.absorb_batch(_batch(1), epoch=100)
        # value-based window: epoch 0 is 100 epochs old, so a window of 50
        # covers only the newest tag even though just two tags exist
        assert windowed.select_epochs(window=50) == [100]
        only_new = WindowedAggregator(PARAMS)
        only_new.absorb_batch(_batch(1), epoch=100)
        assert np.array_equal(
            windowed.finalize(window=50).estimate_many(QUERIES),
            only_new.finalize().estimate_many(QUERIES))


class TestSnapshotAcrossEpochRoll:
    def test_restore_then_roll_bit_identical(self):
        # snapshot before an eviction-triggering epoch arrives; the
        # restored collection must evict and finalize exactly like one
        # that never checkpointed
        checkpointed = WindowedAggregator(PARAMS, window=2)
        straight = WindowedAggregator(PARAMS, window=2)
        for epoch in (1, 2):
            checkpointed.absorb_batch(_batch(epoch), epoch=epoch)
            straight.absorb_batch(_batch(epoch), epoch=epoch)
        payload = json.loads(json.dumps(checkpointed.snapshot()))
        restored = WindowedAggregator.from_snapshot(payload)
        assert restored.window == 2
        assert restored.epochs == [1, 2]
        for windowed in (restored, straight):
            windowed.absorb_batch(_batch(3), epoch=3)  # rolls epoch 1 out
        assert restored.epochs == straight.epochs == [2, 3]
        assert np.array_equal(restored.finalize().estimate_many(QUERIES),
                              straight.finalize().estimate_many(QUERIES))

    def test_restore_tightened_window_prunes_immediately(self):
        wide = WindowedAggregator(PARAMS, window=5)
        for epoch in range(5):
            wide.absorb_batch(_batch(epoch), epoch=epoch)
        restored = WindowedAggregator.from_snapshot(
            json.loads(json.dumps(wide.snapshot())))
        restored.set_window(2)
        assert restored.epochs == [3, 4]
        reference = WindowedAggregator(PARAMS)
        for epoch in (3, 4):
            reference.absorb_batch(_batch(epoch), epoch=epoch)
        assert np.array_equal(restored.finalize().estimate_many(QUERIES),
                              reference.finalize().estimate_many(QUERIES))
