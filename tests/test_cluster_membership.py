"""Tests for elastic cluster membership (:mod:`repro.cluster.shardmap` and
the router's online add/drain/rolling-restart transitions).

Two layers.  The :class:`ShardMap` unit tests pin the versioned,
epoch-stamped routing value itself: legal transitions, id tombstones,
epoch-cut lookup, structural validation, and the checksummed on-disk
store that is every transition's commit point.  The integration tests
(marked ``cluster``) run real shard subprocesses through grow, drain,
grow-then-drain, rolling-restart, and a full router restart — each
mid-ingest — and assert the north-star guarantee survives every one:
queries answer **bit-identically** to the offline
:func:`repro.engine.run_simulation` reference under the same seed.
"""

import asyncio
import threading
from contextlib import contextmanager

import numpy as np
import pytest

from repro.cluster import ClusterRouter, ClusterSupervisor
from repro.cluster.shardmap import (
    RoutingEntry,
    ShardMap,
    ShardMapError,
    ShardMapStore,
)
from repro.engine import ShardPartition, encode_stream, run_simulation
from repro.protocol import ExplicitHistogramParams, HashtogramParams
from repro.server import AggregationClient
from repro.server.snapshot import SnapshotCorruptError
from test_cluster import running_cluster


def _partition(num_shards, rng=0):
    return ShardPartition.sample(num_shards, rng=rng)


def _map2():
    return ShardMap.initial(2, _partition(2))


# --------------------------------------------------------------------------------------
# the shard map value
# --------------------------------------------------------------------------------------

class TestShardMapTransitions:
    def test_initial_map(self):
        shard_map = _map2()
        assert shard_map.version == 1
        assert shard_map.shard_ids == (0, 1)
        assert shard_map.active_ids == (0, 1)
        assert shard_map.retired == ()
        assert len(shard_map.entries) == 1
        assert shard_map.entries[0].cut_epoch is None

    def test_grow_routes_only_new_epochs_through_the_new_shard(self):
        grown = _map2().with_joining(2).with_activated(2, cut_epoch=5,
                                                       partition=_partition(3))
        assert grown.version == 3
        assert grown.active_ids == (0, 1, 2)
        # epochs below the cut keep their original owners
        for epoch in range(5):
            for key in range(0, 4096, 64):
                assert grown.shard_for(key, epoch) in (0, 1)
        # from the cut on, all three shards take traffic
        owners = {grown.shard_for(key, 5) for key in range(0, 65536, 64)}
        assert owners == {0, 1, 2}

    def test_joining_shard_owns_no_epochs(self):
        joining = _map2().with_joining(2)
        assert joining.status_of(2) == "joining"
        assert joining.active_ids == (0, 1)
        assert not joining.is_routable(2)

    def test_drain_rewrites_every_entry_and_tombstones_the_id(self):
        grown = _map2().with_joining(2).with_activated(2, 3, _partition(3))
        draining = grown.with_drained_routing(0, target_id=1)
        assert draining.status_of(0) == "draining"
        assert not draining.is_routable(0)
        assert 0 in draining.live_ids  # still holds state until the handoff
        # its keyspace lands on the merge target in every epoch range
        for epoch in (0, 3, 99):
            for key in range(0, 4096, 64):
                assert draining.shard_for(key, epoch) != 0
        removed = draining.with_removed(0)
        assert removed.shard_ids == (1, 2)
        assert removed.retired == (0,)

    def test_ids_are_never_reused(self):
        removed = (_map2().with_joining(2).with_activated(2, 3, _partition(3))
                   .with_drained_routing(0, 1).with_removed(0))
        # shard 0 is retired: the next id skips over the tombstone
        assert removed.next_id == 3
        with pytest.raises(ShardMapError, match="unknown shard id 0"):
            removed.status_of(0)

    def test_transition_preconditions(self):
        shard_map = _map2()
        with pytest.raises(ShardMapError, match="already in the map"):
            shard_map.with_joining(1)
        with pytest.raises(ShardMapError, match="not joining"):
            shard_map.with_activated(0, 3, _partition(2))
        with pytest.raises(ShardMapError, match="not active"):
            shard_map.with_joining(2).with_drained_routing(2, 0)
        with pytest.raises(ShardMapError, match="different active shard"):
            shard_map.with_drained_routing(0, 0)
        with pytest.raises(ShardMapError, match="only draining or joining"):
            shard_map.with_drained_routing(0, 1).with_removed(1)

    def test_activation_cut_must_advance(self):
        grown = _map2().with_joining(2).with_activated(2, 4, _partition(3))
        again = grown.with_joining(3)
        with pytest.raises(ShardMapError, match="must exceed"):
            again.with_activated(3, 4, _partition(4))

    def test_cannot_drain_below_one_shard(self):
        drained = _map2().with_drained_routing(0, 1).with_removed(0)
        # the sole survivor can never be drained: there is no distinct
        # active shard left to take its keyspace
        with pytest.raises(ShardMapError):
            drained.with_drained_routing(1, 1)
        with pytest.raises(ShardMapError):
            drained.with_drained_routing(1, 0)

    def test_entry_for_picks_largest_cut_not_exceeding_epoch(self):
        shard_map = (_map2()
                     .with_joining(2).with_activated(2, 3, _partition(3))
                     .with_joining(3).with_activated(3, 7, _partition(4)))
        assert shard_map.entry_for(0).cut_epoch is None
        assert shard_map.entry_for(2).cut_epoch is None
        assert shard_map.entry_for(3).cut_epoch == 3
        assert shard_map.entry_for(6).cut_epoch == 3
        assert shard_map.entry_for(7).cut_epoch == 7
        assert shard_map.entry_for(10_000).cut_epoch == 7
        assert shard_map.newest_partition.num_shards == 4


class TestShardMapValidation:
    def test_rejects_unsorted_or_duplicate_ids(self):
        with pytest.raises(ShardMapError, match="duplicate or unsorted"):
            ShardMap(version=1, statuses=((1, "active"), (0, "active")),
                     entries=(RoutingEntry(None, (0, 1), _partition(2)),))

    def test_rejects_retired_overlap(self):
        with pytest.raises(ShardMapError, match="disjoint"):
            ShardMap(version=1, statuses=((0, "active"), (1, "active")),
                     entries=(RoutingEntry(None, (0, 1), _partition(2)),),
                     retired=(1,))

    def test_rejects_unknown_status(self):
        with pytest.raises(ShardMapError, match="unknown status"):
            ShardMap(version=1, statuses=((0, "zombie"), (1, "active")),
                     entries=(RoutingEntry(None, (1,), _partition(1)),))

    def test_rejects_entry_referencing_non_active_shard(self):
        with pytest.raises(ShardMapError, match="non-active"):
            ShardMap(version=1, statuses=((0, "active"), (1, "draining")),
                     entries=(RoutingEntry(None, (0, 1), _partition(2)),))

    def test_rejects_missing_all_epoch_entry(self):
        with pytest.raises(ShardMapError, match="cover all"):
            ShardMap(version=1, statuses=((0, "active"),),
                     entries=(RoutingEntry(3, (0,), _partition(1)),))

    def test_rejects_non_ascending_cuts(self):
        entries = (RoutingEntry(None, (0,), _partition(1)),
                   RoutingEntry(5, (0,), _partition(1)),
                   RoutingEntry(3, (0,), _partition(1)))
        with pytest.raises(ShardMapError, match="ascending"):
            ShardMap(version=1, statuses=((0, "active"),), entries=entries)

    def test_entry_rejects_partition_arity_mismatch(self):
        with pytest.raises(ShardMapError, match="slots"):
            RoutingEntry(None, (0, 1, 2), _partition(2))

    def test_round_trip_preserves_everything(self):
        shard_map = (_map2().with_joining(2).with_activated(2, 3,
                                                            _partition(3))
                     .with_drained_routing(0, 1).with_removed(0))
        clone = ShardMap.from_dict(shard_map.to_dict())
        assert clone == shard_map
        for epoch in (0, 3, 9):
            for key in range(0, 2048, 32):
                assert clone.shard_for(key, epoch) == \
                       shard_map.shard_for(key, epoch)

    def test_from_dict_rejects_foreign_documents(self):
        with pytest.raises(ShardMapError, match="not a shard map"):
            ShardMap.from_dict({"format": "something-else"})
        document = _map2().to_dict()
        document["format_version"] = 99
        with pytest.raises(ShardMapError, match="format version"):
            ShardMap.from_dict(document)


class TestShardMapStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ShardMapStore(tmp_path / "shardmap.json")
        shard_map = _map2().with_joining(2).with_activated(2, 1,
                                                           _partition(3))
        store.save(shard_map)
        assert store.load() == shard_map

    def test_missing_file_loads_none(self, tmp_path):
        assert ShardMapStore(tmp_path / "absent.json").load() is None

    def test_corrupt_map_is_loud(self, tmp_path):
        # the map is the commit point of every transition: a damaged file
        # must never be guessed around
        store = ShardMapStore(tmp_path / "shardmap.json")
        store.save(_map2())
        raw = bytearray(store.path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        store.path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptError):
            store.load()


# --------------------------------------------------------------------------------------
# live transitions, mid-ingest, against the offline reference
# --------------------------------------------------------------------------------------

def _stream(params, num_users, plan_seed, chunk_size, epochs=4):
    """Workload + chunk stream + per-chunk routes and banded epoch tags."""
    gen = np.random.default_rng(3)
    values = gen.integers(0, params.domain_size, size=num_users)
    values[: num_users // 4] = params.domain_size // 2
    offline = run_simulation(params, values,
                             rng=np.random.default_rng(plan_seed),
                             chunk_size=chunk_size).finalize()
    batches = list(encode_stream(params, values,
                                 rng=np.random.default_rng(plan_seed),
                                 chunk_size=chunk_size))
    routes, start = [], 0
    for batch in batches:
        routes.append(start)
        start += len(batch)
    tags = [(i * epochs) // len(batches) for i in range(len(batches))]
    return values, offline, batches, routes, tags


@pytest.mark.cluster
class TestOnlineMembership:
    def test_grow_mid_ingest_is_bit_identical(self, tmp_path):
        params = HashtogramParams.create(1 << 12, 1.0, num_buckets=16, rng=0)
        values, offline, batches, routes, tags = _stream(params, 600, 7, 64)
        queries = list(range(48))
        with running_cluster(params, 2, tmp_path) as (_, _r, host, port):
            with AggregationClient(host, port) as client:
                for i, batch in enumerate(batches):
                    if i == len(batches) // 3:
                        reply = client.add_shard()
                        assert reply["type"] == "shard_added"
                        assert reply["shard"] == 2
                        # the cut lands strictly above every seen epoch
                        assert reply["cut_epoch"] > tags[i - 1]
                    client.send_batch(batch, epoch=tags[i], route=routes[i])
                assert client.sync() == len(values)
                served = client.query(queries)
                document = client.shard_map()["map"]
                stats = client.stats()
        assert np.array_equal(served, offline.estimate_many(queries))
        grown = ShardMap.from_dict(document)
        assert grown.active_ids == (0, 1, 2)
        assert len(grown.entries) == 2
        # the new shard genuinely absorbed post-cut traffic
        by_shard = {s["shard"]: s["reports_absorbed"]
                    for s in stats["shards"]}
        assert by_shard[2] > 0

    def test_drain_mid_ingest_hands_off_and_reaps(self, tmp_path):
        params = ExplicitHistogramParams(64, 1.0, "hadamard")
        values, offline, batches, routes, tags = _stream(params, 480, 11, 48)
        queries = list(range(32))
        with running_cluster(params, 3, tmp_path) as cluster:
            supervisor, _router, host, port = cluster
            with AggregationClient(host, port) as client:
                for i, batch in enumerate(batches):
                    if i == len(batches) // 2:
                        reply = client.drain_shard(1)
                        assert reply["type"] == "drained"
                        assert reply["shard"] == 1
                        assert reply["target"] in (0, 2)
                        assert reply["num_reports"] >= 0
                    client.send_batch(batch, epoch=tags[i], route=routes[i])
                assert client.sync() == len(values)
                served = client.query(queries)
                document = client.shard_map()["map"]
            # the drained subprocess is reaped, not left running
            assert not supervisor.shards[1].alive
        assert np.array_equal(served, offline.estimate_many(queries))
        drained = ShardMap.from_dict(document)
        assert drained.active_ids == (0, 2)
        assert drained.retired == (1,)

    def test_grow_then_drain_round_trip(self, tmp_path):
        params = HashtogramParams.create(1 << 12, 1.0, num_buckets=16, rng=0)
        values, offline, batches, routes, tags = _stream(params, 600, 13, 50)
        queries = list(range(40))
        n = len(batches)
        with running_cluster(params, 2, tmp_path) as (_, _r, host, port):
            with AggregationClient(host, port) as client:
                for i, batch in enumerate(batches):
                    if i == n // 4:
                        added = client.add_shard()
                    if i == (3 * n) // 4:
                        drained = client.drain_shard(0)
                    client.send_batch(batch, epoch=tags[i], route=routes[i])
                assert client.sync() == len(values)
                served = client.query(queries)
                document = client.shard_map()["map"]
        assert np.array_equal(served, offline.estimate_many(queries))
        assert added["shard"] == 2
        assert drained["shard"] == 0
        final = ShardMap.from_dict(document)
        assert final.active_ids == (1, 2)
        assert final.retired == (0,)
        assert final.next_id == 3

    def test_drain_is_idempotent_for_retired_ids(self, tmp_path):
        params = ExplicitHistogramParams(64, 1.0, "hadamard")
        with running_cluster(params, 2, tmp_path) as (_, _r, host, port):
            with AggregationClient(host, port) as client:
                first = client.drain_shard(0)
                again = client.drain_shard(0)
        assert first["type"] == "drained"
        # a retried drain of an already-retired id reports success without
        # re-running the transition (clients retry on router recovery)
        assert again["type"] == "drained"
        assert again.get("already") or again["shard"] == 0

    def test_rolling_restart_mid_ingest(self, tmp_path):
        params = ExplicitHistogramParams(64, 1.0, "hadamard")
        values, offline, batches, routes, tags = _stream(params, 480, 17, 48)
        queries = list(range(32))
        with running_cluster(params, 2, tmp_path) as cluster:
            supervisor, _router, host, port = cluster
            with AggregationClient(host, port) as client:
                half = len(batches) // 2
                for i in range(half):
                    client.send_batch(batches[i], epoch=tags[i],
                                      route=routes[i])
                reply = client.rolling_restart()
                assert reply["type"] == "restarted"
                assert reply["shards"] == [0, 1]
                for i in range(half, len(batches)):
                    client.send_batch(batches[i], epoch=tags[i],
                                      route=routes[i])
                assert client.sync() == len(values)
                served = client.query(queries)
            assert all(shard.restarts >= 1 for shard in supervisor.shards)
        assert np.array_equal(served, offline.estimate_many(queries))


# --------------------------------------------------------------------------------------
# a full router restart between transitions (journals + persisted map)
# --------------------------------------------------------------------------------------

@contextmanager
def _manual_router(params, supervisor, **kwargs):
    """A router whose lifetime the test controls (stop ≠ cluster stop)."""
    router = ClusterRouter(params, supervisor=supervisor, rng=0, **kwargs)
    started = threading.Event()
    shared = {}

    def run() -> None:
        async def main() -> None:
            shared["loop"] = asyncio.get_running_loop()
            shared["hp"] = await router.start("127.0.0.1", 0)
            started.set()
            await router.serve_until_stopped()
        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(30), "router failed to start"
    try:
        yield router, shared["hp"]
    finally:
        shared["loop"].call_soon_threadsafe(router._stopping.set)
        thread.join(30)
        assert not thread.is_alive(), "router thread did not stop"


@pytest.mark.cluster
class TestRouterRestartResume:
    def test_membership_and_journals_survive_router_replacement(self,
                                                                tmp_path):
        params = ExplicitHistogramParams(64, 1.0, "hadamard")
        values, offline, batches, routes, tags = _stream(params, 480, 19, 40)
        queries = list(range(32))
        n = len(batches)
        supervisor = ClusterSupervisor(params, 2, tmp_path)
        supervisor.start()
        try:
            with _manual_router(params, supervisor) as (_, (host, port)):
                with AggregationClient(host, port) as client:
                    for i in range(n // 2):
                        if i == n // 4:
                            added = client.add_shard()
                        client.send_batch(batches[i], epoch=tags[i],
                                          route=routes[i])
                    # sync (so every fire-and-forget frame is delivered)
                    # but deliberately no snapshot barrier: the journals
                    # keep every frame, and the replacement router must
                    # load them and resume stamping above their watermark
                    client.sync()
            assert any(path.stat().st_size > 0
                       for path in tmp_path.glob("journal-shard-*.bin"))
            with _manual_router(params, supervisor) as (_, (host, port)):
                with AggregationClient(host, port) as client:
                    resumed = ShardMap.from_dict(client.shard_map()["map"])
                    assert resumed.active_ids == (0, 1, 2)
                    for i in range(n // 2, n):
                        if i == (3 * n) // 4:
                            drained = client.drain_shard(1)
                        client.send_batch(batches[i], epoch=tags[i],
                                          route=routes[i])
                    assert client.sync() == len(values)
                    served = client.query(queries)
                    final = ShardMap.from_dict(client.shard_map()["map"])
        finally:
            supervisor.stop()
        assert added["shard"] == 2
        assert drained["shard"] == 1
        assert final.active_ids == (0, 2)
        assert final.retired == (1,)
        assert np.array_equal(served, offline.estimate_many(queries))
