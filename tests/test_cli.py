"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "table1", "--quick"])
        assert args.experiment == "table1"
        assert args.quick


class TestListCommand:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestRunCommand:
    def test_unknown_experiment(self, capsys):
        assert main(["run", "does-not-exist"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_quick_composed_rr(self, capsys):
        assert main(["run", "composed-rr", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E7" in out
        assert "worst_case_loss" in out

    def test_quick_lower_bound_has_two_tables(self, capsys):
        assert main(["run", "lower-bound", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E9a" in out and "E9b" in out

    def test_quick_frequency_oracle(self, capsys):
        assert main(["run", "frequency-oracle", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "hashtogram" in out

    def test_every_experiment_is_registered_with_description(self):
        for name, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)


class TestQuickstartCommand:
    def test_quickstart_small(self, capsys):
        assert main(["quickstart", "--num-users", "15000", "--epsilon", "4.0"]) == 0
        out = capsys.readouterr().out
        assert "recovered heavy hitters" in out
        assert "communication per user" in out
