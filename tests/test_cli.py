"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "table1", "--quick"])
        assert args.experiment == "table1"
        assert args.quick


class TestListCommand:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestRunCommand:
    def test_unknown_experiment(self, capsys):
        assert main(["run", "does-not-exist"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_quick_composed_rr(self, capsys):
        assert main(["run", "composed-rr", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E7" in out
        assert "worst_case_loss" in out

    def test_quick_lower_bound_has_two_tables(self, capsys):
        assert main(["run", "lower-bound", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E9a" in out and "E9b" in out

    def test_quick_frequency_oracle(self, capsys):
        assert main(["run", "frequency-oracle", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "hashtogram" in out

    def test_every_experiment_is_registered_with_description(self):
        for name, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)


class TestQuickstartCommand:
    def test_quickstart_small(self, capsys):
        assert main(["quickstart", "--num-users", "15000", "--epsilon", "4.0"]) == 0
        out = capsys.readouterr().out
        assert "recovered heavy hitters" in out
        assert "communication per user" in out


class TestSimulateCommand:
    def _estimates_table(self, out: str) -> str:
        """The output rows up to (not including) the timing lines."""
        return out.split("\nreport size")[0]

    def test_sharded_simulate(self, capsys):
        assert main(["simulate", "--shards", "3", "--num-users", "5000"]) == 0
        out = capsys.readouterr().out
        assert "3 shard(s)" in out and "reports/s" in out

    def test_workers_bit_identical(self, capsys):
        base = ["simulate", "--num-users", "5000", "--domain-size", "4096"]
        assert main(base + ["--workers", "1"]) == 0
        out_serial = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        out_parallel = capsys.readouterr().out
        assert "engine worker(s)" in out_parallel
        assert (self._estimates_table(out_serial).replace("1 engine", "N engine")
                == self._estimates_table(out_parallel).replace("2 engine",
                                                               "N engine"))

    def test_rejects_bad_worker_count(self, capsys):
        assert main(["simulate", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err


class TestBenchCommand:
    def test_writes_bench_json(self, tmp_path, capsys):
        output = tmp_path / "BENCH_engine.json"
        assert main(["bench", "--num-users", "5000", "--workers", "1,2",
                     "--domain-size", "4096", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "engine scaling" in out and str(output) in out

        import json
        payload = json.loads(output.read_text())
        assert payload["benchmark"] == "engine_scaling"
        assert payload["host"]["cpu_count"] >= 1
        rows = payload["results"]
        assert [row["workers"] for row in rows] == [1, 2]
        for row in rows:
            assert row["protocol"] == "hashtogram"
            assert row["reports_per_s"] > 0
            assert row["identical_to_1_worker"] is True
        assert rows[0]["speedup_vs_1"] == 1.0

    def test_rejects_malformed_workers(self, capsys):
        assert main(["bench", "--workers", "two"]) == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_rejects_unknown_protocol(self, capsys):
        assert main(["bench", "--protocols", "telepathy"]) == 2
        assert "telepathy" in capsys.readouterr().err

    def test_baseline_is_the_one_worker_run_regardless_of_order(self, tmp_path,
                                                                capsys):
        output = tmp_path / "bench.json"
        assert main(["bench", "--num-users", "4000", "--workers", "2,1",
                     "--domain-size", "1024", "--output", str(output)]) == 0
        capsys.readouterr()
        import json
        rows = json.loads(output.read_text())["results"]
        by_workers = {row["workers"]: row for row in rows}
        assert by_workers[1]["speedup_vs_1"] == 1.0
        assert by_workers[2]["identical_to_1_worker"] is True


class TestMembershipScript:
    """The ``--membership add:FRAC,drain:FRAC[:SHARD]`` mini-language."""

    def _parse(self, text):
        from repro.cli import _parse_membership_script
        return _parse_membership_script(text)

    def test_single_add(self):
        assert self._parse("add:0.5") == [(0.5, "add", 0)]

    def test_drain_defaults_to_shard_zero(self):
        assert self._parse("drain:0.25") == [(0.25, "drain", 0)]

    def test_drain_with_explicit_shard(self):
        assert self._parse("drain:0.75:3") == [(0.75, "drain", 3)]

    def test_list_is_sorted_by_fraction(self):
        script = self._parse("drain:0.66:1,add:0.33")
        assert script == [(0.33, "add", 0), (0.66, "drain", 1)]

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="add:FRAC"):
            self._parse("shrink:0.5")

    def test_rejects_missing_fraction(self):
        with pytest.raises(ValueError, match="add:FRAC"):
            self._parse("add")

    def test_rejects_non_numeric_fraction(self):
        with pytest.raises(ValueError, match="bad fraction"):
            self._parse("add:half")

    @pytest.mark.parametrize("fraction", ["0", "1", "1.5", "-0.2"])
    def test_rejects_out_of_range_fractions(self, fraction):
        with pytest.raises(ValueError, match="strictly between"):
            self._parse(f"add:{fraction}")

    def test_rejects_shard_id_on_add(self):
        with pytest.raises(ValueError, match="only drain"):
            self._parse("add:0.5:2")

    def test_parser_wires_the_flags(self):
        parser = build_parser()
        args = parser.parse_args(["load-test", "--cluster", "2",
                                  "--membership", "add:0.33,drain:0.66"])
        assert args.membership == "add:0.33,drain:0.66"
        args = parser.parse_args(["chaos-test", "--membership",
                                  "--transport", "shm"])
        assert args.membership is True
        assert args.transport == "shm"
        assert args.min_kinds is None
        args = parser.parse_args(["cluster-ctl", "drain-shard", "--server",
                                  "127.0.0.1:9000", "--shard", "1"])
        assert args.verb == "drain-shard"
        assert args.shard == 1

    def test_load_test_membership_requires_cluster(self, capsys):
        assert main(["load-test", "--membership", "add:0.5"]) == 2
        assert "--cluster" in capsys.readouterr().err

    def test_chaos_membership_requires_two_shards(self, capsys):
        assert main(["chaos-test", "--membership", "--cluster", "1"]) == 2
        assert "--cluster" in capsys.readouterr().err
