"""The benchmark-regression gates must catch doctored BENCH payloads.

CI runs ``benchmarks/bench_server_ingest.py --check BENCH_server.json
--baseline BENCH_baseline.json --engine BENCH_engine.json``; these tests
pin down the gate logic itself — a payload matching baseline passes, a
payload whose binary ingest throughput collapsed (or whose wire shrink
regressed below 3×) fails — and run the actual ``--check`` entry point
against a doctored file, exactly as the CI self-test step does.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from bench_server_ingest import (  # noqa: E402 - path set up above
    check_engine_regression,
    check_throughput_regression,
    check_wire_shrink,
    main,
)

BASELINE = {
    "baseline": "bench-regression-baseline",
    "max_drop": 0.40,
    "server": {"hashtogram": {"binary": 20_000_000, "json": 5_000_000}},
    "engine": {"hashtogram": 4_000_000},
}


def _server_payload(binary_rate=20_000_000, json_rate=5_000_000,
                    binary_mb=4.0, json_mb=22.0):
    return {"results": [
        {"protocol": "hashtogram", "wire_format": "json",
         "reports_per_s": json_rate, "wire_mb": json_mb},
        {"protocol": "hashtogram", "wire_format": "binary",
         "reports_per_s": binary_rate, "wire_mb": binary_mb},
    ]}


def _engine_payload(rate=4_000_000, workers=1):
    return {"results": [{"protocol": "hashtogram", "workers": workers,
                         "reports_per_s": rate}]}


class TestThroughputGate:
    def test_matching_baseline_passes(self):
        assert check_throughput_regression(_server_payload(), BASELINE) == []

    def test_faster_host_passes(self):
        payload = _server_payload(binary_rate=60_000_000)
        assert check_throughput_regression(payload, BASELINE) == []

    def test_drop_within_margin_passes(self):
        payload = _server_payload(binary_rate=13_000_000)  # -35%
        assert check_throughput_regression(payload, BASELINE) == []

    def test_drop_beyond_margin_fails(self):
        payload = _server_payload(binary_rate=10_000_000)  # -50%
        failures = check_throughput_regression(payload, BASELINE)
        assert len(failures) == 1
        assert "hashtogram/binary" in failures[0]
        assert "regressed" in failures[0]

    def test_missing_measured_row_fails(self):
        payload = {"results": [_server_payload()["results"][0]]}  # json only
        failures = check_throughput_regression(payload, BASELINE)
        assert any("no measured row" in f for f in failures)

    def test_baseline_max_drop_is_honored(self):
        tight = dict(BASELINE, max_drop=0.10)
        payload = _server_payload(binary_rate=17_000_000)  # -15%
        assert check_throughput_regression(payload, BASELINE) == []
        assert check_throughput_regression(payload, tight) != []


class TestEngineGate:
    def test_matching_baseline_passes(self):
        assert check_engine_regression(_engine_payload(), BASELINE) == []

    def test_collapsed_throughput_fails(self):
        failures = check_engine_regression(_engine_payload(rate=1_000_000),
                                           BASELINE)
        assert any("engine/hashtogram" in f for f in failures)

    def test_only_one_worker_rows_count(self):
        payload = {"results": [
            {"protocol": "hashtogram", "workers": 4,
             "reports_per_s": 16_000_000},
        ]}
        failures = check_engine_regression(payload, BASELINE)
        assert any("no measured 1-worker row" in f for f in failures)


class TestWireShrinkGate:
    def test_healthy_shrink_passes(self):
        assert check_wire_shrink(_server_payload()) == []

    def test_regressed_shrink_fails(self):
        payload = _server_payload(binary_mb=10.0, json_mb=22.0)  # 2.2x
        failures = check_wire_shrink(payload)
        assert any("smaller" in f for f in failures)


class TestCheckEntryPoint:
    """The CI invocation end to end, including the doctored-file self-test."""

    @pytest.fixture()
    def committed_baseline(self):
        path = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"
        assert path.exists(), "BENCH_baseline.json must be committed"
        return path

    def test_committed_baseline_shape(self, committed_baseline):
        baseline = json.loads(committed_baseline.read_text())
        assert baseline["baseline"] == "bench-regression-baseline"
        assert 0.0 < float(baseline["max_drop"]) < 1.0
        assert "hashtogram" in baseline["server"]
        assert "binary" in baseline["server"]["hashtogram"]
        assert "hashtogram" in baseline["engine"]

    def test_doctored_payload_fails_check(self, tmp_path, committed_baseline,
                                          capsys):
        baseline = json.loads(committed_baseline.read_text())
        reference = float(baseline["server"]["hashtogram"]["binary"])
        doctored = _server_payload(binary_rate=int(reference * 0.1))
        path = tmp_path / "BENCH_doctored.json"
        path.write_text(json.dumps(doctored))
        code = main(["--check", str(path),
                     "--baseline", str(committed_baseline)])
        assert code == 1
        assert "regressed" in capsys.readouterr().err

    def test_healthy_payload_passes_check(self, tmp_path, committed_baseline):
        baseline = json.loads(committed_baseline.read_text())
        healthy = _server_payload(
            binary_rate=int(float(baseline["server"]["hashtogram"]["binary"])),
            json_rate=int(float(baseline["server"]["hashtogram"]["json"])))
        path = tmp_path / "BENCH_healthy.json"
        path.write_text(json.dumps(healthy))
        assert main(["--check", str(path),
                     "--baseline", str(committed_baseline)]) == 0

    def test_engine_requires_baseline(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(_server_payload()))
        assert main(["--check", str(path), "--engine", str(path)]) == 2
