"""Tests for the repo-native static-analysis suite (:mod:`repro.tools.lint`).

Each rule family is exercised twice: a *flagging* fixture (a minimal tree
that must produce the family's finding) and a *near-miss* fixture (the
closest legal code, which must stay clean) — the near-misses are what keep
the suite usable, since a rule that cries wolf gets pragma'd into silence.
The suite also self-tests: the repo's own ``src/`` tree must lint clean,
which is exactly the CI gate (``python -m repro.tools.lint src/ tests/``).
"""

import textwrap
from pathlib import Path

import pytest

from repro.tools.lint import Diagnostic, lint_paths, main
from repro.tools.lint.diagnostics import PragmaIndex, match_code, selected
from repro.tools.lint.rules.wire_schema import parse_wire_doc

REPO = Path(__file__).resolve().parents[1]
WIRE_DOC = REPO / "docs" / "wire-protocol.md"


def run_lint(tmp_path, files, select=(), ignore=(), wire_doc=None):
    """Materialize ``{relpath: source}`` under a tmp tree and lint it."""
    root = tmp_path / "tree"
    for rel, content in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(content))
    return lint_paths([root], select=select, ignore=ignore,
                      wire_doc=wire_doc)


def codes(diagnostics):
    return [d.code for d in diagnostics]


# --------------------------------------------------------------------------------------
# diagnostics plumbing
# --------------------------------------------------------------------------------------

class TestDiagnostics:
    def test_format_and_hint(self):
        diag = Diagnostic(path="a.py", line=3, col=7, code="RPL101",
                          message="boom", hint="seed it")
        assert diag.format() == "a.py:3:7: RPL101 [error] boom"
        assert "fix-hint: seed it" in diag.format(show_hint=True)

    def test_match_code_family_prefix(self):
        assert match_code("RPL104", ["RPL1"])
        assert match_code("RPL104", ["RPL104"])
        assert not match_code("RPL104", ["RPL2", "RPL105"])

    def test_select_then_ignore(self):
        assert selected("RPL101", ["RPL1"], [])
        assert not selected("RPL101", ["RPL2"], [])
        assert not selected("RPL101", ["RPL1"], ["RPL101"])
        assert selected("RPL102", ["RPL1"], ["RPL101"])

    def test_pragma_parse_same_line_and_standalone(self):
        index = PragmaIndex.parse(textwrap.dedent("""\
            x = 1  # repro-lint: ignore[RPL103] logging only
            # repro-lint: ignore[RPL1] fixture block below
            y = 2
        """))
        assert index.suppresses(1, "RPL103")
        assert not index.suppresses(1, "RPL102")
        assert index.suppresses(3, "RPL104")


# --------------------------------------------------------------------------------------
# RPL1 — determinism
# --------------------------------------------------------------------------------------

class TestDeterminismRules:
    def test_global_rng_flagged(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/protocol/sampler.py": """\
            import numpy as np

            def sample(n):
                return np.random.rand(n)
        """})
        assert codes(diags) == ["RPL102"]

    def test_stdlib_random_flagged(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/engine/pick.py": """\
            import random

            def pick(items):
                return random.choice(items)
        """})
        assert codes(diags) == ["RPL102"]

    def test_unseeded_default_rng_flagged(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/randomizers/fresh.py": """\
            import numpy as np

            def fresh():
                return np.random.default_rng()
        """})
        assert codes(diags) == ["RPL101"]

    def test_wall_clock_flagged(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/protocol/stamp.py": """\
            import time

            def stamp():
                return time.time()
        """})
        assert codes(diags) == ["RPL103"]

    def test_set_iteration_flagged(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/protocol/order.py": """\
            def walk(xs):
                out = []
                for x in set(xs):
                    out.append(x)
                return out + list({1, 2, 3})
        """})
        assert codes(diags) == ["RPL104", "RPL104"]

    def test_near_misses_stay_clean(self, tmp_path):
        diags = run_lint(tmp_path, {
            # seeded generator, perf_counter, sorted set: all legal
            "repro/protocol/clean.py": """\
                import time

                import numpy as np

                def sample(n, rng):
                    gen = np.random.default_rng(rng)
                    tick = time.perf_counter()
                    order = sorted({1, 2, 3})
                    return gen.integers(0, 10, size=n), tick, order
            """,
            # same hazards outside the deterministic zones are not flagged
            "repro/estimators/loose.py": """\
                import numpy as np

                def sample(n):
                    return np.random.rand(n)
            """,
        })
        assert diags == []


# --------------------------------------------------------------------------------------
# RPL2 — exact-integer aggregator state
# --------------------------------------------------------------------------------------

class TestExactnessRules:
    def test_hot_zone_float_operations_flagged(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/protocol/agg.py": """\
            import numpy as np

            from repro.protocol.wire import ServerAggregator

            class MyAggregator(ServerAggregator):
                def _merge_impl(self, other):
                    self.scale = 0.5
                    self.count = self.count / 2
                    self.value = float(self.value)
                    self.cells = self.cells.astype(np.float64)
                    self.grid = np.zeros(4, dtype=float)
                    return self
        """})
        assert codes(diags) == ["RPL201", "RPL202", "RPL204", "RPL203",
                                "RPL203"]

    def test_transitive_subclass_is_in_zone(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/protocol/deep.py": """\
            from repro.protocol.wire import ServerAggregator

            class Base(ServerAggregator):
                pass

            class Leaf(Base):
                def absorb_batch(self, reports):
                    self.total += len(reports) / 1
        """})
        assert codes(diags) == ["RPL202"]

    def test_near_misses_stay_clean(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/protocol/fine.py": """\
            from repro.protocol.wire import ServerAggregator

            class FineAggregator(ServerAggregator):
                def _merge_impl(self, other):
                    self.count = self.count // 2
                    return self

                def finalize(self):
                    # debiasing is float math by design: outside the zone
                    return self.count / (1.0 - 0.5)

            class NotAnAggregator:
                def merge(self, other):
                    return self.count / 2
        """})
        assert diags == []


# --------------------------------------------------------------------------------------
# RPL3 — async safety
# --------------------------------------------------------------------------------------

class TestAsyncSafetyRules:
    def test_blocking_calls_flagged(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/server/svc.py": """\
            import time

            class Service:
                async def handle(self):
                    time.sleep(1)
                    data = open("f").read()
                    return self.store.save(data)
        """})
        assert codes(diags) == ["RPL301", "RPL301", "RPL301"]

    def test_check_then_act_race_flagged(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/cluster/boot.py": """\
            class Router:
                async def start(self):
                    if self._server is None:
                        await self.bind()
                        self._server = object()
        """})
        assert codes(diags) == ["RPL302"]

    def test_near_misses_stay_clean(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/server/fine.py": """\
            import asyncio
            import time

            class Service:
                def sync_helper(self):
                    # synchronous helpers may block: they run in executors
                    time.sleep(1)
                    return open("f").read()

                async def handle(self):
                    loop = asyncio.get_running_loop()
                    return await loop.run_in_executor(None, self.sync_helper)

                async def locked_update(self):
                    async with self._lock:
                        if self._server is None:
                            await self.bind()
                            self._server = object()

                async def commit_before_await(self):
                    self._server = object()
                    await self.bind()

                async def counters(self, kind):
                    # unawaited += is atomic on the loop; two exclusive
                    # branches must not pair up across their awaits
                    if kind == "query":
                        self.stats.queries += 1
                        await self.reply()
                        return
                    if kind == "state":
                        await self.compute()
                        self.stats.queries += 1
        """})
        assert diags == []

    def test_blocking_wait_in_transport_ring_flagged(self, tmp_path):
        # the shm ring's wait path spins on shared counters inside `async
        # def`: a time.sleep there freezes every link on the event loop
        diags = run_lint(tmp_path, {"repro/transport/ring.py": """\
            import time

            class RingReader:
                async def readexactly(self, n):
                    while self._readable() < n:
                        time.sleep(0.0005)
                    return self._take(n)
        """})
        assert codes(diags) == ["RPL301"]
        assert "time.sleep" in diags[0].message

    def test_asyncio_pause_in_transport_ring_is_clean(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/transport/ring.py": """\
            import asyncio

            class RingReader:
                async def readexactly(self, n):
                    spins = 0
                    while self._readable() < n:
                        await asyncio.sleep(0 if spins < 128 else 0.0005)
                        spins += 1
                    return self._take(n)
        """})
        assert diags == []

    def test_blocking_outside_async_zone_ignored(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/engine/worker.py": """\
            import time

            async def crunch(self):
                time.sleep(1)
        """})
        assert diags == []


# --------------------------------------------------------------------------------------
# RPL4 — wire-schema drift
# --------------------------------------------------------------------------------------

BINARY_MODULE = """\
    import struct

    BINARY_MAGIC = 0xB1
    BINARY_VERSION = 1
    KIND_REPORTS = 1
    KIND_STATE = 2
    FLAG_ROUTED = 0x01
    FLAG_SEQUENCED = 0x02

    _HEADER = struct.Struct("<BBBB")
    _REPORTS_FIXED = struct.Struct("<qQHH")
    _ROUTE_FIELD = struct.Struct("<q")
    _SEQ_FIELD = struct.Struct("<Q")
    _STATE_FIXED = struct.Struct("<II")
"""

FRAMING_MODULE = """\
    import struct

    MAX_FRAME_BYTES = 1 << 30
    _HEADER = struct.Struct("!I")
"""

SHM_MODULE = """\
    import struct

    RING_MAGIC = 0x52494E47
    CTL_MAGIC = 0x444F4F52
    RING_VERSION = 1

    _RING_HEADER = struct.Struct("<IIQQQII")
    _CTL_HEADER = struct.Struct("<IIII")
    _SLOT = struct.Struct("<II")
"""


class TestWireSchemaRules:
    def test_doc_parses_to_expected_schema(self):
        schema = parse_wire_doc(WIRE_DOC.read_text())
        assert schema.problems == []
        assert schema.constants == {
            "BINARY_MAGIC": 0xB1, "BINARY_VERSION": 1, "KIND_REPORTS": 1,
            "KIND_STATE": 2, "FLAG_ROUTED": 0x01, "FLAG_SEQUENCED": 0x02,
            "MAX_FRAME_BYTES": 1 << 30,
            "RING_MAGIC": 0x52494E47, "CTL_MAGIC": 0x444F4F52,
            "RING_VERSION": 1,
            "SNAPSHOT_MAGIC": 0x504E5352,
            "_MAX_RECORD_BYTES": 1 << 30,
        }
        assert schema.structs["protocol/binary.py"] == {
            "_HEADER": "<BBBB", "_REPORTS_FIXED": "<qQHH",
            "_ROUTE_FIELD": "<q", "_SEQ_FIELD": "<Q", "_STATE_FIXED": "<II",
        }
        assert schema.structs["server/framing.py"] == {"_HEADER": "!I"}
        assert schema.structs["transport/shm.py"] == {
            "_RING_HEADER": "<IIQQQII", "_CTL_HEADER": "<IIII",
            "_SLOT": "<II",
        }
        assert schema.structs["server/snapshot.py"] == {
            "_CONTAINER_HEADER": "<III",
        }
        assert schema.structs["cluster/journal.py"] == {
            "_RECORD_HEADER": "<II", "_ENTRY_FIXED": "<IQ",
        }

    def test_matching_modules_are_clean(self, tmp_path):
        diags = run_lint(tmp_path, {
            "repro/protocol/binary.py": BINARY_MODULE,
            "repro/server/framing.py": FRAMING_MODULE,
        }, wire_doc=WIRE_DOC)
        assert diags == []

    def test_doctored_magic_is_drift(self, tmp_path):
        doctored = BINARY_MODULE.replace("BINARY_MAGIC = 0xB1",
                                         "BINARY_MAGIC = 0xB2")
        diags = run_lint(tmp_path, {"repro/protocol/binary.py": doctored},
                         wire_doc=WIRE_DOC)
        assert codes(diags) == ["RPL401"]
        assert "BINARY_MAGIC" in diags[0].message

    def test_doctored_struct_format_is_drift(self, tmp_path):
        doctored = BINARY_MODULE.replace('"<qQHH"', '"<qQHI"')
        diags = run_lint(tmp_path, {"repro/protocol/binary.py": doctored},
                         wire_doc=WIRE_DOC)
        assert codes(diags) == ["RPL401"]
        assert "_REPORTS_FIXED" in diags[0].message

    def test_missing_required_constant(self, tmp_path):
        doctored = BINARY_MODULE.replace("    FLAG_ROUTED = 0x01\n", "")
        diags = run_lint(tmp_path, {"repro/protocol/binary.py": doctored},
                         wire_doc=WIRE_DOC)
        assert codes(diags) == ["RPL402"]
        assert "FLAG_ROUTED" in diags[0].message

    def test_missing_doc_reported(self, tmp_path):
        diags = run_lint(tmp_path,
                         {"repro/protocol/binary.py": BINARY_MODULE})
        assert codes(diags) == ["RPL400"]

    def test_doctored_doc_is_unparseable(self, tmp_path):
        stripped = "\n".join(
            line for line in WIRE_DOC.read_text().splitlines()
            if not line.startswith("magic"))
        doc = tmp_path / "wire-protocol.md"
        doc.write_text(stripped)
        diags = run_lint(tmp_path,
                         {"repro/protocol/binary.py": BINARY_MODULE},
                         wire_doc=doc)
        assert "RPL400" in codes(diags)
        assert any("BINARY_MAGIC" in d.message for d in diags)

    def test_frame_limit_drift(self, tmp_path):
        doctored = FRAMING_MODULE.replace("1 << 30", "1 << 20")
        diags = run_lint(tmp_path, {"repro/server/framing.py": doctored},
                         wire_doc=WIRE_DOC)
        assert codes(diags) == ["RPL401"]
        assert "MAX_FRAME_BYTES" in diags[0].message

    def test_matching_shm_module_is_clean(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/transport/shm.py": SHM_MODULE},
                         wire_doc=WIRE_DOC)
        assert diags == []

    def test_doctored_ring_header_is_drift(self, tmp_path):
        # dropping the close flags changes every peer's byte offsets
        doctored = SHM_MODULE.replace('"<IIQQQII"', '"<IIQQQ"')
        diags = run_lint(tmp_path, {"repro/transport/shm.py": doctored},
                         wire_doc=WIRE_DOC)
        assert codes(diags) == ["RPL401"]
        assert "_RING_HEADER" in diags[0].message

    def test_missing_ring_magic_reported(self, tmp_path):
        doctored = SHM_MODULE.replace("    RING_MAGIC = 0x52494E47\n", "")
        diags = run_lint(tmp_path, {"repro/transport/shm.py": doctored},
                         wire_doc=WIRE_DOC)
        assert codes(diags) == ["RPL402"]
        assert "RING_MAGIC" in diags[0].message


# --------------------------------------------------------------------------------------
# RPL5 — protocol contracts
# --------------------------------------------------------------------------------------

CONTRACT_MODULE = """\
    from repro.protocol.wire import PublicParams, ServerAggregator, register_protocol

    @register_protocol
    class GoodParams(PublicParams):
        def make_encoder(self):
            return None

        def make_aggregator(self):
            return GoodAggregator(self)

        def _payload_dict(self):
            return {}

        @classmethod
        def _from_payload(cls, payload):
            return cls()

    class GoodAggregator(ServerAggregator):
        def _absorb_columns(self, batch):
            self.n += len(batch)

        def _merge_impl(self, other):
            return self

        def _state_dict(self):
            return {}

        def _load_state(self, state):
            self.n = state.get("n", 0)

        def finalize(self):
            return self.n
"""


class TestContractRules:
    def test_complete_protocol_is_clean(self, tmp_path):
        diags = run_lint(tmp_path,
                         {"repro/protocol/impl.py": CONTRACT_MODULE})
        assert diags == []

    def test_missing_params_hook_is_rpl503(self, tmp_path):
        doctored = CONTRACT_MODULE.replace(
            "        def make_encoder(self):\n            return None\n\n",
            "")
        diags = run_lint(tmp_path, {"repro/protocol/impl.py": doctored})
        assert codes(diags) == ["RPL503"]
        assert "make_encoder" in diags[0].message

    def test_missing_finalize_is_rpl501(self, tmp_path):
        doctored = CONTRACT_MODULE.replace(
            "        def finalize(self):\n            return self.n\n", "")
        diags = run_lint(tmp_path, {"repro/protocol/impl.py": doctored})
        assert codes(diags) == ["RPL501"]
        assert "finalize" in diags[0].message

    def test_missing_delegate_hook_is_rpl501(self, tmp_path):
        doctored = CONTRACT_MODULE.replace(
            "        def _merge_impl(self, other):\n            return self\n\n",
            "")
        diags = run_lint(tmp_path, {"repro/protocol/impl.py": doctored})
        assert codes(diags) == ["RPL501"]
        assert "_merge_impl" in diags[0].message

    def test_overriding_public_method_excuses_hook(self, tmp_path):
        doctored = CONTRACT_MODULE.replace(
            "        def _merge_impl(self, other):\n            return self\n\n",
            "        def merge(self, other):\n            return self\n\n")
        diags = run_lint(tmp_path, {"repro/protocol/impl.py": doctored})
        assert diags == []

    def test_signature_arity_mismatch_is_rpl502(self, tmp_path):
        doctored = CONTRACT_MODULE.replace(
            "def _merge_impl(self, other):",
            "def merge(self, other, strict):")
        diags = run_lint(tmp_path, {"repro/protocol/impl.py": doctored})
        assert codes(diags) == ["RPL502"]
        assert "merge" in diags[0].message

    def test_extra_defaulted_parameters_are_compatible(self, tmp_path):
        doctored = CONTRACT_MODULE.replace(
            "def finalize(self):", "def finalize(self, debias=True):")
        diags = run_lint(tmp_path, {"repro/protocol/impl.py": doctored})
        assert diags == []

    def test_unregistered_classes_are_not_checked(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/protocol/loose.py": """\
            from repro.protocol.wire import ServerAggregator

            class HalfDone(ServerAggregator):
                pass
        """})
        assert diags == []


# --------------------------------------------------------------------------------------
# pragmas, selection, CLI
# --------------------------------------------------------------------------------------

class TestSuppressionAndCli:
    def test_pragma_with_reason_suppresses(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/protocol/noisy.py": """\
            import numpy as np

            def jitter(n):
                # fixture: justified global draw
                return np.random.rand(n)  # repro-lint: ignore[RPL102] test fixture only
        """})
        assert diags == []

    def test_family_pragma_on_preceding_line(self, tmp_path):
        diags = run_lint(tmp_path, {"repro/protocol/noisy.py": """\
            import numpy as np

            def jitter(n):
                # repro-lint: ignore[RPL1] fixture exercises the rng path
                return np.random.rand(n)
        """})
        assert diags == []

    def test_pragma_without_reason_is_rpl001(self, tmp_path):
        # assembled at runtime so this test file's own source does not
        # contain a reasonless pragma (the suite lints tests/ too)
        bare_pragma = "# repro-lint: " + "ignore[RPL102]"
        diags = run_lint(tmp_path, {"repro/protocol/noisy.py": f"""\
            import numpy as np

            def jitter(n):
                return np.random.rand(n)  {bare_pragma}
        """})
        assert codes(diags) == ["RPL001"]

    def test_select_and_ignore_filtering(self, tmp_path):
        files = {"repro/protocol/mixed.py": """\
            import time

            import numpy as np

            def both(n):
                stamp = time.time()
                return np.random.rand(n), stamp
        """}
        assert codes(run_lint(tmp_path, dict(files))) == ["RPL103", "RPL102"]
        assert codes(run_lint(tmp_path, dict(files),
                              select=["RPL103"])) == ["RPL103"]
        assert codes(run_lint(tmp_path, dict(files),
                              ignore=["RPL103"])) == ["RPL102"]

    def test_parse_error_is_rpl002(self, tmp_path):
        diags = run_lint(tmp_path,
                         {"repro/protocol/broken.py": "def oops(:\n"})
        assert codes(diags) == ["RPL002"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "repro" / "protocol" / "ok.py"
        clean.parent.mkdir(parents=True)
        clean.write_text("VALUE = 1\n")
        assert main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().err

        dirty = tmp_path / "repro" / "protocol" / "bad.py"
        dirty.write_text("import numpy as np\n\n"
                         "def f(n):\n    return np.random.rand(n)\n")
        assert main([str(dirty), "--statistics", "--fix-hints"]) == 1
        captured = capsys.readouterr()
        assert "RPL102" in captured.out
        assert "fix-hint:" in captured.out

        assert main([str(tmp_path / "missing")]) == 2

    def test_bad_visit_method_name_raises(self):
        from repro.tools.lint.engine import LintConfig, LintEngine, Rule

        class Broken(Rule):
            def visit_NotANode(self, node, ctx):  # pragma: no cover
                pass

        with pytest.raises(ValueError, match="NotANode"):
            LintEngine([Broken()], LintConfig())


# --------------------------------------------------------------------------------------
# self-test: the repo's own tree must be clean (this is the CI gate)
# --------------------------------------------------------------------------------------

class TestSelfClean:
    def test_repo_source_lints_clean(self):
        diags = lint_paths([REPO / "src"])
        assert diags == [], "\n".join(d.format() for d in diags)

    def test_repo_tests_lint_clean(self):
        diags = lint_paths([REPO / "tests"])
        assert diags == [], "\n".join(d.format() for d in diags)
