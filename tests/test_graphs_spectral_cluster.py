"""Tests for repro.graphs.spectral_cluster: cluster recovery in layered graphs."""

import networkx as nx
import pytest

from repro.graphs.expanders import random_regular_expander
from repro.graphs.spectral_cluster import (
    SpectralClusterer,
    adjacency_from_edges,
    volume,
)


def expander_copy_edges(expander, label):
    """Edges of a copy of the expander with vertices tagged by ``label``."""
    edges = []
    for u in range(expander.num_vertices):
        for v in expander.neighbors(u):
            if u < v:
                edges.append(((label, u), (label, v)))
    return edges


class TestAdjacencyHelpers:
    def test_adjacency_from_edges(self):
        adjacency = adjacency_from_edges([(1, 2), (2, 3), (3, 3)])
        assert adjacency[2] == {1, 3}
        assert 3 in adjacency and adjacency[3] == {2}

    def test_volume(self):
        adjacency = adjacency_from_edges([(1, 2), (2, 3)])
        assert volume([2], adjacency) == 2
        assert volume([1, 3], adjacency) == 2


class TestConnectedComponentClustering:
    def test_two_disjoint_clusters_found(self):
        expander = random_regular_expander(12, 4, rng=0)
        edges = expander_copy_edges(expander, "a") + expander_copy_edges(expander, "b")
        adjacency = adjacency_from_edges(edges)
        clusterer = SpectralClusterer(expected_cluster_size=12)
        clusters = clusterer.find_clusters(adjacency)
        assert len(clusters) == 2
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [12, 12]
        labels = [{v[0] for v in cluster} for cluster in clusters]
        assert all(len(label_set) == 1 for label_set in labels)

    def test_tiny_components_discarded(self):
        adjacency = adjacency_from_edges([(("noise", 0), ("noise", 1))])
        clusterer = SpectralClusterer(expected_cluster_size=8, min_cluster_size=4)
        assert clusterer.find_clusters(adjacency) == []

    def test_isolated_vertices_ignored(self):
        adjacency = {("x", 0): set()}
        clusterer = SpectralClusterer(expected_cluster_size=4, min_cluster_size=2)
        assert clusterer.find_clusters(adjacency) == []


class TestSpectralSplitting:
    def test_two_clusters_joined_by_one_edge_are_split(self):
        expander = random_regular_expander(12, 4, rng=1)
        edges = expander_copy_edges(expander, "a") + expander_copy_edges(expander, "b")
        # A single spurious bridge merges the two copies into one component.
        edges.append((("a", 0), ("b", 0)))
        adjacency = adjacency_from_edges(edges)
        clusterer = SpectralClusterer(expected_cluster_size=12)
        clusters = clusterer.find_clusters(adjacency)
        assert len(clusters) == 2
        for cluster in clusters:
            labels = {v[0] for v in cluster}
            assert len(labels) == 1
            assert len(cluster) == 12

    def test_single_expander_not_split(self):
        """A genuine expander has high conductance and must stay whole."""
        expander = random_regular_expander(16, 6, rng=2)
        adjacency = adjacency_from_edges(expander_copy_edges(expander, "a"))
        clusterer = SpectralClusterer(expected_cluster_size=8)  # undersized on purpose
        clusters = clusterer.find_clusters(adjacency)
        assert len(clusters) == 1
        assert len(clusters[0]) == 16

    def test_path_graph_is_split(self):
        """A long path (low conductance everywhere) is allowed to be split."""
        path = nx.path_graph(40)
        adjacency = {u: set(path.neighbors(u)) for u in path.nodes}
        clusterer = SpectralClusterer(expected_cluster_size=10, min_cluster_size=3)
        clusters = clusterer.find_clusters(adjacency)
        assert len(clusters) >= 2
        recovered = sorted(v for cluster in clusters for v in cluster)
        assert len(recovered) == len(set(recovered))


class TestValidation:
    def test_rejects_bad_cluster_size(self):
        with pytest.raises(ValueError):
            SpectralClusterer(expected_cluster_size=0)
