"""Tests for the unique-list-recoverable code (Theorem 3.6 / Appendix B)."""

import numpy as np
import pytest

from repro.codes.list_recoverable import (
    ListRecoveryParameters,
    UniqueListRecoverableCode,
)


def make_code(domain_size=1 << 16, num_coordinates=8, hash_range=32, list_size=8,
              alpha=0.25, expander_degree=3, rng=0):
    return UniqueListRecoverableCode.create(
        domain_size=domain_size,
        num_coordinates=num_coordinates,
        hash_range=hash_range,
        list_size=list_size,
        alpha=alpha,
        expander_degree=expander_degree,
        rng=rng,
    )


def lists_from_elements(code, elements, num_coordinates=None):
    """Build the decoder's input lists containing exactly the given elements."""
    M = num_coordinates or code.num_coordinates
    lists = [[] for _ in range(M)]
    for x in elements:
        for m, symbol in enumerate(code.encode(x)):
            if all(existing_y != symbol.y for existing_y, _ in lists[m]):
                lists[m].append((symbol.y, symbol.z))
    return lists


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            ListRecoveryParameters(domain_size=0, num_coordinates=4, hash_range=8,
                                   list_size=4, alpha=0.2, expander_degree=2,
                                   max_output_size=8)
        with pytest.raises(ValueError):
            ListRecoveryParameters(domain_size=10, num_coordinates=4, hash_range=8,
                                   list_size=4, alpha=1.0, expander_degree=2,
                                   max_output_size=8)

    def test_hash_count_must_match(self):
        params = ListRecoveryParameters(domain_size=100, num_coordinates=4,
                                        hash_range=8, list_size=4, alpha=0.2,
                                        expander_degree=2, max_output_size=8)
        with pytest.raises(ValueError):
            UniqueListRecoverableCode(params, hashes=[lambda x: 0], rng=0)


class TestEncoding:
    def test_encoding_shapes(self):
        code = make_code()
        encoding = code.encode(12345)
        assert len(encoding) == code.num_coordinates
        for symbol in encoding:
            assert 0 <= symbol.y < code.params.hash_range
            assert 0 <= symbol.z < code.z_alphabet_size

    def test_encode_tilde_consistent_with_encode(self):
        code = make_code()
        x = 54321
        tilde = code.encode_tilde(x)
        full = code.encode(x)
        assert [symbol.z for symbol in full] == tilde
        assert [symbol.y for symbol in full] == [int(code.hashes[m](x))
                                                 for m in range(code.num_coordinates)]

    def test_pack_unpack_round_trip(self):
        code = make_code()
        chunk, neighbors = 7, (3, 11, 30)
        packed = code._pack_z(chunk, neighbors)
        assert code._unpack_z(packed) == (chunk, neighbors)

    def test_z_contains_chunks_and_neighbor_hashes(self):
        code = make_code()
        x = 999
        chunks = code.encode_chunks(x)
        for m, z in enumerate(code.encode_tilde(x)):
            chunk, neighbor_hashes = code._unpack_z(z)
            assert chunk == chunks[m]
            expected = tuple(int(code.hashes[j](x))
                             for j in code.expander.neighbors(m))
            assert neighbor_hashes == expected

    def test_rejects_out_of_domain(self):
        code = make_code()
        with pytest.raises(ValueError):
            code.encode(1 << 16)
        with pytest.raises(ValueError):
            code.encode(-1)


class TestDecoding:
    def test_recovers_single_element_from_clean_lists(self):
        code = make_code()
        lists = lists_from_elements(code, [40_000])
        assert 40_000 in code.decode(lists)

    def test_recovers_multiple_elements(self):
        code = make_code(hash_range=64, list_size=16)
        elements = [11, 22_222, 44_444, 65_000]
        lists = lists_from_elements(code, elements)
        decoded = code.decode(lists)
        for x in elements:
            assert x in decoded

    def test_recovers_despite_corrupted_coordinates(self):
        code = make_code(num_coordinates=10, alpha=0.25)
        x = 31_337
        lists = lists_from_elements(code, [x])
        # Corrupt one coordinate (10%) by removing the element's entry entirely.
        lists[0] = []
        # Corrupt a second coordinate by replacing z with garbage at the same y.
        y1, z1 = lists[1][0]
        lists[1][0] = (y1, (z1 + 1) % code.z_alphabet_size)
        decoded = code.decode(lists)
        assert x in decoded

    def test_does_not_return_elements_with_too_little_agreement(self):
        code = make_code(num_coordinates=8, alpha=0.25)
        x = 12_321
        lists = lists_from_elements(code, [x])
        # Keep only 3 of 8 coordinates: below the (1 - alpha) threshold.
        for m in range(3, 8):
            lists[m] = []
        assert x not in code.decode(lists)

    def test_empty_lists_decode_to_nothing(self):
        code = make_code()
        lists = [[] for _ in range(code.num_coordinates)]
        assert code.decode(lists) == []

    def test_noise_entries_do_not_block_recovery(self):
        code = make_code(hash_range=64, list_size=12, rng=3)
        x = 23_456
        lists = lists_from_elements(code, [x])
        rng = np.random.default_rng(0)
        for m in range(code.num_coordinates):
            used = {y for y, _ in lists[m]}
            while len(lists[m]) < 6:
                y = int(rng.integers(0, 64))
                if y in used:
                    continue
                used.add(y)
                lists[m].append((y, int(rng.integers(0, code.z_alphabet_size))))
        assert x in code.decode(lists)

    def test_duplicate_y_entries_are_ignored(self):
        code = make_code()
        x = 777
        lists = lists_from_elements(code, [x])
        # Append a conflicting duplicate y in every list; the first entry wins.
        for m in range(code.num_coordinates):
            y, z = lists[m][0]
            lists[m].append((y, (z + 5) % code.z_alphabet_size))
        assert x in code.decode(lists)

    def test_output_size_capped(self):
        code = make_code(hash_range=128, list_size=4)
        assert code.params.max_output_size == 16

    def test_wrong_number_of_lists_rejected(self):
        code = make_code()
        with pytest.raises(ValueError):
            code.decode([[]])
