"""Tests for the Hadamard-response randomizer."""

import math

import numpy as np
import pytest

from repro.randomizers.hadamard import (
    HadamardResponse,
    hadamard_entry,
    hadamard_matrix,
)


class TestHadamardMatrix:
    def test_sylvester_build_matches_entry_definition(self):
        # Regression for the vectorized build: the Sylvester recursion must
        # reproduce (-1)^{popcount(r & c)} entry for entry.
        for order in (1, 2, 4, 8, 32, 128):
            matrix = hadamard_matrix(order)
            reference = np.array([[hadamard_entry(r, c) for c in range(order)]
                                  for r in range(order)])
            assert np.array_equal(matrix, reference)

    def test_rejects_non_power_of_two(self):
        for order in (0, 3, 12, -4):
            with pytest.raises(ValueError, match="power of two"):
                hadamard_matrix(order)


class TestHadamardEntry:
    def test_first_row_and_column_are_ones(self):
        for i in range(16):
            assert hadamard_entry(0, i) == 1
            assert hadamard_entry(i, 0) == 1

    def test_symmetry(self):
        for r in range(8):
            for c in range(8):
                assert hadamard_entry(r, c) == hadamard_entry(c, r)

    def test_orthogonality(self):
        size = 16
        matrix = np.array([[hadamard_entry(r, c) for c in range(size)]
                           for r in range(size)])
        product = matrix @ matrix.T
        assert np.array_equal(product, size * np.eye(size, dtype=int))


class TestHadamardResponse:
    def test_padding_to_power_of_two(self):
        randomizer = HadamardResponse(1.0, 10)
        assert randomizer.padded_size == 16
        assert HadamardResponse(1.0, 31).padded_size == 32

    def test_report_structure(self, rng):
        randomizer = HadamardResponse(1.0, 10)
        row, bit = randomizer.randomize(3, rng)
        assert 0 <= row < 16
        assert bit in (-1, 1)

    def test_probabilities_sum_to_one(self):
        randomizer = HadamardResponse(1.0, 6)
        total = sum(randomizer.prob(2, report) for report in randomizer.report_space())
        assert total == pytest.approx(1.0)

    def test_exact_privacy(self):
        randomizer = HadamardResponse(1.3, 6)
        assert randomizer.verify_pure_dp(range(6)) == pytest.approx(1.3, rel=1e-9)

    def test_report_bits_constant_in_domain(self):
        small = HadamardResponse(1.0, 10)
        large = HadamardResponse(1.0, 1000)
        assert small.report_bits == math.log2(16) + 1
        assert large.report_bits == math.log2(1024) + 1

    def test_unbiased_frequency(self, rng):
        randomizer = HadamardResponse(2.0, 20)
        values = np.concatenate([np.full(3_000, 7), rng.integers(0, 20, 5_000)])
        reports = [randomizer.randomize(int(v), rng) for v in values]
        estimate = randomizer.unbiased_frequency(reports, 7)
        true = float(np.count_nonzero(values == 7))
        tolerance = 5 * math.sqrt(values.size * randomizer.estimator_variance_per_user)
        assert abs(estimate - true) < tolerance

    def test_unbiased_histogram_matches_per_value(self, rng):
        randomizer = HadamardResponse(1.5, 8)
        values = rng.integers(0, 8, size=2_000)
        reports = [randomizer.randomize(int(v), rng) for v in values]
        histogram = randomizer.unbiased_histogram(reports)
        assert histogram.shape == (8,)
        # the matmul path accumulates exact ±1 integer sums, so it matches
        # the per-value estimator bit for bit, not just approximately
        for v in range(8):
            assert histogram[v] == randomizer.unbiased_frequency(reports, v)

    def test_unbiased_histogram_empty_reports(self):
        randomizer = HadamardResponse(1.5, 8)
        assert np.array_equal(randomizer.unbiased_histogram([]),
                              np.zeros(8))

    def test_attenuation_formula(self):
        randomizer = HadamardResponse(1.0, 4)
        assert randomizer.attenuation == pytest.approx(
            (math.e - 1.0) / (math.e + 1.0))

    def test_rejects_invalid_reports(self):
        randomizer = HadamardResponse(1.0, 4)
        with pytest.raises(ValueError):
            randomizer.log_prob(0, (100, 1))
        with pytest.raises(ValueError):
            randomizer.log_prob(0, (0, 0))

    def test_large_domain_has_no_enumerable_space(self):
        assert HadamardResponse(1.0, 1000).report_space() is None
