"""Tests for the basic RAPPOR randomizer."""

import math

import numpy as np
import pytest

from repro.randomizers.rappor import BasicRappor


class TestBloomEncoding:
    def test_bloom_bits_deterministic_and_bounded(self):
        randomizer = BasicRappor(1.0, 1 << 16, num_bits=64, num_hashes=2, rng=0)
        bits = randomizer.bloom_bits(12345)
        assert bits.shape == (64,)
        assert bits.sum() <= 2
        assert np.array_equal(bits, randomizer.bloom_bits(12345))

    def test_different_values_usually_differ(self):
        randomizer = BasicRappor(1.0, 1 << 16, num_bits=128, num_hashes=2, rng=0)
        assert not np.array_equal(randomizer.bloom_bits(1), randomizer.bloom_bits(2))


class TestPrivacy:
    def test_flip_probability_from_epsilon(self):
        epsilon, hashes = 2.0, 2
        randomizer = BasicRappor(epsilon, 1000, num_bits=32, num_hashes=hashes, rng=0)
        f = randomizer.flip_probability
        implied_epsilon = 2 * hashes * math.log((1 - f / 2) / (f / 2))
        assert implied_epsilon == pytest.approx(epsilon)

    def test_exact_privacy_small_instance(self):
        randomizer = BasicRappor(1.5, 16, num_bits=8, num_hashes=1, rng=1)
        worst = randomizer.verify_pure_dp(range(8))
        assert worst <= 1.5 + 1e-9

    def test_log_prob_normalises(self):
        randomizer = BasicRappor(1.0, 8, num_bits=6, num_hashes=1, rng=2)
        total = sum(randomizer.prob(3, report) for report in randomizer.report_space())
        assert total == pytest.approx(1.0)


class TestReports:
    def test_report_shape(self, rng):
        randomizer = BasicRappor(1.0, 1 << 12, num_bits=64, rng=0)
        report = randomizer.randomize(100, rng)
        assert report.shape == (64,)
        assert set(np.unique(report)).issubset({0, 1})

    def test_report_bits(self):
        randomizer = BasicRappor(1.0, 100, num_bits=256, rng=0)
        assert randomizer.report_bits == 256.0

    def test_log_prob_validates_shape(self):
        randomizer = BasicRappor(1.0, 100, num_bits=16, rng=0)
        with pytest.raises(ValueError):
            randomizer.log_prob(0, np.zeros(8))


class TestCandidateDecoding:
    def test_recovers_dominant_candidate(self, rng):
        domain = 1 << 12
        randomizer = BasicRappor(3.0, domain, num_bits=128, num_hashes=2, rng=5)
        heavy = 999
        values = np.concatenate([
            np.full(3_000, heavy),
            rng.integers(0, domain, size=2_000),
        ])
        reports = np.stack([randomizer.randomize(int(v), rng) for v in values])
        candidates = [heavy, 5, 77, 1234, 4000]
        estimates = randomizer.estimate_candidate_frequencies(reports, candidates)
        by_candidate = dict(zip(candidates, estimates, strict=True))
        assert by_candidate[heavy] == max(estimates)
        assert by_candidate[heavy] > 1_500

    def test_empty_candidates(self):
        randomizer = BasicRappor(1.0, 100, num_bits=16, rng=0)
        estimates = randomizer.estimate_candidate_frequencies(
            np.zeros((10, 16)), [])
        assert estimates.size == 0

    def test_rejects_bad_report_matrix(self):
        randomizer = BasicRappor(1.0, 100, num_bits=16, rng=0)
        with pytest.raises(ValueError):
            randomizer.estimate_candidate_frequencies(np.zeros((10, 8)), [1])
