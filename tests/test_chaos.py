"""Tests for the deterministic fault-injection harness (:mod:`repro.chaos`).

Three layers: the seeded :class:`~repro.chaos.schedule.FaultSchedule`
(same seed → byte-identical schedule and digest, every generated schedule
covers all seven fault kinds), the frame-aware
:class:`~repro.chaos.transport.FaultyTransport` proxy (clean passthrough,
pop-once fault firing, monotone frame counter across reconnects), and —
marked ``chaos`` — a full :class:`~repro.chaos.runner.ChaosRunner` run
asserting the faulted cluster still answers **bit-identically** to the
offline engine.
"""

import asyncio
import contextlib
import itertools
import json
import os

import numpy as np
import pytest

from repro.chaos import (
    CLIENT_WIRE_KINDS,
    FAULT_KINDS,
    MEMBERSHIP_KINDS,
    PROCESS_KINDS,
    WIRE_KINDS,
    ChaosRunner,
    FaultEvent,
    FaultSchedule,
    FaultyTransport,
)
from repro.protocol import HashtogramParams
from repro.server import (
    AggregationServer,
    AsyncAggregationClient,
    FrameError,
    ServerError,
)
from test_server import running_server


def _params():
    return HashtogramParams.create(1 << 10, 1.0, num_buckets=16, rng=0)


def _batch(params, seed=3, n=800):
    gen = np.random.default_rng(seed)
    values = gen.integers(0, params.domain_size, size=n)
    return params.make_encoder().encode_batch(values, gen)


# --------------------------------------------------------------------------------------
# the seeded schedule
# --------------------------------------------------------------------------------------

class TestFaultSchedule:
    def test_same_seed_same_schedule_and_digest(self):
        a = FaultSchedule.generate(7, num_frames=24, num_shards=3)
        b = FaultSchedule.generate(7, num_frames=24, num_shards=3)
        assert a.events == b.events
        assert a.digest() == b.digest()
        assert a.seed == 7

    def test_different_seeds_differ(self):
        a = FaultSchedule.generate(7, num_frames=24, num_shards=3)
        b = FaultSchedule.generate(8, num_frames=24, num_shards=3)
        assert a.digest() != b.digest()

    def test_generated_schedule_covers_every_kind(self):
        for seed in range(5):
            schedule = FaultSchedule.generate(seed, num_frames=20,
                                              num_shards=2)
            assert set(schedule.kinds) == set(FAULT_KINDS), seed

    def test_round_trip_preserves_digest(self, tmp_path):
        schedule = FaultSchedule.generate(11, num_frames=16, num_shards=2)
        clone = FaultSchedule.from_dict(schedule.to_dict())
        assert clone.events == schedule.events
        assert clone.seed == schedule.seed
        path = schedule.save(tmp_path / "sched.json")
        loaded = FaultSchedule.load(path)
        assert loaded.events == schedule.events
        assert loaded.digest() == schedule.digest()
        # the saved artifact embeds the digest it will replay under
        assert json.loads(path.read_text())["digest"] == schedule.digest()

    def test_fault_maps_partition_by_family(self):
        schedule = FaultSchedule.generate(13, num_frames=20, num_shards=2)
        wire = {e for target in ("client", "shard-0", "shard-1")
                for e in schedule.wire_faults(target).values()}
        process = {e for events in schedule.process_faults().values()
                   for e in events}
        assert all(e.kind in WIRE_KINDS for e in wire)
        assert all(e.kind in PROCESS_KINDS for e in process)
        assert wire | process == set(schedule.events)
        assert not (wire & process)
        # the client leg never sees a corrupt fault (undetectable loss)
        assert all(e.kind in CLIENT_WIRE_KINDS
                   for e in schedule.wire_faults("client").values())

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("client", 1, "explode")
        with pytest.raises(ValueError, match="frame must be"):
            FaultEvent("client", -1, "delay")
        for kind in ("kill", "sigstop", "corrupt"):
            with pytest.raises(ValueError, match="must target a shard"):
                FaultEvent("client", 1, kind)
        assert FaultEvent("shard-2", 1, "kill").shard == 2
        assert FaultEvent("client", 1, "stall").shard is None

    def test_generate_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError, match="num_frames"):
            FaultSchedule.generate(0, num_frames=1, num_shards=2)
        with pytest.raises(ValueError, match="num_shards"):
            FaultSchedule.generate(0, num_frames=10, num_shards=0)


# --------------------------------------------------------------------------------------
# the membership-mode schedule (chaos-test --membership)
# --------------------------------------------------------------------------------------

class TestMembershipSchedule:
    def _generate(self, seed=7, **overrides):
        kwargs = dict(num_frames=24, num_shards=2, add_frame=6,
                      drain_frame=12, drain_shard=0)
        kwargs.update(overrides)
        return FaultSchedule.generate_membership(seed, **kwargs)

    def test_same_seed_same_schedule_and_digest(self):
        a, b = self._generate(), self._generate()
        assert a.events == b.events
        assert a.digest() == b.digest()
        assert self._generate(seed=8).digest() != a.digest()

    def test_covers_every_membership_kind_plus_one_kill(self):
        for seed in range(5):
            schedule = self._generate(seed=seed)
            assert set(schedule.kinds) == set(MEMBERSHIP_KINDS) | {"kill"}, \
                seed

    def test_placement_respects_the_transition_choreography(self):
        for seed in range(8):
            schedule = self._generate(seed=seed)
            by_kind = {event.kind: event for event in schedule.events}
            # corrupt-snapshot fires before the add (original shards only)
            corrupt = by_kind["corrupt-snapshot"]
            assert 1 <= corrupt.frame < 6
            assert corrupt.shard in (0, 1)
            # torn-journal fires strictly between add and drain, at the
            # router (it restarts the whole routing tier)
            tear = by_kind["torn-journal"]
            assert 6 < tear.frame < 12
            assert tear.target == "router"
            # the plain kill targets the freshly added shard, after the add
            kill = by_kind["kill"]
            assert kill.shard == 2
            assert 6 < kill.frame < 12
            # drain-race SIGKILLs the drained shard exactly at the drain
            race = by_kind["drain-race"]
            assert race.frame == 12
            assert race.shard == 0

    def test_membership_faults_partition(self):
        schedule = self._generate()
        membership = {e for events in schedule.membership_faults().values()
                      for e in events}
        process = {e for events in schedule.process_faults().values()
                   for e in events}
        assert all(e.kind in MEMBERSHIP_KINDS for e in membership)
        assert all(e.kind in PROCESS_KINDS for e in process)
        assert membership | process == set(schedule.events)
        assert not (membership & process)

    def test_round_trip_preserves_digest(self, tmp_path):
        schedule = self._generate()
        clone = FaultSchedule.from_dict(schedule.to_dict())
        assert clone.events == schedule.events
        path = schedule.save(tmp_path / "membership-sched.json")
        assert FaultSchedule.load(path).digest() == schedule.digest()

    def test_rejects_degenerate_choreography(self):
        with pytest.raises(ValueError, match="add_frame"):
            self._generate(add_frame=12, drain_frame=6)
        with pytest.raises(ValueError, match="add_frame"):
            self._generate(add_frame=0)
        with pytest.raises(ValueError, match="add_frame"):
            self._generate(drain_frame=30, num_frames=24)
        with pytest.raises(ValueError, match="drain_shard"):
            self._generate(drain_shard=5)

    def test_membership_kinds_do_not_perturb_default_schedules(self):
        # MEMBERSHIP_KINDS must stay out of FAULT_KINDS: the default
        # generator cycles that tuple, so folding them in would silently
        # change every existing seeded schedule and its replay digest
        assert not set(MEMBERSHIP_KINDS) & set(FAULT_KINDS)
        schedule = FaultSchedule.generate(7, num_frames=24, num_shards=3)
        assert all(e.kind in FAULT_KINDS for e in schedule.events)

    def test_membership_event_validation(self):
        with pytest.raises(ValueError, match="must target a shard"):
            FaultEvent("client", 1, "drain-race")
        with pytest.raises(ValueError, match="must target a shard"):
            FaultEvent("router", 1, "corrupt-snapshot")
        with pytest.raises(ValueError, match="target the\n?.*router|router"):
            FaultEvent("shard-0", 1, "torn-journal")
        assert FaultEvent("router", 3, "torn-journal").shard is None


# --------------------------------------------------------------------------------------
# the fault-injecting proxy
# --------------------------------------------------------------------------------------

class TestFaultyTransport:
    def test_rejects_process_kind_faults(self):
        with pytest.raises(ValueError, match="not a wire fault"):
            FaultyTransport("client", ("127.0.0.1", 1),
                            {1: FaultEvent("shard-0", 1, "kill")})

    def test_clean_passthrough_is_invisible(self):
        params = _params()
        batch = _batch(params)
        queries = list(range(32))
        expected = (params.make_aggregator().absorb_batch(batch)
                    .finalize().estimate_many(queries))

        async def main():
            with running_server(params) as (_, host, port):
                proxy = FaultyTransport("client", (host, port))
                phost, pport = await proxy.start()
                client = await AsyncAggregationClient.connect(
                    phost, pport, timeout=10.0)
                try:
                    assert await client.hello() == params
                    await client.send_batch(batch)
                    assert await client.sync() == len(batch)
                    served = await client.query(queries)
                finally:
                    await client.close()
                    await proxy.stop()
                # only the reports frame ticked the counter; control
                # frames (hello/sync/query) pass through uncounted
                assert proxy.frames == 1
                assert proxy.fired == []
                return served

        assert np.array_equal(asyncio.run(main()), expected)

    def test_reset_fires_once_then_counter_keeps_running(self):
        params = _params()
        batch = _batch(params)
        event = FaultEvent("client", 1, "reset")

        async def main():
            with running_server(params) as (_, host, port):
                proxy = FaultyTransport("client", (host, port), {1: event})
                phost, pport = await proxy.start()
                client = await AsyncAggregationClient.connect(
                    phost, pport, timeout=5.0)
                try:
                    with pytest.raises((OSError, TimeoutError, FrameError,
                                        asyncio.IncompleteReadError)):
                        await client.send_batch(batch)  # frame 1 → reset
                        await client.sync()
                finally:
                    await client.close()
                assert proxy.fired == [event]
                # pop-once: a fresh connection through the same proxy is
                # clean, and the frame counter spans connections
                retry = await AsyncAggregationClient.connect(
                    phost, pport, timeout=10.0)
                try:
                    await retry.send_batch(batch)
                    absorbed = await retry.sync()
                finally:
                    await retry.close()
                    await proxy.stop()
                assert absorbed == len(batch)
                assert proxy.frames == 2

        asyncio.run(main())

    def test_delay_fault_forwards_intact(self):
        params = _params()
        batch = _batch(params)
        event = FaultEvent("client", 1, "delay", 0.05)

        async def main():
            with running_server(params) as (_, host, port):
                proxy = FaultyTransport("client", (host, port), {1: event})
                phost, pport = await proxy.start()
                client = await AsyncAggregationClient.connect(
                    phost, pport, timeout=10.0)
                try:
                    await client.send_batch(batch)
                    absorbed = await client.sync()
                finally:
                    await client.close()
                    await proxy.stop()
                assert absorbed == len(batch)  # delayed, not lost
                assert proxy.fired == [event]

        asyncio.run(main())


# --------------------------------------------------------------------------------------
# the same proxy over the shared-memory ring (both legs shm, zero sockets)
# --------------------------------------------------------------------------------------

_SHM_SEQ = itertools.count()


@contextlib.asynccontextmanager
async def _shm_proxied_server(params, faults=None):
    """In-process server on a ring, fronted by a FaultyTransport on a ring.

    Yields ``(proxy, address)`` where ``address`` dials *through* the
    proxy — the exact client↔router leg of a chaos run, minus sockets.
    """
    n = next(_SHM_SEQ)
    upstream = f"chaos-up-{os.getpid()}-{n}"
    front = f"chaos-front-{os.getpid()}-{n}"
    server = AggregationServer(params)
    await server.start(transport="shm", shm_name=upstream)
    proxy = FaultyTransport("client", f"shm://{upstream}", faults)
    await proxy.start(listen=f"shm://{front}")
    try:
        yield proxy, f"shm://{front}"
    finally:
        await proxy.stop()
        await server.stop()


class TestFaultyTransportShm:
    """Wire faults must behave identically when the wire is a ring."""

    def test_clean_passthrough_is_bit_identical(self):
        params = _params()
        batch = _batch(params)
        queries = list(range(32))
        expected = (params.make_aggregator().absorb_batch(batch)
                    .finalize().estimate_many(queries))

        async def main():
            async with _shm_proxied_server(params) as (proxy, address):
                assert proxy.address == address
                with pytest.raises(RuntimeError, match="non-TCP"):
                    proxy.endpoint  # noqa: B018 - the raise is the point
                client = await AsyncAggregationClient.dial(address,
                                                           timeout=10.0)
                try:
                    assert await client.hello() == params
                    await client.send_batch(batch)
                    assert await client.sync() == len(batch)
                    served = await client.query(queries)
                finally:
                    await client.close()
                assert proxy.frames == 1
                assert proxy.fired == []
                return served

        assert np.array_equal(asyncio.run(main()), expected)

    def test_reset_on_ring_pops_once_and_retry_converges(self):
        params = _params()
        batch = _batch(params)
        queries = list(range(32))
        expected = (params.make_aggregator().absorb_batch(batch)
                    .finalize().estimate_many(queries))
        event = FaultEvent("client", 1, "reset")

        async def main():
            async with _shm_proxied_server(params, {1: event}) as (proxy,
                                                                   address):
                client = await AsyncAggregationClient.dial(address,
                                                           timeout=5.0)
                try:
                    with pytest.raises((OSError, TimeoutError, FrameError,
                                        asyncio.IncompleteReadError)):
                        await client.send_batch(batch)  # frame 1 → reset
                        await client.sync()
                finally:
                    await client.close()
                assert proxy.fired == [event]
                retry = await AsyncAggregationClient.dial(address,
                                                          timeout=10.0)
                try:
                    await retry.send_batch(batch)
                    assert await retry.sync() == len(batch)
                    served = await retry.query(queries)
                finally:
                    await retry.close()
                assert proxy.frames == 2  # counter spans ring connections
                return served

        assert np.array_equal(asyncio.run(main()), expected)

    def test_corrupt_on_ring_is_rejected_and_retry_converges(self):
        params = _params()
        batch = _batch(params)
        queries = list(range(32))
        expected = (params.make_aggregator().absorb_batch(batch)
                    .finalize().estimate_many(queries))
        event = FaultEvent("shard-0", 1, "corrupt")

        async def main():
            async with _shm_proxied_server(params, {1: event}) as (proxy,
                                                                   address):
                client = await AsyncAggregationClient.dial(address,
                                                           timeout=5.0)
                try:
                    # the flipped magic must be *detected*: the server
                    # answers with an error frame and drops the connection
                    with pytest.raises((OSError, TimeoutError, FrameError,
                                        ServerError,
                                        asyncio.IncompleteReadError)):
                        await client.send_batch(batch)
                        await client.sync()
                finally:
                    await client.close()
                assert proxy.fired == [event]
                retry = await AsyncAggregationClient.dial(address,
                                                          timeout=10.0)
                try:
                    await retry.send_batch(batch)
                    assert await retry.sync() == len(batch)
                    served = await retry.query(queries)
                    health = await retry.health()
                finally:
                    await retry.close()
                # exactly one copy of the batch landed: corrupt → reject
                assert health["num_reports"] == len(batch)
                return served

        assert np.array_equal(asyncio.run(main()), expected)

    def test_delay_on_ring_forwards_intact(self):
        params = _params()
        batch = _batch(params)
        event = FaultEvent("client", 1, "delay", 0.05)

        async def main():
            async with _shm_proxied_server(params, {1: event}) as (proxy,
                                                                   address):
                client = await AsyncAggregationClient.dial(address,
                                                           timeout=10.0)
                try:
                    await client.send_batch(batch)
                    absorbed = await client.sync()
                finally:
                    await client.close()
                assert absorbed == len(batch)  # delayed, not lost
                assert proxy.fired == [event]

        asyncio.run(main())


# --------------------------------------------------------------------------------------
# the full harness (marked: spawns a real faulted cluster, takes ~30s)
# --------------------------------------------------------------------------------------

@pytest.mark.chaos
@pytest.mark.slow
class TestChaosRunnerIntegration:
    def test_seeded_run_is_bit_identical_under_faults(self, tmp_path):
        runner = ChaosRunner(num_users=4_000, num_shards=2, seed=7,
                             domain_size=1024, base_dir=tmp_path)
        result = runner.run()
        assert result.identical
        assert np.array_equal(result.served, result.expected)
        # the acceptance bar: at least five distinct kinds actually fired
        assert len(result.fired_kinds) >= 5
        assert result.schedule.seed == 7
        assert result.health.get("status") == "ok"
        assert result.num_users == 4_000

    @pytest.mark.parametrize("transport", ["tcp", "shm"])
    def test_membership_run_is_bit_identical(self, tmp_path, transport):
        # grow 2→3, drain back to 2, under all three membership fault
        # kinds plus a kill of the freshly added shard — still bit-exact
        runner = ChaosRunner(num_users=2_000, num_shards=2, seed=7,
                             domain_size=1024, base_dir=tmp_path,
                             membership=True, transport=transport)
        result = runner.run()
        assert result.identical
        assert np.array_equal(result.served, result.expected)
        assert set(result.fired_kinds) == \
            {"kill", "drain-race", "torn-journal", "corrupt-snapshot"}
        detail = result.membership
        assert detail["transport"] == transport
        assert detail["add"]["type"] == "shard_added"
        assert detail["add"]["shard"] == 2
        assert detail["drain"]["type"] == "drained"
        assert detail["drain"]["shard"] == detail["drain_shard"]
        final = detail["final_map"]
        active = sorted(s["id"] for s in final["shards"]
                        if s["status"] == "active")
        assert active == sorted({0, 1, 2} - {detail["drain_shard"]})
        assert final["retired"] == [detail["drain_shard"]]
