"""Tests for unary-encoding randomizers (SUE and OUE)."""

import math

import numpy as np
import pytest

from repro.randomizers.unary import OptimizedUnaryEncoding, UnaryEncoding


class TestUnaryEncoding:
    def test_report_shape_and_type(self, rng):
        randomizer = UnaryEncoding(1.0, 12)
        report = randomizer.randomize(5, rng)
        assert report.shape == (12,)
        assert set(np.unique(report)).issubset({0, 1})

    def test_bit_probabilities(self):
        randomizer = UnaryEncoding(2.0, 4)
        half = math.exp(1.0)
        assert randomizer.p == pytest.approx(half / (half + 1))
        assert randomizer.q == pytest.approx(1 / (half + 1))

    def test_privacy_at_most_epsilon(self):
        randomizer = UnaryEncoding(1.2, 4)
        worst = randomizer.verify_pure_dp(range(4))
        assert worst <= 1.2 + 1e-9

    def test_privacy_is_tight(self):
        """The worst-case ratio should actually achieve epsilon (up to fp error)."""
        randomizer = UnaryEncoding(1.2, 4)
        worst = randomizer.verify_pure_dp(range(4))
        assert worst == pytest.approx(1.2, rel=1e-6)

    def test_log_prob_normalisation(self):
        randomizer = UnaryEncoding(1.0, 3)
        for x in range(3):
            total = sum(randomizer.prob(x, report) for report in randomizer.report_space())
            assert total == pytest.approx(1.0)

    def test_unbiased_histogram(self, rng):
        randomizer = UnaryEncoding(2.0, 6)
        values = rng.integers(0, 6, size=4_000)
        reports = np.stack([randomizer.randomize(int(v), rng) for v in values])
        estimates = randomizer.unbiased_histogram(reports)
        true = np.bincount(values, minlength=6)
        tolerance = 5 * math.sqrt(4_000 * randomizer.estimator_variance_per_user)
        assert np.abs(estimates - true).max() < tolerance

    def test_report_space_none_for_large_domains(self):
        assert UnaryEncoding(1.0, 32).report_space() is None

    def test_rejects_bad_report_shape(self):
        randomizer = UnaryEncoding(1.0, 4)
        with pytest.raises(ValueError):
            randomizer.log_prob(0, np.zeros(5))
        with pytest.raises(ValueError):
            randomizer.unbiased_histogram(np.zeros((3, 5)))


class TestOptimizedUnaryEncoding:
    def test_parameters(self):
        randomizer = OptimizedUnaryEncoding(1.0, 8)
        assert randomizer.p == pytest.approx(0.5)
        assert randomizer.q == pytest.approx(1.0 / (math.e + 1.0))

    def test_privacy_at_most_epsilon(self):
        randomizer = OptimizedUnaryEncoding(0.9, 5)
        assert randomizer.verify_pure_dp(range(5)) <= 0.9 + 1e-9

    def test_variance_lower_than_sue(self):
        """OUE's whole point: lower estimator variance at the same epsilon."""
        epsilon = 1.0
        sue = UnaryEncoding(epsilon, 16)
        oue = OptimizedUnaryEncoding(epsilon, 16)
        assert oue.estimator_variance_per_user < sue.estimator_variance_per_user

    def test_oue_variance_formula(self):
        epsilon = 1.5
        oue = OptimizedUnaryEncoding(epsilon, 16)
        expected = 4.0 * math.exp(epsilon) / (math.exp(epsilon) - 1.0) ** 2
        assert oue.estimator_variance_per_user == pytest.approx(expected)

    def test_unbiased_histogram(self, rng):
        randomizer = OptimizedUnaryEncoding(1.5, 5)
        values = rng.integers(0, 5, size=5_000)
        reports = np.stack([randomizer.randomize(int(v), rng) for v in values])
        estimates = randomizer.unbiased_histogram(reports)
        true = np.bincount(values, minlength=5)
        tolerance = 5 * math.sqrt(5_000 * randomizer.estimator_variance_per_user)
        assert np.abs(estimates - true).max() < tolerance

    def test_report_bits(self):
        assert OptimizedUnaryEncoding(1.0, 20).report_bits == 20.0
