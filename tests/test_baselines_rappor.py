"""Tests for the RAPPOR heavy-hitters baseline."""

import numpy as np
import pytest

from repro.baselines.rappor_hh import RapporHeavyHitters


class TestConfiguration:
    def test_requires_candidates_for_large_domains(self):
        with pytest.raises(ValueError):
            RapporHeavyHitters(domain_size=1 << 20, epsilon=1.0)

    def test_large_domain_with_candidates_is_fine(self):
        protocol = RapporHeavyHitters(domain_size=1 << 20, epsilon=1.0,
                                      candidates=[1, 2, 3])
        assert protocol.candidates == [1, 2, 3]

    def test_small_domain_defaults_to_full_scan(self):
        protocol = RapporHeavyHitters(domain_size=64, epsilon=1.0)
        assert len(protocol.candidates) == 64


class TestExecution:
    @pytest.fixture(scope="class")
    def executed(self):
        rng = np.random.default_rng(1)
        domain = 1 << 14
        values = rng.integers(0, domain, size=8_000)
        values[:3_000] = 4242
        candidates = [4242, 5, 77, 900, 16000]
        protocol = RapporHeavyHitters(domain_size=domain, epsilon=3.0,
                                      candidates=candidates, num_bits=128)
        result = protocol.run(values, rng=2)
        return values, candidates, result

    def test_heavy_candidate_found(self, executed):
        _, _, result = executed
        assert 4242 in result.estimates
        assert abs(result.estimates[4242] - 3_000) < 1_200

    def test_only_candidates_can_appear(self, executed):
        _, candidates, result = executed
        assert set(result.estimates).issubset(set(candidates))

    def test_communication_is_bloom_width(self, executed):
        values, _, result = executed
        assert result.communication_bits_per_user() == pytest.approx(128.0)

    def test_metadata(self, executed):
        _, candidates, result = executed
        assert result.metadata["num_candidates"] == len(candidates)
        assert result.protocol == "rappor"

    def test_custom_threshold_respected(self):
        rng = np.random.default_rng(3)
        domain = 1 << 10
        values = rng.integers(0, domain, size=2_000)
        protocol = RapporHeavyHitters(domain_size=domain, epsilon=2.0,
                                      candidates=[1, 2, 3], threshold=1e9)
        result = protocol.run(values, rng=4)
        assert result.estimates == {}
