"""Tests for repro.codes.gf: prime-field scalar, polynomial, and linear algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.gf import PrimeField


FIELD = PrimeField(101)


class TestScalarArithmetic:
    def test_rejects_composite_modulus(self):
        with pytest.raises(ValueError):
            PrimeField(100)

    def test_add_sub_mul(self):
        assert FIELD.add(60, 50) == 9
        assert FIELD.sub(3, 10) == 94
        assert FIELD.mul(20, 6) == 19

    def test_inverse(self):
        for a in range(1, 101):
            assert FIELD.mul(a, FIELD.inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.inv(0)

    def test_division(self):
        assert FIELD.mul(FIELD.div(7, 3), 3) == 7


class TestPolynomialArithmetic:
    def test_trim(self):
        assert PrimeField.poly_trim([1, 2, 0, 0]) == [1, 2]
        assert PrimeField.poly_trim([0, 0]) == []

    def test_degree(self):
        assert FIELD.poly_degree([]) == -1
        assert FIELD.poly_degree([5]) == 0
        assert FIELD.poly_degree([0, 0, 3]) == 2

    def test_eval_horner(self):
        # p(x) = 3 + 2x + x^2 at x = 4 -> 3 + 8 + 16 = 27
        assert FIELD.poly_eval([3, 2, 1], 4) == 27

    def test_add_sub(self):
        a, b = [1, 2, 3], [4, 5]
        assert FIELD.poly_add(a, b) == [5, 7, 3]
        assert FIELD.poly_sub(FIELD.poly_add(a, b), b) == a

    def test_mul(self):
        # (1 + x)(1 - x) = 1 - x^2
        assert FIELD.poly_mul([1, 1], [1, 100]) == [1, 0, 100]

    def test_divmod_round_trip(self):
        a = [3, 1, 4, 1, 5]
        b = [2, 7, 1]
        q, r = FIELD.poly_divmod(a, b)
        reconstructed = FIELD.poly_add(FIELD.poly_mul(q, b), r)
        assert reconstructed == FIELD.poly_trim(a)

    def test_divmod_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.poly_divmod([1, 2], [])

    def test_exact_division(self):
        product = FIELD.poly_mul([1, 2, 3], [4, 5])
        assert FIELD.poly_divides_exactly(product, [4, 5]) == [1, 2, 3]
        assert FIELD.poly_divides_exactly([1, 0, 1], [1, 1]) is None

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=6),
           st.lists(st.integers(0, 100), min_size=1, max_size=6))
    @settings(max_examples=50)
    def test_mul_degree_property(self, a, b):
        product = FIELD.poly_mul(a, b)
        da, db = FIELD.poly_degree(a), FIELD.poly_degree(b)
        if da < 0 or db < 0:
            assert product == []
        else:
            assert FIELD.poly_degree(product) == da + db


class TestInterpolation:
    def test_recovers_polynomial(self):
        poly = [7, 0, 13, 2]
        xs = [0, 1, 2, 3]
        ys = [FIELD.poly_eval(poly, x) for x in xs]
        assert FIELD.lagrange_interpolate(xs, ys) == poly

    def test_rejects_duplicate_points(self):
        with pytest.raises(ValueError):
            FIELD.lagrange_interpolate([1, 1], [2, 3])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            FIELD.lagrange_interpolate([1, 2], [3])

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=5))
    @settings(max_examples=40)
    def test_interpolation_property(self, coefficients):
        poly = FIELD.poly_trim(coefficients)
        degree = max(len(poly), 1)
        xs = list(range(degree))
        ys = [FIELD.poly_eval(poly, x) for x in xs]
        recovered = FIELD.lagrange_interpolate(xs, ys)
        assert recovered == poly


class TestLinearSystem:
    def test_solves_invertible_system(self):
        matrix = [[2, 1], [1, 3]]
        rhs = [5, 10]
        solution = FIELD.solve_linear_system(matrix, rhs)
        assert solution is not None
        for row, target in zip(matrix, rhs, strict=True):
            acc = sum(c * s for c, s in zip(row, solution, strict=True)) % 101
            assert acc == target % 101

    def test_underdetermined_returns_some_solution(self):
        matrix = [[1, 1, 0]]
        rhs = [7]
        solution = FIELD.solve_linear_system(matrix, rhs)
        assert solution is not None
        assert sum(c * s for c, s in zip([1, 1, 0], solution, strict=True)) % 101 == 7

    def test_inconsistent_returns_none(self):
        matrix = [[1, 1], [2, 2]]
        rhs = [1, 3]
        assert FIELD.solve_linear_system(matrix, rhs) is None

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            FIELD.solve_linear_system([[1, 2]], [1, 2])
