"""Tests for the small-domain frequency oracle (Theorem 3.8 variant)."""

import numpy as np
import pytest

from repro.frequency.explicit import (
    ExplicitHistogramOracle,
    fast_walsh_hadamard_transform,
)
from repro.randomizers.hadamard import hadamard_entry


class TestFastWalshHadamardTransform:
    def test_matches_explicit_matrix(self):
        size = 16
        rng = np.random.default_rng(0)
        vector = rng.normal(size=size)
        matrix = np.array([[hadamard_entry(r, c) for c in range(size)]
                           for r in range(size)], dtype=float)
        assert np.allclose(fast_walsh_hadamard_transform(vector), matrix @ vector)

    def test_involution_up_to_scaling(self):
        vector = np.arange(8, dtype=float)
        twice = fast_walsh_hadamard_transform(fast_walsh_hadamard_transform(vector))
        assert np.allclose(twice, 8 * vector)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fast_walsh_hadamard_transform(np.zeros(6))

    def test_does_not_mutate_input(self):
        vector = np.ones(8)
        fast_walsh_hadamard_transform(vector)
        assert np.array_equal(vector, np.ones(8))


@pytest.mark.parametrize("randomizer", ["hadamard", "oue", "krr"])
class TestExplicitHistogramOracle:
    def test_accuracy_within_theoretical_bound(self, randomizer, rng):
        domain, n = 40, 20_000
        values = rng.integers(0, domain, size=n)
        oracle = ExplicitHistogramOracle(domain, epsilon=1.0, randomizer=randomizer)
        oracle.collect(values, rng)
        true = np.bincount(values, minlength=domain)
        errors = np.abs(oracle.histogram() - true)
        # Union bound over the domain: failure probability beta/domain per cell.
        bound = oracle.expected_error(beta=0.01 / domain)
        assert errors.max() < bound

    def test_estimate_matches_histogram(self, randomizer, rng):
        oracle = ExplicitHistogramOracle(10, 1.0, randomizer=randomizer)
        oracle.collect(rng.integers(0, 10, 1_000), rng)
        histogram = oracle.histogram()
        for x in range(10):
            assert oracle.estimate(x) == pytest.approx(histogram[x])
        assert np.allclose(oracle.estimate_many(range(10)), histogram)

    def test_requires_collection_before_estimation(self, randomizer):
        oracle = ExplicitHistogramOracle(10, 1.0, randomizer=randomizer)
        with pytest.raises(RuntimeError):
            oracle.estimate(0)

    def test_rejects_out_of_domain(self, randomizer, rng):
        oracle = ExplicitHistogramOracle(10, 1.0, randomizer=randomizer)
        with pytest.raises(ValueError):
            oracle.collect(np.array([10]), rng)
        oracle.collect(rng.integers(0, 10, 100), rng)
        with pytest.raises(ValueError):
            oracle.estimate(11)
        with pytest.raises(ValueError):
            oracle.estimate_many([0, 12])


class TestOracleProperties:
    def test_higher_epsilon_reduces_error(self, rng):
        domain, n = 32, 30_000
        values = rng.integers(0, domain, size=n)
        true = np.bincount(values, minlength=domain)
        errors = {}
        for epsilon in (0.25, 4.0):
            oracle = ExplicitHistogramOracle(domain, epsilon)
            oracle.collect(values, np.random.default_rng(7))
            errors[epsilon] = np.abs(oracle.histogram() - true).mean()
        assert errors[4.0] < errors[0.25]

    def test_variance_formula_decreases_with_epsilon(self):
        low = ExplicitHistogramOracle(16, 0.5).estimator_variance_per_user
        high = ExplicitHistogramOracle(16, 2.0).estimator_variance_per_user
        assert high < low

    def test_report_bits(self):
        assert ExplicitHistogramOracle(100, 1.0, "oue").report_bits == 100.0
        assert ExplicitHistogramOracle(100, 1.0, "krr").report_bits == pytest.approx(
            np.log2(100))
        hadamard_bits = ExplicitHistogramOracle(100, 1.0, "hadamard").report_bits
        assert hadamard_bits == pytest.approx(np.log2(128) + 1)

    def test_server_state_size(self):
        assert ExplicitHistogramOracle(100, 1.0, "oue").server_state_size == 100
        assert ExplicitHistogramOracle(100, 1.0, "hadamard").server_state_size == 128

    def test_unknown_randomizer_rejected(self):
        with pytest.raises(ValueError):
            ExplicitHistogramOracle(16, 1.0, randomizer="laplace")

    def test_expected_error_validates_beta(self, rng):
        oracle = ExplicitHistogramOracle(16, 1.0)
        oracle.collect(rng.integers(0, 16, 100), rng)
        with pytest.raises(ValueError):
            oracle.expected_error(0.0)

    def test_unbiasedness_over_repetitions(self):
        """Averaging the estimate of one cell over many independent runs
        converges to the true count (the estimator is unbiased)."""
        domain, n = 8, 2_000
        base = np.random.default_rng(3)
        values = base.integers(0, domain, size=n)
        true = np.bincount(values, minlength=domain)[3]
        estimates = []
        for seed in range(40):
            oracle = ExplicitHistogramOracle(domain, 1.0, randomizer="oue")
            oracle.collect(values, np.random.default_rng(seed))
            estimates.append(oracle.estimate(3))
        mean = float(np.mean(estimates))
        spread = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean - true) < 4 * spread + 1e-9
