"""Tests for repro.codes.reed_solomon: encoding, error correction, batch encoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.reed_solomon import DecodingFailure, ReedSolomonCode


CODE = ReedSolomonCode.for_domain(domain_size=1 << 20, num_chunks=10, rate=0.5)


class TestConstruction:
    def test_for_domain_dimensions(self):
        assert CODE.codeword_length == 10
        assert CODE.message_length == 5
        assert CODE.max_domain_size >= 1 << 20
        assert CODE.prime > CODE.codeword_length

    def test_rate_and_correction_budget(self):
        assert CODE.rate == pytest.approx(0.5)
        assert CODE.max_correctable_errors == 2

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(message_length=5, codeword_length=3, prime=101)
        with pytest.raises(ValueError):
            ReedSolomonCode(message_length=2, codeword_length=200, prime=101)
        with pytest.raises(ValueError):
            ReedSolomonCode.for_domain(100, 10, rate=0.0)


class TestEncodeDecode:
    def test_round_trip_no_errors(self):
        for value in [0, 1, 12345, (1 << 20) - 1]:
            codeword = CODE.encode_int(value)
            assert len(codeword) == CODE.codeword_length
            assert CODE.decode_int(codeword) == value

    def test_corrects_errors_within_budget(self):
        value = 987654
        codeword = CODE.encode_int(value)
        corrupted = list(codeword)
        corrupted[1] = (corrupted[1] + 5) % CODE.prime
        corrupted[7] = (corrupted[7] + 9) % CODE.prime
        assert CODE.decode_int(corrupted) == value

    def test_corrects_erasures(self):
        value = 271828
        codeword = CODE.encode_int(value)
        erased = list(codeword)
        erased[0] = None
        erased[3] = None
        erased[9] = None
        assert CODE.decode_int(erased) == value

    def test_corrects_mixed_error_and_erasure(self):
        value = 31415
        codeword = CODE.encode_int(value)
        received = list(codeword)
        received[2] = None
        received[5] = (received[5] + 1) % CODE.prime
        assert CODE.decode_int(received) == value

    def test_too_many_erasures_fails(self):
        value = 555
        codeword = CODE.encode_int(value)
        received = [None] * 6 + list(codeword[6:])
        with pytest.raises(DecodingFailure):
            CODE.decode(received)

    def test_message_length_validated(self):
        with pytest.raises(ValueError):
            CODE.encode([1, 2, 3])
        with pytest.raises(ValueError):
            CODE.decode([0] * 3)

    def test_distinct_values_have_distant_codewords(self):
        """Minimum distance of RS is M - k + 1 = 6 for this code."""
        a = CODE.encode_int(111)
        b = CODE.encode_int(222)
        distance = sum(1 for x, y in zip(a, b, strict=True) if x != y)
        assert distance >= CODE.codeword_length - CODE.message_length + 1

    @given(st.integers(min_value=0, max_value=(1 << 20) - 1),
           st.sets(st.integers(min_value=0, max_value=9), max_size=2),
           st.integers(min_value=1, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_error_correction_property(self, value, error_positions, shift):
        codeword = CODE.encode_int(value)
        corrupted = list(codeword)
        for position in error_positions:
            corrupted[position] = (corrupted[position] + shift) % CODE.prime
        assert CODE.decode_int(corrupted) == value


class TestBatchEncoding:
    def test_matches_scalar_encoding(self):
        values = np.array([0, 1, 500_000, (1 << 20) - 1])
        batch = CODE.encode_batch(values)
        assert batch.shape == (4, CODE.codeword_length)
        for row, value in zip(batch, values, strict=True):
            assert row.tolist() == CODE.encode_int(int(value))

    def test_rejects_out_of_domain(self):
        with pytest.raises(ValueError):
            CODE.encode_batch(np.array([CODE.max_domain_size]))

    def test_empty_batch(self):
        batch = CODE.encode_batch(np.array([], dtype=np.int64))
        assert batch.shape == (0, CODE.codeword_length)


class TestSmallCode:
    def test_rate_one_code_has_zero_budget(self):
        code = ReedSolomonCode.for_domain(16, 4, rate=1.0)
        assert code.max_correctable_errors == 0
        value = 13
        assert code.decode_int(code.encode_int(value)) == value
