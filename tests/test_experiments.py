"""Tests for the experiment drivers (small configurations).

These run every experiment end to end at reduced scale and check the
*structure* of the outputs plus the qualitative relationships the paper
predicts (who is smaller than whom).  The benchmark harness runs the same
drivers at full scale.
"""

from repro.experiments import (
    ComposedRRConfig,
    ErrorCurveConfig,
    FrequencyOracleConfig,
    GenProtConfig,
    GroupositionConfig,
    HashingAblationConfig,
    HashtogramAblationConfig,
    ListRecoveryConfig,
    LowerBoundConfig,
    MaxInformationConfig,
    Table1Config,
    format_markdown_table,
    format_table,
    run_composed_rr,
    run_error_vs_epsilon,
    run_error_vs_n,
    run_frequency_oracle,
    run_genprot,
    run_grouposition,
    run_hashing_ablation,
    run_hashtogram_ablation,
    run_list_recovery,
    run_lower_bound,
    run_max_information,
    run_table1,
    theoretical_rows,
)


class TestReporting:
    def test_plain_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.00001}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "a" in text.splitlines()[1]
        assert len(text.splitlines()) == 5

    def test_markdown_table(self):
        rows = [{"x": 1}, {"x": 2, "y": "z"}]
        text = format_markdown_table(rows)
        assert text.startswith("| x")
        assert "| 2 | z |" in text

    def test_empty(self):
        assert "(no rows)" in format_table([])
        assert "(no rows)" in format_markdown_table([])


class TestTable1:
    def test_measured_rows(self):
        config = Table1Config(num_users=12_000, domain_size=1 << 16, epsilon=4.0,
                              heavy_fractions=[0.35, 0.25], scan_domain_size=1 << 10,
                              rng=0)
        rows = run_table1(config)
        assert [r["protocol"] for r in rows] == [
            "private_expander_sketch", "single_hash_bnst", "domain_scan_bs"]
        ours = rows[0]
        assert ours["recall"] == 1.0
        assert ours["comm_bits_per_user"] < 200
        # The domain-scan baseline retains at least |X| scalars.
        assert rows[2]["server_memory_items"] >= 1 << 10

    def test_theoretical_rows(self):
        rows = theoretical_rows(Table1Config(num_users=1_000, domain_size=1 << 10))
        assert len(rows) == 3
        assert rows[0]["error_value"] < rows[1]["error_value"] < rows[2]["error_value"]


class TestErrorCurves:
    def test_error_vs_n_shape(self):
        config = ErrorCurveConfig(domain_size=1 << 16, epsilon=4.0,
                                  num_users_sweep=[8_000, 16_000], rng=1)
        rows = run_error_vs_n(config)
        assert len(rows) == 2
        assert rows[0]["formula"] < rows[1]["formula"]
        assert all(r["recovered"] >= 1 for r in rows)

    def test_error_vs_epsilon_shape(self):
        config = ErrorCurveConfig(num_users=16_000, domain_size=1 << 16,
                                  epsilon_sweep=[2.0, 8.0], rng=2)
        rows = run_error_vs_epsilon(config)
        assert len(rows) == 2
        assert rows[0]["formula"] > rows[1]["formula"]


class TestFrequencyOracle:
    def test_rows_and_bounds(self):
        config = FrequencyOracleConfig(num_users=8_000,
                                       domain_sizes=[1 << 8, 1 << 14],
                                       num_queries=60, rng=3)
        rows = run_frequency_oracle(config)
        oracles = {(r["domain_size"], r["oracle"]) for r in rows}
        assert (1 << 8, "hashtogram") in oracles
        assert (1 << 8, "explicit") in oracles
        assert (1 << 14, "hashtogram") in oracles
        for row in rows:
            bound = row.get("bound_thm37", row.get("bound_thm38"))
            assert row["max_error"] < 4 * bound


class TestGrouposition:
    def test_sqrt_scaling_visible(self):
        config = GroupositionConfig(group_sizes=[4, 256], num_samples=8_000, rng=4)
        rows = run_grouposition(config)
        assert rows[0]["measured_quantile"] <= rows[0]["advanced_grouposition_bound"]
        assert rows[1]["measured_quantile"] <= rows[1]["advanced_grouposition_bound"]
        # the advantage over the central bound grows with k
        assert rows[1]["advantage"] > rows[0]["advantage"]


class TestMaxInformation:
    def test_rows(self):
        config = MaxInformationConfig(num_users_sweep=[100, 1_000],
                                      empirical_users=60, empirical_samples=400,
                                      rng=5)
        rows = run_max_information(config)
        assert len(rows) == 3
        for row in rows[:2]:
            assert row["ldp_bound_nats"] < row["central_bound_nats"]
        empirical = rows[2]
        assert empirical["empirical_max_information_nats"] <= (
            empirical["ldp_bound_nats"] + 1e-9)


class TestComposedRR:
    def test_sqrt_versus_linear(self):
        rows = run_composed_rr(ComposedRRConfig(num_bits_sweep=[8, 64]))
        for row in rows:
            assert row["worst_case_loss"] <= row["theorem_bound"] + 1e-9
            assert row["tv_distance"] <= row["beta"]
        # at k = 64 the surrogate beats basic composition
        assert rows[1]["worst_case_loss"] < rows[1]["basic_composition"]


class TestGenProt:
    def test_privacy_and_utility_rows(self):
        config = GenProtConfig(num_users=800, privacy_trials=800, rng=6)
        rows = run_genprot(config)
        assert {r["base"] for r in rows} == {"randomized_response",
                                             "gaussian_histogram"}
        for row in rows:
            assert row["empirical_index_loss"] < row["transformed_epsilon"]
            assert row["report_bits"] <= 8


class TestLowerBound:
    def test_both_parts(self):
        config = LowerBoundConfig(num_users=3_000, num_trials=60,
                                  betas=[0.3, 0.1], anticoncentration_bits=200,
                                  rng=7)
        results = run_lower_bound(config)
        counting = results["counting"]
        for row in counting:
            assert row["measured_quantile_error"] >= 0.4 * row["lower_bound"]
        anti = results["anti_concentration"]
        assert all(row["escape_at_least_beta"] for row in anti)


class TestListRecovery:
    def test_recovery_collapses_past_alpha(self):
        config = ListRecoveryConfig(num_coordinates=10, num_codewords=3,
                                    corrupted_fractions=[0.0, 0.2, 0.6],
                                    num_trials=2, rng=8)
        rows = run_list_recovery(config)
        assert rows[0]["recovery_rate"] == 1.0
        assert rows[-1]["recovery_rate"] < rows[0]["recovery_rate"]


class TestAblations:
    def test_hashing_ablation(self):
        config = HashingAblationConfig(num_users=16_000, domain_size=1 << 16,
                                       epsilon=4.0, betas=[0.2, 0.02],
                                       heavy_fractions=[0.35, 0.25], rng=9)
        rows = run_hashing_ablation(config)
        assert len(rows) == 2
        # repetitions grow as beta shrinks for the baseline
        assert rows[1]["baseline_repetitions"] > rows[0]["baseline_repetitions"]
        assert all(r["ours_recall"] == 1.0 for r in rows)

    def test_hashtogram_ablation(self):
        config = HashtogramAblationConfig(num_users=6_000, domain_size=1 << 14,
                                          bucket_counts=[32, 256],
                                          repetition_counts=[1, 5],
                                          num_queries=40, rng=10)
        rows = run_hashtogram_ablation(config)
        assert len(rows) == 4
        by_key = {(r["num_buckets"], r["num_repetitions"]): r for r in rows}
        assert by_key[(256, 5)]["server_memory_items"] > (
            by_key[(32, 1)]["server_memory_items"])
        assert by_key[(256, 5)]["public_randomness_bits"] > (
            by_key[(32, 1)]["public_randomness_bits"])
