"""Tests for the Theorem 7.2 counting lower-bound experiment."""

import numpy as np
import pytest

from repro.lowerbounds.counting import (
    CountingLowerBoundExperiment,
    randomized_response_count,
    replicated_database,
)


class TestReplicatedDatabase:
    def test_shapes_and_replication(self):
        source, replicated = replicated_database(10, 100, rng=0)
        assert source.shape == (10,)
        assert replicated.shape == (100,)
        # Each source bit appears exactly n/m = 10 times.
        assert replicated.sum() == source.sum() * 10

    def test_uneven_replication(self):
        source, replicated = replicated_database(7, 100, rng=1)
        assert replicated.shape == (100,)
        counts = [np.count_nonzero(replicated == bit) for bit in (0, 1)]
        assert sum(counts) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            replicated_database(200, 100)
        with pytest.raises(ValueError):
            replicated_database(0, 100)


class TestCountingProtocol:
    def test_estimate_is_accurate(self, rng):
        database = np.zeros(50_000, dtype=np.int64)
        database[:20_000] = 1
        estimate = randomized_response_count(database, epsilon=1.0, rng=rng)
        assert abs(estimate - 20_000) < 2_500

    def test_estimate_unbiased_over_trials(self):
        database = np.concatenate([np.ones(500, dtype=np.int64),
                                   np.zeros(500, dtype=np.int64)])
        estimates = [randomized_response_count(database, 0.5, rng=seed)
                     for seed in range(60)]
        assert abs(np.mean(estimates) - 500) < 60


class TestExperiment:
    def test_source_size_formula(self):
        experiment = CountingLowerBoundExperiment(num_users=10_000, epsilon=0.5,
                                                  replication_constant=1.0)
        assert experiment.num_source_bits == 2_500

    def test_source_size_clamped(self):
        tiny = CountingLowerBoundExperiment(num_users=100, epsilon=0.1)
        assert tiny.num_source_bits == 8
        huge = CountingLowerBoundExperiment(num_users=100, epsilon=10.0)
        assert huge.num_source_bits == 100

    def test_trials_and_quantiles(self):
        experiment = CountingLowerBoundExperiment(num_users=4_000, epsilon=1.0)
        summary = experiment.run_trials(num_trials=50, rng=3)
        assert summary.errors_on_users.shape == (50,)
        assert summary.errors_on_source.shape == (50,)
        assert summary.quantile(0.5) <= summary.quantile(0.05)
        assert 0.0 <= summary.exceed_probability(0.0) <= 1.0

    def test_measured_error_respects_lower_bound_shape(self):
        """The measured (1-beta)-quantile error of the optimal counting
        protocol must lie above the lower-bound curve (with its unspecified
        constant set conservatively) and below the matching upper bound."""
        experiment = CountingLowerBoundExperiment(num_users=8_000, epsilon=1.0)
        betas = [0.3, 0.1]
        table = experiment.comparison_table(betas, num_trials=80, rng=5)
        for beta, measured, bound in zip(table["beta"], table["measured_quantile"],
                                         table["lower_bound"], strict=True):
            assert measured >= bound * 0.5
            assert measured <= experiment.upper_bound_error(beta) * 1.5

    def test_upper_bound_grows_as_beta_shrinks(self):
        experiment = CountingLowerBoundExperiment(num_users=8_000, epsilon=1.0)
        assert experiment.upper_bound_error(0.01) > experiment.upper_bound_error(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            CountingLowerBoundExperiment(0, 1.0)
        with pytest.raises(ValueError):
            CountingLowerBoundExperiment(100, 1.0, replication_constant=0.0)
        experiment = CountingLowerBoundExperiment(100, 1.0)
        with pytest.raises(ValueError):
            experiment.run_trials(0)
