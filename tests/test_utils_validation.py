"""Tests for repro.utils.validation."""

import math

import pytest

from repro.utils.validation import (
    check_delta,
    check_domain_element,
    check_epsilon,
    check_in_range,
    check_nonnegative_int,
    check_optional_positive_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_same_length,
    coalesce,
)


class TestCheckProbability:
    def test_accepts_unit_interval(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        assert check_probability(0.5) == 0.5

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability(-0.1)
        with pytest.raises(ValueError):
            check_probability(1.1)

    def test_endpoint_exclusion(self):
        with pytest.raises(ValueError):
            check_probability(0.0, allow_zero=False)
        with pytest.raises(ValueError):
            check_probability(1.0, allow_one=False)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_probability(math.nan)


class TestNumericChecks:
    def test_check_positive(self):
        assert check_positive(2.5) == 2.5
        for bad in (0, -1, math.inf, math.nan):
            with pytest.raises(ValueError):
                check_positive(bad)

    def test_check_positive_int(self):
        assert check_positive_int(3) == 3
        for bad in (0, -2, 2.5):
            with pytest.raises(ValueError):
                check_positive_int(bad)

    def test_check_nonnegative_int(self):
        assert check_nonnegative_int(0) == 0
        with pytest.raises(ValueError):
            check_nonnegative_int(-1)

    def test_check_epsilon(self):
        assert check_epsilon(0.5) == 0.5
        with pytest.raises(ValueError):
            check_epsilon(0)

    def test_check_delta(self):
        assert check_delta(0.0) == 0.0
        assert check_delta(1e-6) == 1e-6
        with pytest.raises(ValueError):
            check_delta(1.0)
        with pytest.raises(ValueError):
            check_delta(-1e-9)

    def test_check_in_range(self):
        assert check_in_range(0.5, 0, 1) == 0.5
        with pytest.raises(ValueError):
            check_in_range(1.5, 0, 1)


class TestDomainChecks:
    def test_check_domain_element(self):
        assert check_domain_element(3, 10) == 3
        with pytest.raises(ValueError):
            check_domain_element(10, 10)
        with pytest.raises(ValueError):
            check_domain_element(-1, 10)
        with pytest.raises(ValueError):
            check_domain_element(1.5, 10)

    def test_check_same_length(self):
        check_same_length([1, 2], [3, 4])
        with pytest.raises(ValueError):
            check_same_length([1], [1, 2])


class TestMisc:
    def test_coalesce(self):
        assert coalesce(None, 5) == 5
        assert coalesce(0, 5) == 0

    def test_check_optional_positive_int(self):
        assert check_optional_positive_int(None, "x") is None
        assert check_optional_positive_int(4, "x") == 4
        with pytest.raises(ValueError):
            check_optional_positive_int(0, "x")
