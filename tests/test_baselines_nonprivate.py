"""Tests for the non-private streaming baselines."""

import numpy as np
import pytest

from repro.baselines.nonprivate import (
    CountMinSketch,
    CountSketch,
    ExactCounter,
    MisraGries,
    SpaceSaving,
)


def zipf_stream(rng, size=20_000, domain=1 << 16):
    ranks = np.arange(1, 101, dtype=float)
    probs = ranks ** -1.5
    probs /= probs.sum()
    return rng.choice(100, size=size, p=probs).astype(np.int64), domain


class TestExactCounter:
    def test_counts(self):
        counter = ExactCounter().update([1, 1, 2, 3, 3, 3])
        assert counter.estimate(3) == 3
        assert counter.estimate(99) == 0
        assert counter.total == 6
        assert counter.heavy_hitters(2) == {1: 2, 3: 3}
        assert counter.top(1) == {3: 3}


class TestMisraGries:
    def test_never_misses_frequent_elements(self, rng):
        stream, _ = zipf_stream(rng)
        summary = MisraGries(num_counters=20).update(stream)
        exact = ExactCounter().update(stream)
        threshold = len(stream) / 21
        for element, count in exact.heavy_hitters(threshold).items():
            assert element in summary.candidates()

    def test_undercount_bound(self, rng):
        stream, _ = zipf_stream(rng, size=5_000)
        summary = MisraGries(num_counters=10).update(stream)
        exact = ExactCounter().update(stream)
        for element in summary.candidates():
            estimate = summary.estimate(element)
            truth = exact.estimate(element)
            assert estimate <= truth
            assert truth - estimate <= summary.max_undercount

    def test_counter_budget_respected(self, rng):
        stream, _ = zipf_stream(rng, size=2_000)
        summary = MisraGries(num_counters=5).update(stream)
        assert len(summary.candidates()) <= 5


class TestSpaceSaving:
    def test_overestimates_and_never_misses(self, rng):
        stream, _ = zipf_stream(rng)
        summary = SpaceSaving(num_counters=20).update(stream)
        exact = ExactCounter().update(stream)
        threshold = len(stream) / 20
        for element, count in exact.heavy_hitters(threshold).items():
            assert element in summary.candidates()
            assert summary.estimate(element) >= count
            assert summary.guaranteed_count(element) <= count

    def test_counter_budget(self, rng):
        stream, _ = zipf_stream(rng, size=3_000)
        summary = SpaceSaving(num_counters=8).update(stream)
        assert len(summary.candidates()) <= 8

    def test_absent_element(self):
        assert SpaceSaving(4).estimate(99) == 0.0
        assert SpaceSaving(4).guaranteed_count(99) == 0.0


class TestCountMinSketch:
    def test_never_underestimates(self, rng):
        stream, domain = zipf_stream(rng, size=10_000)
        sketch = CountMinSketch(domain, width=256, depth=4, rng=0).update(stream)
        exact = ExactCounter().update(stream)
        for element in range(50):
            assert sketch.estimate(element) >= exact.estimate(element)

    def test_error_bounded_by_stream_length_over_width(self, rng):
        stream, domain = zipf_stream(rng, size=10_000)
        sketch = CountMinSketch(domain, width=512, depth=5, rng=1).update(stream)
        exact = ExactCounter().update(stream)
        slack = 4 * len(stream) / 512
        for element in range(50):
            assert sketch.estimate(element) - exact.estimate(element) <= slack


class TestCountSketch:
    def test_roughly_unbiased(self, rng):
        stream, domain = zipf_stream(rng, size=10_000)
        sketch = CountSketch(domain, width=512, depth=7, rng=2).update(stream)
        exact = ExactCounter().update(stream)
        heavy = max(range(100), key=exact.estimate)
        error = abs(sketch.estimate(heavy) - exact.estimate(heavy))
        assert error < 6 * len(stream) / np.sqrt(512)

    def test_absent_element_small_estimate(self, rng):
        stream, domain = zipf_stream(rng, size=5_000)
        sketch = CountSketch(domain, width=512, depth=7, rng=3).update(stream)
        assert abs(sketch.estimate(domain - 1)) < 6 * len(stream) / np.sqrt(512)


class TestValidation:
    def test_positive_parameters_required(self):
        with pytest.raises(ValueError):
            MisraGries(0)
        with pytest.raises(ValueError):
            SpaceSaving(0)
        with pytest.raises(ValueError):
            CountMinSketch(10, 0, 2)
        with pytest.raises(ValueError):
            CountSketch(10, 4, 0)
