"""Tests for the anti-concentration toolbox (Theorem 7.5 / A.5, Corollary 7.6)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lowerbounds.anti_concentration import (
    binomial_tail_lower_bound,
    corollary_interval_halfwidth,
    empirical_escape_probability,
    interval_escape_probability,
    poisson_binomial_moments,
    poisson_binomial_pmf,
    theorem_a5_conditions_hold,
    uniform_tail_lower_bound,
)


class TestPoissonBinomial:
    def test_pmf_sums_to_one(self):
        pmf = poisson_binomial_pmf([0.2, 0.5, 0.9])
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf.shape == (4,)

    def test_matches_binomial_for_equal_probs(self):
        pmf = poisson_binomial_pmf([0.5] * 4)
        expected = np.array([1, 4, 6, 4, 1]) / 16
        assert np.allclose(pmf, expected)

    def test_moments(self):
        mean, variance = poisson_binomial_moments([0.2, 0.5, 0.9])
        assert mean == pytest.approx(1.6)
        assert variance == pytest.approx(0.2 * 0.8 + 0.25 + 0.9 * 0.1)

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf([0.5, 1.2])

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_pmf_property(self, probs):
        pmf = poisson_binomial_pmf(probs)
        assert pmf.min() >= -1e-12
        assert pmf.sum() == pytest.approx(1.0)
        mean, _ = poisson_binomial_moments(probs)
        assert np.dot(np.arange(pmf.size), pmf) == pytest.approx(mean)


class TestEscapeProbability:
    def test_whole_support_gives_zero(self):
        assert interval_escape_probability([0.5] * 5, 0, 5) == pytest.approx(0.0)

    def test_empty_interval_gives_one(self):
        assert interval_escape_probability([0.5] * 5, 10, 11) == pytest.approx(1.0)

    def test_symmetric_case(self):
        escape = interval_escape_probability([0.5] * 10, 4, 6)
        pmf = poisson_binomial_pmf([0.5] * 10)
        assert escape == pytest.approx(1.0 - pmf[4:7].sum())

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            interval_escape_probability([0.5], 2, 1)


class TestCorollary76:
    def test_halfwidth_formula(self):
        assert corollary_interval_halfwidth(100.0, 0.1, constant=0.5) == pytest.approx(
            0.5 * math.sqrt(100.0 * math.log(10.0)))

    def test_anti_concentration_holds_for_fair_coins(self):
        """An interval of the Corollary 7.6 width around the mean is escaped
        with probability at least beta (for fair coins, where the corollary's
        constants are comfortable)."""
        num_bits = 400
        probabilities = [0.5] * num_bits
        mean, variance = poisson_binomial_moments(probabilities)
        for beta in (0.3, 0.1, 0.01):
            halfwidth = corollary_interval_halfwidth(variance, beta, constant=0.5)
            escape = interval_escape_probability(probabilities,
                                                 mean - halfwidth, mean + halfwidth)
            assert escape >= beta

    def test_validation(self):
        with pytest.raises(ValueError):
            corollary_interval_halfwidth(-1.0, 0.1)
        with pytest.raises(ValueError):
            corollary_interval_halfwidth(1.0, 0.0)


class TestTheoremA5Conditions:
    def test_beta_range(self):
        assert theorem_a5_conditions_hold(1000, 0.05)
        assert not theorem_a5_conditions_hold(10, 1e-9)

    def test_mean_range(self):
        assert not theorem_a5_conditions_hold(100, 0.1, means=[0.05, 0.5])
        assert theorem_a5_conditions_hold(100, 0.1, means=[0.3, 0.5])


class TestClassicalLowerBounds:
    def test_binomial_tail_lower_bound_is_valid(self):
        """The Klein-Young bound must actually lower-bound the exact tail."""
        n, p = 200, 0.5
        deviation = 20.0
        bound = binomial_tail_lower_bound(n, p, deviation)
        pmf = poisson_binomial_pmf([p] * n)
        exact_tail = pmf[: int(n * p - deviation) + 1].sum()
        assert bound <= exact_tail + 1e-12

    def test_binomial_tail_validity_range(self):
        with pytest.raises(ValueError):
            binomial_tail_lower_bound(100, 0.5, 1.0)   # below sqrt(3np)
        with pytest.raises(ValueError):
            binomial_tail_lower_bound(100, 0.7, 10.0)  # p > 1/2

    def test_uniform_tail_lower_bound_is_valid(self):
        """Lemma 5.5 must lower-bound the exact uniform-bits tail."""
        k, shift = 64, 1.0
        bound = uniform_tail_lower_bound(k, shift)
        pmf = poisson_binomial_pmf([0.5] * k)
        threshold = k / 2 + shift * math.sqrt(k)
        exact = pmf[int(math.ceil(threshold)):].sum()
        assert bound <= exact + 1e-12

    def test_uniform_tail_validation(self):
        with pytest.raises(ValueError):
            uniform_tail_lower_bound(16, 3.0)


class TestEmpiricalEscape:
    def test_fraction_computation(self):
        samples = [0, 1, 2, 3, 10]
        assert empirical_escape_probability(samples, 2, 1.5) == pytest.approx(2 / 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            empirical_escape_probability([], 0, 1)
        with pytest.raises(ValueError):
            empirical_escape_probability([1.0], 0, -1)
