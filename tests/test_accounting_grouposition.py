"""Tests for advanced grouposition (Theorems 4.2 / 4.3) and its empirical analyzer."""

import math

import numpy as np
import pytest

from repro.accounting.composition import central_group_privacy
from repro.accounting.grouposition import (
    GroupPrivacyAnalyzer,
    advanced_grouposition,
    advanced_grouposition_approximate,
    grouposition_advantage,
)
from repro.randomizers.randomized_response import BinaryRandomizedResponse


class TestAnalyticBounds:
    def test_formula(self):
        k, eps, delta = 100, 0.1, 1e-6
        expected = k * eps**2 / 2 + eps * math.sqrt(2 * k * math.log(1 / delta))
        assert advanced_grouposition(k, eps, delta) == pytest.approx(expected)

    def test_beats_central_for_large_groups(self):
        """The Section 4 headline: sqrt(k) scaling beats the central kε."""
        eps, delta = 0.1, 1e-6
        k = 10_000
        local = advanced_grouposition(k, eps, delta)
        central, _ = central_group_privacy(k, eps)
        assert local < central
        assert grouposition_advantage(k, eps, delta) > 1.0

    def test_small_groups_can_be_worse(self):
        """For k = 1 the deviation term makes the bound worse than ε itself."""
        assert advanced_grouposition(1, 0.1, 1e-6) > 0.1

    def test_sqrt_k_scaling(self):
        """Quadrupling k should roughly double the bound (for small ε)."""
        eps, delta = 0.01, 1e-6
        ratio = (advanced_grouposition(4_000, eps, delta)
                 / advanced_grouposition(1_000, eps, delta))
        assert 1.8 < ratio < 2.3

    def test_approximate_version(self):
        eps_prime, delta_prime = advanced_grouposition_approximate(
            50, 0.1, delta=1e-8, delta_prime=1e-6)
        assert eps_prime == pytest.approx(advanced_grouposition(50, 0.1, 1e-6))
        assert delta_prime == pytest.approx(1e-8 + 50 * 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            advanced_grouposition(0, 0.1, 1e-6)
        with pytest.raises(ValueError):
            advanced_grouposition(10, 0.1, 0.0)
        with pytest.raises(ValueError):
            advanced_grouposition_approximate(10, 0.1, delta=1.5, delta_prime=1e-6)


class TestGroupPrivacyAnalyzer:
    def test_empirical_loss_within_bounds(self):
        """The measured group loss must sit between 0 and the central kε bound,
        and its (1-δ)-quantile must respect the Theorem 4.2 bound."""
        epsilon, delta, k = 0.2, 0.05, 64
        analyzer = GroupPrivacyAnalyzer(BinaryRandomizedResponse(epsilon))
        estimate = analyzer.empirical_group_epsilon([0] * k, [1] * k, delta,
                                                    num_samples=20_000, rng=0)
        assert estimate.group_size == k
        bound = advanced_grouposition(k, epsilon, delta)
        assert estimate.quantile <= bound + 1e-9
        assert estimate.maximum <= k * epsilon + 1e-9

    def test_quantile_grows_sublinearly_in_k(self):
        """Doubling k four times should grow the loss quantile like sqrt(k),
        clearly slower than linearly."""
        epsilon, delta = 0.1, 0.05
        analyzer = GroupPrivacyAnalyzer(BinaryRandomizedResponse(epsilon))
        estimates = analyzer.sweep_group_sizes([16, 256], delta,
                                               num_samples=20_000, rng=1)
        ratio = estimates[1].quantile / max(estimates[0].quantile, 1e-9)
        assert ratio < 8.0  # linear scaling would give 16

    def test_identical_databases_have_zero_loss(self):
        analyzer = GroupPrivacyAnalyzer(BinaryRandomizedResponse(0.5))
        losses = analyzer.sample_group_losses([0, 1, 0], [0, 1, 0], 100, rng=2)
        assert np.allclose(losses, 0.0)

    def test_exact_moments_match_theory(self):
        """Exact per-coordinate mean loss is the KL divergence of RR, bounded
        by ε²/2 (Bun-Steinke); variance is bounded by ε²."""
        epsilon, k = 0.3, 10
        analyzer = GroupPrivacyAnalyzer(BinaryRandomizedResponse(epsilon))
        mean, variance = analyzer.exact_loss_moments([0] * k, [1] * k)
        assert 0 < mean <= k * epsilon**2 / 2 + 1e-12
        assert 0 < variance <= k * epsilon**2

    def test_length_mismatch_rejected(self):
        analyzer = GroupPrivacyAnalyzer(BinaryRandomizedResponse(0.5))
        with pytest.raises(ValueError):
            analyzer.sample_group_losses([0, 1], [0], 10)

    def test_requires_randomizers(self):
        with pytest.raises(ValueError):
            GroupPrivacyAnalyzer([])

    def test_per_user_randomizers_cycled(self):
        randomizers = [BinaryRandomizedResponse(0.1), BinaryRandomizedResponse(0.4)]
        analyzer = GroupPrivacyAnalyzer(randomizers)
        assert analyzer._randomizer_for(0) is randomizers[0]
        assert analyzer._randomizer_for(3) is randomizers[1]
