"""Tests for the domain-scan (Bassily-Smith-style) baseline."""

import numpy as np
import pytest

from repro.baselines.bassily_smith import DomainScanHeavyHitters


class TestGuards:
    def test_refuses_huge_domains(self):
        with pytest.raises(ValueError):
            DomainScanHeavyHitters(domain_size=1 << 30, epsilon=1.0)

    def test_repetitions_from_beta(self):
        assert DomainScanHeavyHitters(1 << 12, 1.0, beta=0.5).repetitions_for_beta() == 1
        assert DomainScanHeavyHitters(1 << 12, 1.0, beta=1e-3).repetitions_for_beta() >= 9

    def test_explicit_repetitions(self):
        protocol = DomainScanHeavyHitters(1 << 12, 1.0, num_repetitions=3)
        assert protocol.repetitions_for_beta() == 3


class TestExecution:
    @pytest.fixture(scope="class")
    def executed(self):
        rng = np.random.default_rng(4)
        domain = 1 << 12
        values = rng.integers(0, domain, size=20_000)
        values[:6_000] = 99
        values[6_000:10_000] = 1234
        protocol = DomainScanHeavyHitters(domain_size=domain, epsilon=2.0,
                                          num_repetitions=2)
        result = protocol.run(values, rng=5)
        return values, result

    def test_finds_heavy_elements(self, executed):
        _, result = executed
        assert 99 in result.estimates
        assert 1234 in result.estimates

    def test_estimates_close_to_truth(self, executed):
        _, result = executed
        assert abs(result.estimates[99] - 6_000) < 3_000
        assert abs(result.estimates[1234] - 4_000) < 3_000

    def test_output_does_not_explode(self, executed):
        _, result = executed
        # The noise floor should exclude the overwhelming majority of the domain.
        assert result.list_size < 300

    def test_server_memory_scales_with_domain(self, executed):
        _, result = executed
        # The scan stores an estimate per domain element - the cost profile the
        # paper criticises.
        assert result.meter.server_memory_items >= 1 << 12

    def test_metadata(self, executed):
        _, result = executed
        assert result.metadata["scanned_domain"] == 1 << 12
        assert result.metadata["repetitions"] == 2
        assert result.protocol == "domain_scan_bs"
