"""Cross-cutting property-based tests (hypothesis) on core invariants.

Module-level tests already include targeted hypothesis properties; this module
collects the invariants that tie several components together:

* any k-wise hash stays inside its declared range for arbitrary inputs;
* Reed-Solomon round-trips survive arbitrary error patterns within budget;
* the unique-list-recoverable code recovers any domain element from its own
  clean encoding;
* local randomizers never exceed their declared ε on enumerable spaces;
* frequency-oracle estimates are finite and anchored near the truth for
  deterministic (single-value) databases;
* heavy-hitter scoring is consistent with exhaustive recomputation.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.metrics import score_heavy_hitters, true_frequencies
from repro.codes.list_recoverable import UniqueListRecoverableCode
from repro.codes.reed_solomon import ReedSolomonCode
from repro.frequency.explicit import ExplicitHistogramOracle
from repro.hashing.kwise import KWiseHashFamily
from repro.randomizers.randomized_response import KaryRandomizedResponse
from repro.structure.composed_rr import ApproximateComposedRandomizedResponse


RS_CODE = ReedSolomonCode.for_domain(domain_size=1 << 16, num_chunks=8, rate=0.5)
LR_CODE = UniqueListRecoverableCode.create(
    domain_size=1 << 14, num_coordinates=8, hash_range=32, list_size=8, rng=123)


@given(domain_bits=st.integers(min_value=4, max_value=30),
       range_size=st.integers(min_value=2, max_value=1024),
       independence=st.integers(min_value=2, max_value=8),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_hash_range_invariant(domain_bits, range_size, independence, seed):
    family = KWiseHashFamily.create(1 << domain_bits, range_size, independence)
    h = family.sample(seed)
    xs = np.random.default_rng(seed).integers(0, 1 << domain_bits, size=64)
    values = h(xs)
    assert values.min() >= 0
    assert values.max() < range_size


@given(value=st.integers(min_value=0, max_value=(1 << 16) - 1),
       errors=st.dictionaries(st.integers(min_value=0, max_value=7),
                              st.integers(min_value=1, max_value=96),
                              max_size=2))
@settings(max_examples=60, deadline=None)
def test_reed_solomon_roundtrip_with_errors(value, errors):
    codeword = RS_CODE.encode_int(value)
    corrupted = list(codeword)
    for position, shift in errors.items():
        corrupted[position] = (corrupted[position] + shift) % RS_CODE.prime
    assert RS_CODE.decode_int(corrupted) == value


@given(value=st.integers(min_value=0, max_value=(1 << 14) - 1))
@settings(max_examples=40, deadline=None)
def test_list_recovery_from_clean_encoding(value):
    lists = [[(symbol.y, symbol.z)] for symbol in LR_CODE.encode(value)]
    assert value in LR_CODE.decode(lists)


@given(epsilon=st.floats(min_value=0.1, max_value=2.0),
       domain_size=st.integers(min_value=2, max_value=10))
@settings(max_examples=30, deadline=None)
def test_randomizer_privacy_never_exceeds_epsilon(epsilon, domain_size):
    randomizer = KaryRandomizedResponse(epsilon, domain_size)
    assert randomizer.verify_pure_dp(range(domain_size)) <= epsilon + 1e-9


@given(epsilon=st.floats(min_value=0.05, max_value=0.3),
       num_bits=st.integers(min_value=4, max_value=10),
       beta=st.floats(min_value=0.01, max_value=0.2))
@settings(max_examples=25, deadline=None)
def test_composed_rr_privacy_bound_property(epsilon, num_bits, beta):
    mechanism = ApproximateComposedRandomizedResponse(num_bits, epsilon, beta)
    assert mechanism.worst_case_privacy_loss() <= mechanism.composed_epsilon + 1e-9
    assert mechanism.tv_distance_to_composition() <= mechanism.escape_probability() + 1e-12


@given(domain_size=st.integers(min_value=2, max_value=64),
       value=st.data(),
       epsilon=st.floats(min_value=0.5, max_value=4.0),
       seed=st.integers(min_value=0, max_value=1_000))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_oracle_single_value_database(domain_size, value, epsilon, seed):
    """A database where everyone holds the same value: the oracle's estimate of
    that value must be positive and dominate the estimate of absent values."""
    held = value.draw(st.integers(min_value=0, max_value=domain_size - 1))
    n = 4_000
    oracle = ExplicitHistogramOracle(domain_size, epsilon)
    oracle.collect(np.full(n, held), np.random.default_rng(seed))
    estimates = oracle.histogram()
    assert np.isfinite(estimates).all()
    assert estimates[held] > 0.5 * n
    assert estimates[held] == estimates.max()


@given(data=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
       threshold=st.integers(min_value=1, max_value=30))
@settings(max_examples=50)
def test_score_heavy_hitters_consistency(data, threshold):
    """Scoring with the exact frequencies as estimates must always succeed."""
    estimates = {x: float(c) for x, c in true_frequencies(data).items()}
    score = score_heavy_hitters(estimates, data, threshold)
    assert score.recall == 1.0
    assert score.max_estimation_error == 0.0
    assert score.succeeded
    # Recomputed list size matches the number of distinct elements.
    assert score.list_size == len(estimates)


# --------------------------------------------------------------------------------------
# merge algebra of the aggregator tier (the cluster's exactness foundation)
# --------------------------------------------------------------------------------------
#
# The sharded cluster (and the chaos harness on top of it) is exact only
# because aggregator state is a commutative monoid under absorb/merge:
# any partition of the report stream across shards, absorbed in any
# interleaving and merged in any order, must reproduce the single-server
# state bit for bit.  These properties pin that algebra for every
# registered protocol, with hypothesis choosing the partition.

def _protocol_cases():
    from repro.baselines.single_hash import SingleHashHeavyHitters
    from repro.core.heavy_hitters import PrivateExpanderSketch
    from repro.protocol import (
        CountMeanSketchParams,
        ExplicitHistogramParams,
        HashtogramParams,
        RapporParams,
    )

    expander = PrivateExpanderSketch(domain_size=1 << 12, epsilon=4.0)
    single = SingleHashHeavyHitters(domain_size=1 << 12, epsilon=4.0,
                                    num_repetitions=2)
    return [
        ("explicit", ExplicitHistogramParams(64, 1.0, "hadamard")),
        ("hashtogram",
         HashtogramParams.create(1 << 10, 1.0, num_buckets=16, rng=0)),
        ("cms", CountMeanSketchParams.create(1 << 10, 1.0, num_hashes=4,
                                             num_buckets=16, rng=0)),
        ("rappor", RapporParams.create(256, 2.0, num_bits=64, rng=0)),
        ("expander_sketch",
         expander.public_params(800, rng=np.random.default_rng(3))),
        ("single_hash",
         single.public_params(800, rng=np.random.default_rng(5))),
    ]


PROTOCOL_CASES = _protocol_cases()
PROTOCOL_IDS = [name for name, _ in PROTOCOL_CASES]


def _encoded_batches(params, sizes, seed):
    batches = []
    for i, n in enumerate(sizes):
        gen = np.random.default_rng((seed, i))
        values = gen.integers(0, params.domain_size, size=n)
        batches.append(params.make_encoder().encode_batch(values, gen))
    return batches


@pytest.mark.parametrize("name,params", PROTOCOL_CASES, ids=PROTOCOL_IDS)
@given(data=st.data())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_merge_algebra_is_commutative_and_associative(name, params, data):
    """Any shard partition, any absorb interleaving, any merge order —
    one snapshot."""
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1),
                     label="seed")
    num_batches = data.draw(st.integers(min_value=2, max_value=5),
                            label="num_batches")
    sizes = data.draw(st.lists(st.integers(min_value=1, max_value=60),
                               min_size=num_batches, max_size=num_batches),
                      label="sizes")
    batches = _encoded_batches(params, sizes, seed)

    reference = params.make_aggregator()
    for batch in batches:
        reference.absorb_batch(batch)
    expected = reference.snapshot()

    # absorb commutes: a permuted interleaving gives the same state
    order = data.draw(st.permutations(range(num_batches)), label="order")
    permuted = params.make_aggregator()
    for i in order:
        permuted.absorb_batch(batches[i])
    assert permuted.snapshot() == expected

    # merge commutes and associates across an arbitrary 3-way partition
    assignment = data.draw(st.lists(st.integers(min_value=0, max_value=2),
                                    min_size=num_batches,
                                    max_size=num_batches),
                           label="assignment")
    shards = [params.make_aggregator() for _ in range(3)]
    for i, batch in enumerate(batches):
        shards[assignment[i]].absorb_batch(batch)
    a, b, c = (shards[g] for g in data.draw(st.permutations(range(3)),
                                            label="merge_order"))
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.snapshot() == expected
    assert right.snapshot() == expected
    assert left.num_reports == sum(sizes)


@pytest.mark.parametrize("name,params", PROTOCOL_CASES, ids=PROTOCOL_IDS)
@given(data=st.data())
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_snapshot_restore_mid_sequence_is_invisible(name, params, data):
    """Checkpoint/restart at any point in the stream must not perturb the
    final state — the invariant shard recovery (restore + journal replay)
    is built on."""
    import json

    from repro.protocol import ServerAggregator

    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1),
                     label="seed")
    num_batches = data.draw(st.integers(min_value=2, max_value=5),
                            label="num_batches")
    sizes = data.draw(st.lists(st.integers(min_value=1, max_value=60),
                               min_size=num_batches, max_size=num_batches),
                      label="sizes")
    cut = data.draw(st.integers(min_value=0, max_value=num_batches),
                    label="cut")
    batches = _encoded_batches(params, sizes, seed)

    straight = params.make_aggregator()
    for batch in batches:
        straight.absorb_batch(batch)

    before = params.make_aggregator()
    for batch in batches[:cut]:
        before.absorb_batch(batch)
    # through JSON, exactly as the on-disk snapshot store round-trips it
    blob = json.loads(json.dumps(before.snapshot()))
    revived = ServerAggregator.from_snapshot(blob)
    for batch in batches[cut:]:
        revived.absorb_batch(batch)

    assert revived.snapshot() == straight.snapshot()
    assert revived.num_reports == sum(sizes)


# --------------------------------------------------------------------------------------
# elastic membership (the shard map's exactness guarantee)
# --------------------------------------------------------------------------------------
#
# Growing and draining the cluster mid-stream is exact for the same
# algebraic reason sharding is: a grow only adds a routing entry at an
# unseen epoch cut, a drain only rewrites owners and merges the drained
# shard's state wholesale — no report is ever lost or double-counted.
# Hypothesis drives *any* add/drain script at *any* point in the stream,
# with arbitrary (not even monotone) epoch tags, and the merged cluster
# state must equal the offline engine bit for bit.

def _drive_elastic(params, batches, routes, tags, script):
    """Route an epoch-tagged chunk stream through a mutating ShardMap,
    applying add/drain transitions exactly as the router does, and return
    the final map plus the merge of every surviving shard."""
    from repro.cluster.shardmap import ShardMap
    from repro.engine import ShardPartition
    from repro.protocol.wire import merge_aggregators

    shard_map = ShardMap.initial(2, ShardPartition.sample(2, rng=0))
    aggs = {sid: params.make_aggregator() for sid in shard_map.shard_ids}
    ops_at = {}
    for index, op in script:
        ops_at.setdefault(index, []).append(op)
    seen_epoch = -1
    for i, batch in enumerate(batches):
        for op in ops_at.get(i, ()):
            if op[0] == "add":
                new = shard_map.next_id
                joined = shard_map.with_joining(new)
                last_cut = shard_map.entries[-1].cut_epoch
                cut = max(seen_epoch + 1,
                          0 if last_cut is None else last_cut + 1)
                partition = ShardPartition.sample(
                    len(joined.active_ids) + 1, rng=shard_map.version)
                shard_map = joined.with_activated(new, cut, partition)
                aggs[new] = params.make_aggregator()
            else:  # ("drain", position)
                active = shard_map.active_ids
                if len(active) < 2:
                    continue  # the last shard can never drain
                victim = active[op[1] % len(active)]
                target = active[(op[1] + 1) % len(active)]
                shard_map = shard_map.with_drained_routing(victim, target)
                # the epoch-boundary handoff: packed exact state moves
                # wholesale to the merge target, then the id is retired
                aggs[target] = aggs[target].merge(aggs.pop(victim))
                shard_map = shard_map.with_removed(victim)
        seen_epoch = max(seen_epoch, tags[i])
        owner = shard_map.shard_for(routes[i], tags[i])
        aggs[owner].absorb_batch(batch)
    return shard_map, merge_aggregators(list(aggs.values()))


@pytest.mark.parametrize("name,params", PROTOCOL_CASES, ids=PROTOCOL_IDS)
@given(data=st.data())
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_elastic_membership_matches_offline_engine(name, params, data):
    """Any add/drain script at any epoch cuts: merged state == offline."""
    from repro.engine import encode_stream, run_simulation

    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1),
                     label="seed")
    num_users = data.draw(st.integers(min_value=60, max_value=240),
                          label="num_users")
    chunk_size = data.draw(st.integers(min_value=20, max_value=80),
                           label="chunk_size")
    gen = np.random.default_rng(seed)
    values = gen.integers(0, params.domain_size, size=num_users)
    offline = run_simulation(params, values,
                             rng=np.random.default_rng(seed),
                             chunk_size=chunk_size)
    batches = list(encode_stream(params, values,
                                 rng=np.random.default_rng(seed),
                                 chunk_size=chunk_size))
    routes, start = [], 0
    for batch in batches:
        routes.append(start)
        start += len(batch)
    n = len(batches)
    tags = data.draw(st.lists(st.integers(min_value=0, max_value=5),
                              min_size=n, max_size=n), label="epochs")
    num_ops = data.draw(st.integers(min_value=0, max_value=4),
                        label="num_ops")
    script = [
        (data.draw(st.integers(min_value=0, max_value=n - 1),
                   label=f"op{k}_index"),
         (("add",) if data.draw(st.booleans(), label=f"op{k}_is_add")
          else ("drain", data.draw(st.integers(min_value=0, max_value=7),
                                   label=f"op{k}_victim"))))
        for k in range(num_ops)
    ]

    final_map, merged = _drive_elastic(params, batches, routes, tags, script)
    assert merged.snapshot() == offline.aggregator.snapshot()
    assert merged.num_reports == num_users
    # tombstones never shrink and never collide with live ids
    assert not set(final_map.retired) & set(final_map.shard_ids)
    assert final_map.next_id > max(final_map.shard_ids)
