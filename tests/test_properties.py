"""Cross-cutting property-based tests (hypothesis) on core invariants.

Module-level tests already include targeted hypothesis properties; this module
collects the invariants that tie several components together:

* any k-wise hash stays inside its declared range for arbitrary inputs;
* Reed-Solomon round-trips survive arbitrary error patterns within budget;
* the unique-list-recoverable code recovers any domain element from its own
  clean encoding;
* local randomizers never exceed their declared ε on enumerable spaces;
* frequency-oracle estimates are finite and anchored near the truth for
  deterministic (single-value) databases;
* heavy-hitter scoring is consistent with exhaustive recomputation.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.metrics import score_heavy_hitters, true_frequencies
from repro.codes.list_recoverable import UniqueListRecoverableCode
from repro.codes.reed_solomon import ReedSolomonCode
from repro.frequency.explicit import ExplicitHistogramOracle
from repro.hashing.kwise import KWiseHashFamily
from repro.randomizers.randomized_response import KaryRandomizedResponse
from repro.structure.composed_rr import ApproximateComposedRandomizedResponse


RS_CODE = ReedSolomonCode.for_domain(domain_size=1 << 16, num_chunks=8, rate=0.5)
LR_CODE = UniqueListRecoverableCode.create(
    domain_size=1 << 14, num_coordinates=8, hash_range=32, list_size=8, rng=123)


@given(domain_bits=st.integers(min_value=4, max_value=30),
       range_size=st.integers(min_value=2, max_value=1024),
       independence=st.integers(min_value=2, max_value=8),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_hash_range_invariant(domain_bits, range_size, independence, seed):
    family = KWiseHashFamily.create(1 << domain_bits, range_size, independence)
    h = family.sample(seed)
    xs = np.random.default_rng(seed).integers(0, 1 << domain_bits, size=64)
    values = h(xs)
    assert values.min() >= 0
    assert values.max() < range_size


@given(value=st.integers(min_value=0, max_value=(1 << 16) - 1),
       errors=st.dictionaries(st.integers(min_value=0, max_value=7),
                              st.integers(min_value=1, max_value=96),
                              max_size=2))
@settings(max_examples=60, deadline=None)
def test_reed_solomon_roundtrip_with_errors(value, errors):
    codeword = RS_CODE.encode_int(value)
    corrupted = list(codeword)
    for position, shift in errors.items():
        corrupted[position] = (corrupted[position] + shift) % RS_CODE.prime
    assert RS_CODE.decode_int(corrupted) == value


@given(value=st.integers(min_value=0, max_value=(1 << 14) - 1))
@settings(max_examples=40, deadline=None)
def test_list_recovery_from_clean_encoding(value):
    lists = [[(symbol.y, symbol.z)] for symbol in LR_CODE.encode(value)]
    assert value in LR_CODE.decode(lists)


@given(epsilon=st.floats(min_value=0.1, max_value=2.0),
       domain_size=st.integers(min_value=2, max_value=10))
@settings(max_examples=30, deadline=None)
def test_randomizer_privacy_never_exceeds_epsilon(epsilon, domain_size):
    randomizer = KaryRandomizedResponse(epsilon, domain_size)
    assert randomizer.verify_pure_dp(range(domain_size)) <= epsilon + 1e-9


@given(epsilon=st.floats(min_value=0.05, max_value=0.3),
       num_bits=st.integers(min_value=4, max_value=10),
       beta=st.floats(min_value=0.01, max_value=0.2))
@settings(max_examples=25, deadline=None)
def test_composed_rr_privacy_bound_property(epsilon, num_bits, beta):
    mechanism = ApproximateComposedRandomizedResponse(num_bits, epsilon, beta)
    assert mechanism.worst_case_privacy_loss() <= mechanism.composed_epsilon + 1e-9
    assert mechanism.tv_distance_to_composition() <= mechanism.escape_probability() + 1e-12


@given(domain_size=st.integers(min_value=2, max_value=64),
       value=st.data(),
       epsilon=st.floats(min_value=0.5, max_value=4.0),
       seed=st.integers(min_value=0, max_value=1_000))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_oracle_single_value_database(domain_size, value, epsilon, seed):
    """A database where everyone holds the same value: the oracle's estimate of
    that value must be positive and dominate the estimate of absent values."""
    held = value.draw(st.integers(min_value=0, max_value=domain_size - 1))
    n = 4_000
    oracle = ExplicitHistogramOracle(domain_size, epsilon)
    oracle.collect(np.full(n, held), np.random.default_rng(seed))
    estimates = oracle.histogram()
    assert np.isfinite(estimates).all()
    assert estimates[held] > 0.5 * n
    assert estimates[held] == estimates.max()


@given(data=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
       threshold=st.integers(min_value=1, max_value=30))
@settings(max_examples=50)
def test_score_heavy_hitters_consistency(data, threshold):
    """Scoring with the exact frequencies as estimates must always succeed."""
    estimates = {x: float(c) for x, c in true_frequencies(data).items()}
    score = score_heavy_hitters(estimates, data, threshold)
    assert score.recall == 1.0
    assert score.max_estimation_error == 0.0
    assert score.succeeded
    # Recomputed list size matches the number of distinct elements.
    assert score.list_size == len(estimates)


# --------------------------------------------------------------------------------------
# merge algebra of the aggregator tier (the cluster's exactness foundation)
# --------------------------------------------------------------------------------------
#
# The sharded cluster (and the chaos harness on top of it) is exact only
# because aggregator state is a commutative monoid under absorb/merge:
# any partition of the report stream across shards, absorbed in any
# interleaving and merged in any order, must reproduce the single-server
# state bit for bit.  These properties pin that algebra for every
# registered protocol, with hypothesis choosing the partition.

def _protocol_cases():
    from repro.baselines.single_hash import SingleHashHeavyHitters
    from repro.core.heavy_hitters import PrivateExpanderSketch
    from repro.protocol import (
        CountMeanSketchParams,
        ExplicitHistogramParams,
        HashtogramParams,
        RapporParams,
    )

    expander = PrivateExpanderSketch(domain_size=1 << 12, epsilon=4.0)
    single = SingleHashHeavyHitters(domain_size=1 << 12, epsilon=4.0,
                                    num_repetitions=2)
    return [
        ("explicit", ExplicitHistogramParams(64, 1.0, "hadamard")),
        ("hashtogram",
         HashtogramParams.create(1 << 10, 1.0, num_buckets=16, rng=0)),
        ("cms", CountMeanSketchParams.create(1 << 10, 1.0, num_hashes=4,
                                             num_buckets=16, rng=0)),
        ("rappor", RapporParams.create(256, 2.0, num_bits=64, rng=0)),
        ("expander_sketch",
         expander.public_params(800, rng=np.random.default_rng(3))),
        ("single_hash",
         single.public_params(800, rng=np.random.default_rng(5))),
    ]


PROTOCOL_CASES = _protocol_cases()
PROTOCOL_IDS = [name for name, _ in PROTOCOL_CASES]


def _encoded_batches(params, sizes, seed):
    batches = []
    for i, n in enumerate(sizes):
        gen = np.random.default_rng((seed, i))
        values = gen.integers(0, params.domain_size, size=n)
        batches.append(params.make_encoder().encode_batch(values, gen))
    return batches


@pytest.mark.parametrize("name,params", PROTOCOL_CASES, ids=PROTOCOL_IDS)
@given(data=st.data())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_merge_algebra_is_commutative_and_associative(name, params, data):
    """Any shard partition, any absorb interleaving, any merge order —
    one snapshot."""
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1),
                     label="seed")
    num_batches = data.draw(st.integers(min_value=2, max_value=5),
                            label="num_batches")
    sizes = data.draw(st.lists(st.integers(min_value=1, max_value=60),
                               min_size=num_batches, max_size=num_batches),
                      label="sizes")
    batches = _encoded_batches(params, sizes, seed)

    reference = params.make_aggregator()
    for batch in batches:
        reference.absorb_batch(batch)
    expected = reference.snapshot()

    # absorb commutes: a permuted interleaving gives the same state
    order = data.draw(st.permutations(range(num_batches)), label="order")
    permuted = params.make_aggregator()
    for i in order:
        permuted.absorb_batch(batches[i])
    assert permuted.snapshot() == expected

    # merge commutes and associates across an arbitrary 3-way partition
    assignment = data.draw(st.lists(st.integers(min_value=0, max_value=2),
                                    min_size=num_batches,
                                    max_size=num_batches),
                           label="assignment")
    shards = [params.make_aggregator() for _ in range(3)]
    for i, batch in enumerate(batches):
        shards[assignment[i]].absorb_batch(batch)
    a, b, c = (shards[g] for g in data.draw(st.permutations(range(3)),
                                            label="merge_order"))
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.snapshot() == expected
    assert right.snapshot() == expected
    assert left.num_reports == sum(sizes)


@pytest.mark.parametrize("name,params", PROTOCOL_CASES, ids=PROTOCOL_IDS)
@given(data=st.data())
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_snapshot_restore_mid_sequence_is_invisible(name, params, data):
    """Checkpoint/restart at any point in the stream must not perturb the
    final state — the invariant shard recovery (restore + journal replay)
    is built on."""
    import json

    from repro.protocol import ServerAggregator

    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1),
                     label="seed")
    num_batches = data.draw(st.integers(min_value=2, max_value=5),
                            label="num_batches")
    sizes = data.draw(st.lists(st.integers(min_value=1, max_value=60),
                               min_size=num_batches, max_size=num_batches),
                      label="sizes")
    cut = data.draw(st.integers(min_value=0, max_value=num_batches),
                    label="cut")
    batches = _encoded_batches(params, sizes, seed)

    straight = params.make_aggregator()
    for batch in batches:
        straight.absorb_batch(batch)

    before = params.make_aggregator()
    for batch in batches[:cut]:
        before.absorb_batch(batch)
    # through JSON, exactly as the on-disk snapshot store round-trips it
    blob = json.loads(json.dumps(before.snapshot()))
    revived = ServerAggregator.from_snapshot(blob)
    for batch in batches[cut:]:
        revived.absorb_batch(batch)

    assert revived.snapshot() == straight.snapshot()
    assert revived.num_reports == sum(sizes)
