"""Tests for randomized response (binary and k-ary)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.randomizers.randomized_response import (
    BinaryRandomizedResponse,
    KaryRandomizedResponse,
)


class TestBinaryRandomizedResponse:
    def test_output_is_bit(self, rng):
        randomizer = BinaryRandomizedResponse(1.0)
        assert randomizer.randomize(0, rng) in (0, 1)
        assert randomizer.randomize(1, rng) in (0, 1)

    def test_probabilities_sum_to_one(self):
        randomizer = BinaryRandomizedResponse(0.7)
        for x in (0, 1):
            total = sum(randomizer.prob(x, y) for y in randomizer.report_space())
            assert total == pytest.approx(1.0)

    def test_exact_privacy_equals_epsilon(self):
        for epsilon in (0.3, 1.0, 2.5):
            randomizer = BinaryRandomizedResponse(epsilon)
            worst = randomizer.verify_pure_dp([0, 1])
            assert worst == pytest.approx(epsilon, rel=1e-9)

    def test_keep_probability(self):
        randomizer = BinaryRandomizedResponse(1.0)
        assert randomizer.keep_probability == pytest.approx(math.e / (math.e + 1))

    def test_unbiased_count(self, rng):
        randomizer = BinaryRandomizedResponse(2.0)
        bits = np.zeros(20_000, dtype=np.int64)
        bits[:6_000] = 1
        reports = randomizer.randomize_many(bits, rng)
        estimate = randomizer.unbiased_count(reports)
        tolerance = 4 * math.sqrt(20_000 * randomizer.estimator_variance_per_user)
        assert abs(estimate - 6_000) < tolerance

    def test_empirical_flip_rate(self, rng):
        randomizer = BinaryRandomizedResponse(1.0)
        reports = randomizer.randomize_many(np.ones(20_000, dtype=np.int64), rng)
        keep_rate = reports.mean()
        assert abs(keep_rate - randomizer.keep_probability) < 0.02

    def test_rejects_non_bits(self, rng):
        randomizer = BinaryRandomizedResponse(1.0)
        with pytest.raises(ValueError):
            randomizer.randomize(2, rng)
        with pytest.raises(ValueError):
            randomizer.randomize_many(np.array([0, 3]), rng)
        with pytest.raises(ValueError):
            randomizer.log_prob(0, 5)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            BinaryRandomizedResponse(0.0)

    def test_null_input_resolves(self, rng):
        randomizer = BinaryRandomizedResponse(1.0)
        assert randomizer.randomize(None, rng) in (0, 1)


class TestKaryRandomizedResponse:
    def test_output_in_domain(self, rng):
        randomizer = KaryRandomizedResponse(1.0, 10)
        for x in range(10):
            assert 0 <= randomizer.randomize(x, rng) < 10

    def test_probabilities_sum_to_one(self):
        randomizer = KaryRandomizedResponse(0.8, 7)
        for x in range(7):
            total = sum(randomizer.prob(x, y) for y in randomizer.report_space())
            assert total == pytest.approx(1.0)

    def test_exact_privacy_equals_epsilon(self):
        randomizer = KaryRandomizedResponse(1.5, 6)
        assert randomizer.verify_pure_dp(range(6)) == pytest.approx(1.5, rel=1e-9)

    def test_truth_probability_formula(self):
        randomizer = KaryRandomizedResponse(1.0, 5)
        expected = math.e / (math.e + 4)
        assert randomizer.truth_probability == pytest.approx(expected)
        assert randomizer.lie_probability == pytest.approx(1.0 / (math.e + 4))

    def test_unbiased_histogram(self, rng):
        randomizer = KaryRandomizedResponse(2.0, 8)
        values = rng.integers(0, 8, size=30_000)
        reports = randomizer.randomize_many(values, rng)
        estimates = randomizer.unbiased_histogram(reports)
        true = np.bincount(values, minlength=8)
        tolerance = 5 * math.sqrt(30_000 * randomizer.estimator_variance_per_user)
        assert np.abs(estimates - true).max() < tolerance

    def test_degenerate_single_element_domain(self, rng):
        randomizer = KaryRandomizedResponse(1.0, 1)
        assert randomizer.randomize(0, rng) == 0
        assert randomizer.log_prob(0, 0) == 0.0

    def test_randomize_many_shape_and_domain(self, rng):
        randomizer = KaryRandomizedResponse(1.0, 12)
        values = rng.integers(0, 12, size=500)
        reports = randomizer.randomize_many(values, rng)
        assert reports.shape == values.shape
        assert reports.min() >= 0 and reports.max() < 12

    def test_rejects_out_of_domain(self, rng):
        randomizer = KaryRandomizedResponse(1.0, 4)
        with pytest.raises(ValueError):
            randomizer.randomize(4, rng)
        with pytest.raises(ValueError):
            randomizer.log_prob(0, 9)

    @given(st.floats(min_value=0.1, max_value=3.0),
           st.integers(min_value=2, max_value=12))
    @settings(max_examples=25, deadline=None)
    def test_privacy_property(self, epsilon, domain_size):
        randomizer = KaryRandomizedResponse(epsilon, domain_size)
        worst = randomizer.verify_pure_dp(range(domain_size))
        assert worst <= epsilon + 1e-9
