"""Tests for synthetic workloads and string-domain datasets."""

import numpy as np
import pytest

from repro.workloads.datasets import (
    StringDomain,
    synthetic_url_dataset,
    synthetic_word_dataset,
)
from repro.workloads.distributions import (
    planted_workload,
    uniform_workload,
    zipf_workload,
)


class TestUniformWorkload:
    def test_shape_and_range(self):
        values = uniform_workload(5_000, 1 << 16, rng=0)
        assert values.shape == (5_000,)
        assert values.min() >= 0 and values.max() < (1 << 16)

    def test_no_heavy_hitters(self):
        values = uniform_workload(5_000, 1 << 16, rng=1)
        counts = np.bincount(values, minlength=1 << 16)
        assert counts.max() < 20


class TestZipfWorkload:
    def test_shape_and_domain(self):
        values = zipf_workload(10_000, 1 << 20, rng=0)
        assert values.shape == (10_000,)
        assert values.min() >= 0 and values.max() < (1 << 20)

    def test_is_skewed(self):
        values = zipf_workload(20_000, 1 << 20, exponent=1.5, rng=1)
        _, counts = np.unique(values, return_counts=True)
        assert counts.max() > 20_000 / 50  # the head is genuinely heavy

    def test_support_limits_distinct_values(self):
        values = zipf_workload(5_000, 1 << 20, support=100, rng=2)
        assert np.unique(values).size <= 100

    def test_unshuffled_ids_are_low_integers(self):
        values = zipf_workload(1_000, 1 << 20, support=50, shuffle_ids=False, rng=3)
        assert values.max() < 50

    def test_small_domain(self):
        values = zipf_workload(1_000, 64, support=1_000, rng=4)
        assert values.max() < 64

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_workload(100, 1 << 10, exponent=0.0)


class TestPlantedWorkload:
    def test_frequencies_match_requested_fractions(self):
        workload = planted_workload(10_000, 1 << 20, [0.2, 0.1],
                                    heavy_elements=[5, 9], rng=0)
        assert workload.num_users == 10_000
        assert workload.true_frequency(5) == 2_000
        assert workload.true_frequency(9) == 1_000
        assert workload.as_dict() == {5: 2_000, 9: 1_000}

    def test_heavy_elements_sorted_by_frequency(self):
        workload = planted_workload(10_000, 1 << 20, [0.1, 0.3],
                                    heavy_elements=[7, 8], rng=1)
        assert workload.heavy_elements == (8, 7)
        assert workload.heavy_frequencies == (3_000, 1_000)

    def test_random_heavy_elements_are_distinct(self):
        workload = planted_workload(1_000, 1 << 10, [0.1] * 5, rng=2)
        assert len(set(workload.heavy_elements)) == 5

    def test_zipf_background(self):
        workload = planted_workload(5_000, 1 << 16, [0.2], background="zipf", rng=3)
        assert workload.values.shape == (5_000,)

    def test_validation(self):
        with pytest.raises(ValueError):
            planted_workload(100, 1 << 10, [0.7, 0.5])
        with pytest.raises(ValueError):
            planted_workload(100, 1 << 10, [0.2], heavy_elements=[1, 2])
        with pytest.raises(ValueError):
            planted_workload(100, 1 << 10, [0.2], background="exponential")


class TestStringDomain:
    def test_round_trip(self):
        domain = StringDomain(alphabet="abc", max_length=5)
        for text in ["", "a", "abc", "cabba"]:
            assert domain.decode(domain.encode(text)) == text

    def test_distinct_strings_distinct_codes(self):
        domain = StringDomain(alphabet="ab", max_length=4)
        strings = ["", "a", "b", "aa", "ab", "ba", "bb", "abab"]
        codes = {domain.encode(s) for s in strings}
        assert len(codes) == len(strings)

    def test_domain_size(self):
        domain = StringDomain(alphabet="ab", max_length=3)
        assert domain.domain_size == 27
        for value in range(domain.domain_size):
            try:
                text = domain.decode(value)
            except ValueError:
                continue
            assert domain.encode(text) == value

    def test_length_limit(self):
        domain = StringDomain(alphabet="ab", max_length=2)
        with pytest.raises(ValueError):
            domain.encode("aaa")

    def test_validation(self):
        with pytest.raises(ValueError):
            StringDomain(alphabet="aa", max_length=3)
        with pytest.raises(ValueError):
            StringDomain(alphabet="ab", max_length=0)


class TestSyntheticDatasets:
    def test_url_dataset(self):
        values, domain, popular = synthetic_url_dataset(5_000, num_popular=4, rng=0)
        assert values.shape == (5_000,)
        assert len(popular) == 4
        assert sum(popular.values()) > 0.4 * 5_000
        for url, count in popular.items():
            assert np.count_nonzero(values == domain.encode(url)) == count

    def test_word_dataset(self):
        values, domain, trending = synthetic_word_dataset(
            4_000, new_words=["covfefe", "rizz"], adoption=0.5, rng=1)
        assert values.shape == (4_000,)
        assert set(trending) == {"covfefe", "rizz"}
        total = sum(trending.values())
        assert abs(total - 2_000) < 10
        for word, count in trending.items():
            assert np.count_nonzero(values == domain.encode(word)) == count
