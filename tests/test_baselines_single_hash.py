"""Tests for the single-hash (Bassily et al. [3]-style) baseline."""

import pytest

from repro.baselines.single_hash import SingleHashHeavyHitters
from repro.workloads.distributions import planted_workload


class TestDimensions:
    def test_symbol_decomposition(self):
        protocol = SingleHashHeavyHitters(domain_size=1 << 20, epsilon=1.0,
                                          symbol_bits=4)
        assert protocol.alphabet_size == 16
        assert protocol.num_symbols == 5

    def test_repetitions_track_beta(self):
        lenient = SingleHashHeavyHitters(1 << 16, 1.0, beta=0.25)
        strict = SingleHashHeavyHitters(1 << 16, 1.0, beta=1e-4)
        assert strict.repetitions_for_beta() > lenient.repetitions_for_beta()

    def test_explicit_repetitions_override(self):
        protocol = SingleHashHeavyHitters(1 << 16, 1.0, beta=1e-6, num_repetitions=2)
        assert protocol.repetitions_for_beta() == 2


class TestExecution:
    @pytest.fixture(scope="class")
    def executed(self):
        workload = planted_workload(num_users=30_000, domain_size=1 << 16,
                                    heavy_fractions=[0.3, 0.2],
                                    heavy_elements=[4242, 31337], rng=5)
        protocol = SingleHashHeavyHitters(domain_size=1 << 16, epsilon=2.0,
                                          beta=0.2, symbol_bits=4)
        result = protocol.run(workload.values, rng=6)
        return workload, protocol, result

    def test_recovers_planted_heavy_hitters(self, executed):
        workload, _, result = executed
        for element in workload.heavy_elements:
            assert element in result.estimates

    def test_estimates_reasonable(self, executed):
        workload, _, result = executed
        for element, frequency in workload.as_dict().items():
            assert abs(result.estimates[element] - frequency) < 0.5 * frequency

    def test_metadata(self, executed):
        _, protocol, result = executed
        assert result.metadata["repetitions"] == protocol.repetitions_for_beta()
        assert result.metadata["num_symbols"] == protocol.num_symbols
        assert result.protocol == "single_hash_bnst"

    def test_resources_tracked(self, executed):
        _, _, result = executed
        assert result.meter.communication_bits > 0
        assert result.meter.public_randomness_bits > 0
        assert result.meter.server_memory_items > 0

    def test_candidate_count_bounded_by_hash_range(self, executed):
        _, protocol, result = executed
        repetitions = result.metadata["repetitions"]
        hash_range = result.metadata["hash_range"]
        assert len(result.candidates) <= repetitions * hash_range


class TestBetaDependence:
    def test_more_repetitions_split_budget_further(self):
        """The structural weakness the paper fixes: smaller beta means more
        repetitions, so each repetition sees fewer users."""
        workload = planted_workload(num_users=20_000, domain_size=1 << 16,
                                    heavy_fractions=[0.35],
                                    heavy_elements=[777], rng=8)
        lenient = SingleHashHeavyHitters(1 << 16, 2.0, num_repetitions=1)
        strict = SingleHashHeavyHitters(1 << 16, 2.0, num_repetitions=6)
        lenient_result = lenient.run(workload.values, rng=9)
        strict_result = strict.run(workload.values, rng=9)
        # With 6x the repetitions each (repetition, coordinate) group holds 6x
        # fewer users, so the per-group noise floor is higher relative to signal.
        assert strict_result.metadata["repetitions"] == 6
        assert lenient_result.metadata["repetitions"] == 1
        # Both should still find a 35% heavy hitter.
        assert 777 in lenient_result.estimates
