"""Tests for the approximate composed randomized response (Theorem 5.1)."""

import math

import numpy as np
import pytest

from repro.structure.composed_rr import ApproximateComposedRandomizedResponse


class TestConstruction:
    def test_composed_epsilon_formula(self):
        m = ApproximateComposedRandomizedResponse(num_bits=25, epsilon=0.1, beta=0.05)
        expected = 6 * 0.1 * math.sqrt(25 * math.log(1 / 0.05))
        assert m.composed_epsilon == pytest.approx(expected)
        assert m.epsilon == pytest.approx(expected)

    def test_shell_is_centred_on_expected_distance(self):
        k, eps, beta = 32, 0.2, 0.05
        m = ApproximateComposedRandomizedResponse(k, eps, beta)
        low, high = m.shell_bounds
        center = k / (math.exp(eps) + 1)
        half = math.sqrt(k * math.log(2 / beta) / 2)
        assert low == pytest.approx(center - half)
        assert high == pytest.approx(center + half)

    def test_theorem_conditions_checker(self):
        # Tiny epsilon and a large k with moderate beta violate beta's cap or
        # eps_tilde <= 1; the checker just needs to be consistent.
        m = ApproximateComposedRandomizedResponse(16, 0.05, 0.05)
        assert isinstance(m.theorem_conditions_hold(), bool)

    def test_validation(self):
        with pytest.raises(ValueError):
            ApproximateComposedRandomizedResponse(0, 0.1, 0.05)
        with pytest.raises(ValueError):
            ApproximateComposedRandomizedResponse(4, 0.0, 0.05)
        with pytest.raises(ValueError):
            ApproximateComposedRandomizedResponse(4, 0.1, 0.0)


class TestDistribution:
    def test_probabilities_sum_to_one_small_k(self):
        m = ApproximateComposedRandomizedResponse(num_bits=8, epsilon=0.2, beta=0.1)
        x = tuple([0] * 8)
        total = sum(m.prob(x, report) for report in m.report_space())
        assert total == pytest.approx(1.0)

    def test_accuracy_conditioned_on_good_shell(self, rng):
        """Conditioned on landing in the shell, M~(x) equals M(x) exactly; the
        escape probability is at most beta."""
        m = ApproximateComposedRandomizedResponse(num_bits=64, epsilon=0.1, beta=0.05)
        assert m.escape_probability() <= 0.05 + 1e-12
        assert m.tv_distance_to_composition() <= m.escape_probability() + 1e-12

    def test_tv_distance_small(self):
        m = ApproximateComposedRandomizedResponse(num_bits=32, epsilon=0.1, beta=0.05)
        assert m.tv_distance_to_composition() < 0.05

    def test_samples_match_distance_distribution(self, rng):
        """Empirical Hamming-distance distribution of M~(x) matches Binomial
        (conditioned on the shell, which holds with prob >= 1 - beta)."""
        k, eps, beta = 40, 0.2, 0.05
        m = ApproximateComposedRandomizedResponse(k, eps, beta)
        x = np.zeros(k, dtype=np.int8)
        flip = 1 / (math.exp(eps) + 1)
        distances = [int(m.randomize(x, rng).sum()) for _ in range(2_000)]
        mean = np.mean(distances)
        assert abs(mean - k * flip) < 4 * math.sqrt(k * flip * (1 - flip) / 2_000) + k * beta

    def test_compose_true_flip_rate(self, rng):
        k, eps = 200, 0.5
        m = ApproximateComposedRandomizedResponse(k, eps, 0.05)
        x = np.zeros(k, dtype=np.int8)
        sample = m.compose_true(x, rng)
        flip_rate = sample.mean()
        assert abs(flip_rate - 1 / (math.exp(eps) + 1)) < 0.1


class TestPrivacy:
    @pytest.mark.parametrize("k,eps,beta", [(16, 0.05, 0.05), (32, 0.1, 0.05),
                                            (64, 0.05, 0.01), (8, 0.2, 0.1)])
    def test_worst_case_loss_below_theorem_bound(self, k, eps, beta):
        """The exact worst-case privacy loss (over all input pairs and outputs)
        stays below the Theorem 5.1 guarantee 6 eps sqrt(k ln(1/beta))."""
        m = ApproximateComposedRandomizedResponse(k, eps, beta)
        worst = m.worst_case_privacy_loss()
        assert worst <= m.composed_epsilon + 1e-9

    def test_loss_far_below_basic_composition(self):
        """The whole point of Section 5: the loss is ~sqrt(k) eps, not k eps."""
        k, eps, beta = 64, 0.05, 0.01
        m = ApproximateComposedRandomizedResponse(k, eps, beta)
        assert m.worst_case_privacy_loss() < k * eps / 2

    def test_loss_monotone_in_group_distance(self):
        m = ApproximateComposedRandomizedResponse(16, 0.1, 0.05)
        close = m.worst_case_privacy_loss(group_distance=1)
        far = m.worst_case_privacy_loss(group_distance=16)
        assert close <= far + 1e-12

    def test_exhaustive_privacy_check_small_k(self):
        """For small k, enumerate all reports and verify pure DP at the
        composed epsilon between two specific inputs."""
        k = 6
        m = ApproximateComposedRandomizedResponse(k, 0.15, 0.1)
        x = tuple([0] * k)
        x_prime = tuple([1] * k)
        worst = 0.0
        for report in m.report_space():
            loss = abs(m.log_prob(x, report) - m.log_prob(x_prime, report))
            worst = max(worst, loss)
        assert worst <= m.composed_epsilon + 1e-9
        assert worst == pytest.approx(m.worst_case_privacy_loss(), abs=1e-9)


class TestInterface:
    def test_report_bits(self):
        assert ApproximateComposedRandomizedResponse(12, 0.1, 0.05).report_bits == 12.0

    def test_large_k_has_no_enumerable_space(self):
        assert ApproximateComposedRandomizedResponse(64, 0.1, 0.05).report_space() is None

    def test_rejects_bad_bit_vectors(self, rng):
        m = ApproximateComposedRandomizedResponse(4, 0.1, 0.05)
        with pytest.raises(ValueError):
            m.randomize([0, 1, 2, 0], rng)
        with pytest.raises(ValueError):
            m.randomize([0, 1], rng)
