"""Tests for the Hashtogram frequency oracle (Theorem 3.7)."""

import numpy as np
import pytest

from repro.frequency.hashtogram import HashtogramOracle


class TestHashtogram:
    def test_heavy_element_estimated_accurately(self, rng):
        domain = 1 << 20
        n = 20_000
        values = rng.integers(0, domain, size=n)
        values[:5_000] = 777_777
        oracle = HashtogramOracle(domain, epsilon=1.0)
        oracle.collect(values, rng)
        estimate = oracle.estimate(777_777)
        assert abs(estimate - 5_000) < oracle.expected_error(beta=0.001)

    def test_absent_element_estimated_near_zero(self, rng):
        domain = 1 << 20
        values = rng.integers(0, domain // 2, size=10_000)
        oracle = HashtogramOracle(domain, epsilon=1.0)
        oracle.collect(values, rng)
        estimate = oracle.estimate(domain - 1)
        assert abs(estimate) < oracle.expected_error(beta=0.001)

    def test_estimate_many_matches_scalar(self, rng):
        domain = 1 << 16
        oracle = HashtogramOracle(domain, epsilon=1.0)
        oracle.collect(rng.integers(0, domain, 5_000), rng)
        queries = [0, 17, 999, domain - 1]
        batch = oracle.estimate_many(queries)
        for q, value in zip(queries, batch, strict=True):
            assert value == pytest.approx(oracle.estimate(q))

    def test_estimate_many_empty(self, rng):
        oracle = HashtogramOracle(1 << 16, epsilon=1.0)
        oracle.collect(rng.integers(0, 1 << 16, 1_000), rng)
        assert oracle.estimate_many([]).size == 0

    def test_server_memory_is_sublinear_in_domain(self, rng):
        domain = 1 << 20
        n = 10_000
        oracle = HashtogramOracle(domain, epsilon=1.0)
        oracle.collect(rng.integers(0, domain, n), rng)
        # O~(sqrt(n)) buckets per repetition, far below the domain size.
        assert oracle.server_state_size < domain / 100
        assert oracle.server_state_size >= oracle.num_repetitions

    def test_default_bucket_count_scales_with_sqrt_n(self, rng):
        oracle = HashtogramOracle(1 << 20, epsilon=1.0)
        oracle.collect(rng.integers(0, 1 << 20, 10_000), rng)
        assert 50 <= oracle.num_buckets <= 200

    def test_explicit_bucket_count_respected(self, rng):
        oracle = HashtogramOracle(1 << 16, epsilon=1.0, num_buckets=64)
        oracle.collect(rng.integers(0, 1 << 16, 2_000), rng)
        assert oracle.num_buckets == 64

    def test_public_randomness_tracked(self, rng):
        oracle = HashtogramOracle(1 << 16, epsilon=1.0, num_repetitions=3)
        oracle.collect(rng.integers(0, 1 << 16, 1_000), rng)
        assert oracle.public_randomness_bits > 0

    def test_requires_collection(self):
        oracle = HashtogramOracle(1 << 10, epsilon=1.0)
        with pytest.raises(RuntimeError):
            oracle.estimate(0)

    def test_rejects_out_of_domain(self, rng):
        oracle = HashtogramOracle(100, epsilon=1.0)
        with pytest.raises(ValueError):
            oracle.collect(np.array([100]), rng)
        oracle.collect(rng.integers(0, 100, 500), rng)
        with pytest.raises(ValueError):
            oracle.estimate(100)

    def test_error_grows_with_smaller_epsilon(self):
        domain = 1 << 16
        base = np.random.default_rng(5)
        values = base.integers(0, domain, size=20_000)
        values[:4_000] = 42
        errors = {}
        for epsilon in (0.25, 2.0):
            oracle = HashtogramOracle(domain, epsilon=epsilon)
            oracle.collect(values, np.random.default_rng(9))
            errors[epsilon] = abs(oracle.estimate(42) - 4_000)
        # Not a strict guarantee per-sample, but with 8x the epsilon the error
        # bound shrinks by 8x; compare against the bounds rather than samples.
        low_bound = HashtogramOracle(domain, 0.25)
        high_bound = HashtogramOracle(domain, 2.0)
        low_bound.collect(values, np.random.default_rng(1))
        high_bound.collect(values, np.random.default_rng(1))
        assert high_bound.expected_error(0.05) < low_bound.expected_error(0.05)

    def test_more_repetitions_increase_public_randomness(self, rng):
        few = HashtogramOracle(1 << 16, 1.0, num_repetitions=2)
        many = HashtogramOracle(1 << 16, 1.0, num_repetitions=8)
        values = rng.integers(0, 1 << 16, 2_000)
        few.collect(values, np.random.default_rng(0))
        many.collect(values, np.random.default_rng(0))
        assert many.public_randomness_bits > few.public_randomness_bits

    def test_unbiasedness_over_repetitions(self):
        """The Hashtogram estimator is unbiased: averaging over runs converges."""
        domain = 1 << 14
        base = np.random.default_rng(2)
        values = base.integers(0, domain, size=3_000)
        values[:600] = 1234
        estimates = []
        for seed in range(30):
            oracle = HashtogramOracle(domain, epsilon=1.0, num_repetitions=3)
            oracle.collect(values, np.random.default_rng(seed))
            estimates.append(oracle.estimate(1234))
        mean = float(np.mean(estimates))
        stderr = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean - 600) < 4 * stderr + 5
