"""Tests for ProtocolParameters derivation."""

import math

import pytest

from repro.core.params import ProtocolParameters


class TestDerivation:
    def test_basic_derivation(self):
        params = ProtocolParameters.derive(50_000, 1 << 20, epsilon=1.0, beta=0.05)
        assert params.num_users == 50_000
        assert params.domain_size == 1 << 20
        assert 6 <= params.num_coordinates <= 16
        assert params.num_buckets >= 2
        assert params.hash_range in (16, 32)
        assert params.list_size >= 8
        assert params.epsilon_per_stage == pytest.approx(0.5)

    def test_overrides(self):
        params = ProtocolParameters.derive(10_000, 1 << 16, 1.0, 0.05,
                                           num_coordinates=8, hash_range=32,
                                           threshold_std=3.0)
        assert params.num_coordinates == 8
        assert params.hash_range == 32
        assert params.threshold_std == 3.0

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError):
            ProtocolParameters.derive(10_000, 1 << 16, 1.0, 0.05, bogus=1)

    def test_notes_record_paper_formulas(self):
        params = ProtocolParameters.derive(10_000, 1 << 20, 1.0, 0.05)
        assert "paper_num_coordinates" in params.notes
        assert "paper_num_buckets" in params.notes

    def test_buckets_grow_with_users(self):
        small = ProtocolParameters.derive(1_000, 1 << 20, 1.0, 0.05)
        large = ProtocolParameters.derive(4_000_000, 1 << 20, 1.0, 0.05)
        assert large.num_buckets >= small.num_buckets

    def test_coordinates_grow_with_domain(self):
        small = ProtocolParameters.derive(10_000, 1 << 12, 1.0, 0.05)
        large = ProtocolParameters.derive(10_000, 1 << 30, 1.0, 0.05)
        assert large.num_coordinates >= small.num_coordinates


class TestValidation:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ProtocolParameters.derive(0, 1 << 16, 1.0, 0.05)
        with pytest.raises(ValueError):
            ProtocolParameters.derive(100, 1 << 16, -1.0, 0.05)
        with pytest.raises(ValueError):
            ProtocolParameters.derive(100, 1 << 16, 1.0, 0.0)
        with pytest.raises(ValueError):
            ProtocolParameters.derive(100, 1 << 16, 1.0, 0.05, code_rate=0.0)
        with pytest.raises(ValueError):
            ProtocolParameters.derive(100, 1 << 16, 1.0, 0.05, alpha=1.0)

    def test_direct_construction_validates(self):
        with pytest.raises(ValueError):
            ProtocolParameters(domain_size=10, num_users=10, epsilon=1.0, beta=0.05,
                               num_coordinates=0, num_buckets=2, hash_range=4,
                               list_size=4)


class TestDerivedQuantities:
    def test_detection_threshold_formula(self):
        params = ProtocolParameters.derive(40_000, 1 << 20, 2.0, 0.05)
        log_domain = math.log2(1 << 20)
        expected = (math.log2(log_domain) / 2.0) * math.sqrt(40_000 / log_domain)
        assert params.detection_threshold() == pytest.approx(expected)

    def test_theoretical_error_formula(self):
        params = ProtocolParameters.derive(40_000, 1 << 20, 2.0, 0.05)
        expected = 0.5 * math.sqrt(40_000 * math.log((1 << 20) / 0.05))
        assert params.theoretical_error() == pytest.approx(expected)

    def test_num_components(self):
        params = ProtocolParameters.derive(10_000, 1 << 16, 1.0, 0.05,
                                           expander_degree=4)
        assert params.num_components == 5

    def test_describe_is_flat(self):
        params = ProtocolParameters.derive(10_000, 1 << 16, 1.0, 0.05)
        described = params.describe()
        assert described["num_coordinates"] == params.num_coordinates
        assert all(isinstance(v, (int, float)) for v in described.values())
