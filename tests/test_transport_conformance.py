"""Backend-agnostic conformance suite for :mod:`repro.transport`.

Every registered backend must honor the same frame-level contract —
byte-identical round trips, streaming frames larger than any internal
buffer, builtin :class:`TimeoutError` on a passed deadline, ``None`` (and
an empty-partial :class:`asyncio.IncompleteReadError`) on a clean peer
close, exact seq-stamped redelivery dedup through a real server, and full
cluster bit-identity against the offline engine.

Adding a backend to the matrix = registering one :class:`BackendCase`
row in ``CASES`` below; every test in this file then runs against it
unchanged.  The rows encode only what genuinely differs per backend: how
to mint a fresh bind address, which dial options shrink its internal
buffers (to force wrap-around), and how to start an
:class:`~repro.server.service.AggregationServer` on it.
"""

import asyncio
import contextlib
import itertools
import json
import os
import struct
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict

import numpy as np
import pytest

from repro import transport
from repro.cluster import ClusterRouter, ClusterSupervisor
from repro.engine import encode_stream, run_simulation
from repro.protocol import HashtogramParams
from repro.server import AggregationClient, AggregationServer, FrameError
from repro.server.framing import (
    MAX_FRAME_BYTES,
    encode_reports_frame,
    frame_bytes,
    read_frame_payload,
)

_SEQ = itertools.count()


def _fresh(tag: str) -> str:
    """A collision-proof shm segment name for one test."""
    return f"conf-{tag}-{os.getpid()}-{next(_SEQ)}"


async def _start_tcp(server: AggregationServer) -> str:
    host, port = await server.start()
    return f"tcp://{host}:{port}"


async def _start_shm(server: AggregationServer) -> str:
    name = _fresh("serve")
    await server.start(transport="shm", shm_name=name)
    return f"shm://{name}"


@dataclass(frozen=True)
class BackendCase:
    """Everything the suite needs to know about one backend."""

    name: str
    #: mint a fresh serve address (``listener.address`` is the dial address)
    bind: Callable[[], str]
    #: start an AggregationServer on this backend; returns its dial address
    start_server: Callable[..., Any]
    #: dial options that shrink internal buffers far below one test frame
    small_buffers: Dict[str, Any] = field(default_factory=dict)


CASES = [
    BackendCase(name="tcp",
                bind=lambda: "tcp://127.0.0.1:0",
                start_server=_start_tcp),
    BackendCase(name="shm",
                bind=lambda: f"shm://{_fresh('bind')}",
                start_server=_start_shm,
                small_buffers={"ring_bytes": 1 << 16}),
]


@pytest.fixture(params=CASES, ids=lambda case: case.name)
def case(request):
    return request.param


def _params():
    return HashtogramParams.create(1 << 10, 1.0, num_buckets=16, rng=0)


def _batch(params, seed=3, n=400):
    gen = np.random.default_rng(seed)
    values = gen.integers(0, params.domain_size, size=n)
    return params.make_encoder().encode_batch(values, gen)


@contextlib.asynccontextmanager
async def _echo_listener(case, **dial_options):
    """An echo peer plus one dialed connection to it."""

    async def echo(reader, writer):
        try:
            while True:
                payload = await read_frame_payload(reader)
                if payload is None:
                    break
                writer.write(frame_bytes(payload))
                await writer.drain()
        except (OSError, FrameError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    listener = await transport.serve(echo, case.bind())
    conn = await transport.dial(listener.address, timeout=10.0,
                                **dial_options)
    try:
        yield conn
    finally:
        conn.close()
        await conn.wait_closed()
        listener.close()
        await listener.wait_closed()


@contextlib.asynccontextmanager
async def _serving(case, params, **server_kwargs):
    """A real AggregationServer on this backend; yields its dial address."""
    server = AggregationServer(params, **server_kwargs)
    address = await case.start_server(server)
    try:
        yield address
    finally:
        await server.stop()


# --------------------------------------------------------------------------------------
# frame contract: round trips, buffers, deadlines, EOF
# --------------------------------------------------------------------------------------

class TestFrameContract:
    def test_round_trip_is_byte_identical(self, case):
        gen = np.random.default_rng(0)
        payloads = [b"{}", b'{"type":"hello"}',
                    bytes([0xB1]) + gen.bytes(1),
                    bytes([0xB1]) + gen.bytes(257),
                    bytes([0xB1]) + gen.bytes(1 << 16)]

        async def main():
            async with _echo_listener(case) as conn:
                for payload in payloads:
                    await conn.send(payload, timeout=10.0)
                    echoed = await conn.recv(timeout=10.0)
                    assert echoed == payload
                    assert isinstance(echoed, bytes)

        asyncio.run(main())

    def test_frames_larger_than_internal_buffers_stream_through(self, case):
        """One frame far bigger than the backend's buffer must stream.

        With ``small_buffers`` the shm ring is 64 KiB, so a 1 MiB frame
        can never fit at once — it must flow incrementally while the
        peer drains, and come back byte-identical.
        """
        gen = np.random.default_rng(1)
        big = bytes([0xB1]) + gen.bytes(1 << 20)

        async def main():
            async with _echo_listener(case, **case.small_buffers) as conn:
                for _ in range(3):  # thrice: wraps the ring many times over
                    await conn.send(big, timeout=30.0)
                    assert await conn.recv(timeout=30.0) == big

        asyncio.run(main())

    def test_oversized_announced_frame_raises_frame_error(self, case):
        bogus_header = struct.pack("!I", MAX_FRAME_BYTES + 1)

        async def liar(reader, writer):
            writer.write(bogus_header)
            try:
                await writer.drain()
            except OSError:
                pass

        async def main():
            listener = await transport.serve(liar, case.bind())
            conn = await transport.dial(listener.address, timeout=10.0)
            try:
                with pytest.raises(FrameError, match="exceeds"):
                    await conn.recv(timeout=10.0)
            finally:
                conn.close()
                await conn.wait_closed()
                listener.close()
                await listener.wait_closed()

        asyncio.run(main())

    def test_recv_deadline_raises_builtin_timeout(self, case):
        async def mute(reader, writer):
            # never answer; hold the link open until the peer gives up
            try:
                await read_frame_payload(reader)
            except (OSError, asyncio.IncompleteReadError):
                pass
            finally:
                writer.close()

        async def main():
            listener = await transport.serve(mute, case.bind())
            conn = await transport.dial(listener.address, timeout=10.0)
            try:
                with pytest.raises(TimeoutError) as excinfo:
                    await conn.recv(timeout=0.2)
                # the builtin, on every Python version — not asyncio's alias
                assert type(excinfo.value) is TimeoutError
            finally:
                conn.close()
                await conn.wait_closed()
                listener.close()
                await listener.wait_closed()

        asyncio.run(main())

    def test_peer_close_is_clean_eof(self, case):
        async def slam(reader, writer):
            writer.close()

        async def main():
            listener = await transport.serve(slam, case.bind())
            conn = await transport.dial(listener.address, timeout=10.0)
            try:
                assert await conn.recv(timeout=10.0) is None
                # the duck-typed reader contract under the frame layer: a
                # between-frames close is IncompleteReadError(partial=b"")
                with pytest.raises(asyncio.IncompleteReadError) as excinfo:
                    await conn.reader.readexactly(4)
                assert excinfo.value.partial == b""
            finally:
                conn.close()
                await conn.wait_closed()
                listener.close()
                await listener.wait_closed()

        asyncio.run(main())

    def test_dialing_nothing_raises_connection_error(self, case):
        address = ("tcp://127.0.0.1:1" if case.name == "tcp"
                   else f"shm://{_fresh('ghost')}")

        async def main():
            with pytest.raises(OSError):
                await transport.dial(address, timeout=5.0)

        asyncio.run(main())


# --------------------------------------------------------------------------------------
# registry API (backend-independent)
# --------------------------------------------------------------------------------------

class TestRegistry:
    def test_both_builtin_backends_are_registered(self):
        assert set(transport.backend_names()) >= {"tcp", "shm"}

    def test_duplicate_registration_rejected(self):
        existing = transport.get_backend("tcp")
        with pytest.raises(ValueError, match="already registered"):
            transport.register_backend(existing)

    def test_address_parsing(self):
        assert transport.parse_address("tcp://h:1") == ("tcp", "h:1")
        assert transport.parse_address("shm://ring") == ("shm", "ring")
        for bad in ("h:1", "tcp://", "://x", "smoke-signal://x"):
            with pytest.raises(ValueError):
                transport.parse_address(bad)
        assert transport.format_address("shm", "ring") == "shm://ring"


# --------------------------------------------------------------------------------------
# through a real server: dedup, half-duplex interleave
# --------------------------------------------------------------------------------------

class TestServerContract:
    def test_seq_stamped_redelivery_dedups_exactly(self, case):
        """§7.1 redelivery: the same seq-stamped frame lands exactly once."""
        params = _params()
        batch = _batch(params)
        frame = encode_reports_frame(batch, wire_format="binary", seq=7)

        async def main():
            async with _serving(case, params) as address:
                conn = await transport.dial(address, timeout=10.0)
                try:
                    conn.writer.write(frame)
                    conn.writer.write(frame)  # verbatim journal redelivery
                    await conn.writer.drain()
                    await conn.send(b'{"type": "sync"}', timeout=10.0)
                    synced = json.loads(await conn.recv(timeout=10.0))
                    await conn.send(b'{"type": "health"}', timeout=10.0)
                    health = json.loads(await conn.recv(timeout=10.0))
                finally:
                    conn.close()
                    await conn.wait_closed()
                assert synced["num_reports"] == len(batch)
                assert health["num_reports"] == len(batch)
                assert health["max_seq"] == 7

        asyncio.run(main())

    def test_half_duplex_interleave_on_one_link(self, case):
        """Regression: queries must not corrupt in-flight ingest.

        One link carries fire-and-forget ``reports`` writes from one task
        while another task runs request/reply ``query``/``health`` on the
        very same connection — replies must stay well-formed and every
        report must land.
        """
        from repro.server import AsyncAggregationClient

        params = _params()
        batch = _batch(params, n=200)
        rounds = 12
        queries = list(range(16))
        expected_total = rounds * len(batch)

        async def main():
            async with _serving(case, params) as address:
                client = await AsyncAggregationClient.dial(
                    address, wire_format="binary", timeout=15.0)
                replies = []

                async def ingest():
                    for _ in range(rounds):
                        await client.send_batch(batch)
                        await asyncio.sleep(0)

                async def probe():
                    for _ in range(4):
                        replies.append(await client.query(queries))
                        health = await client.health()
                        assert health["status"] == "ok"

                try:
                    await asyncio.gather(ingest(), probe())
                    absorbed = await client.sync()
                    final = await client.query(queries)
                finally:
                    await client.close()
                assert absorbed == expected_total
                for served in replies:
                    assert served.shape == (len(queries),)
                return final

        final = asyncio.run(main())
        offline = _params().make_aggregator()
        for _ in range(rounds):
            offline.absorb_batch(batch)
        assert np.array_equal(
            final, offline.finalize().estimate_many(queries))


# --------------------------------------------------------------------------------------
# end-to-end: a sharded cluster on each transport vs the offline engine
# --------------------------------------------------------------------------------------

@contextlib.contextmanager
def _running_cluster(params, num_shards, base_dir, transport_name):
    supervisor = ClusterSupervisor(params, num_shards, base_dir,
                                   transport=transport_name)
    supervisor.start()
    router = ClusterRouter(params, supervisor=supervisor, rng=0,
                           transport=transport_name)
    started = threading.Event()
    address = {}

    def run() -> None:
        async def main() -> None:
            address["hp"] = await router.start("127.0.0.1", 0)
            started.set()
            await router.serve_until_stopped()
        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        assert started.wait(30), "cluster router failed to start"
        host, port = address["hp"]
        yield host, port
        try:
            with AggregationClient(host, port) as client:
                client.shutdown()
        except OSError:
            pass
        thread.join(30)
    finally:
        supervisor.stop()


@pytest.mark.cluster
class TestClusterBitIdentity:
    def test_cluster_matches_offline_engine_on_every_backend(self, case,
                                                             tmp_path):
        params = _params()
        gen = np.random.default_rng(3)
        values = gen.integers(0, params.domain_size, size=600)
        plan_seed = 7
        offline = run_simulation(params, values,
                                 rng=np.random.default_rng(plan_seed),
                                 chunk_size=128).finalize()
        batches = list(encode_stream(params, values,
                                     rng=np.random.default_rng(plan_seed),
                                     chunk_size=128))
        routes, start = [], 0
        for batch in batches:
            routes.append(start)
            start += len(batch)
        queries = [int(x) for x in
                   np.random.default_rng(1).integers(
                       0, params.domain_size, size=32)]
        with _running_cluster(params, 2, tmp_path,
                              case.name) as (host, port):
            with AggregationClient(host, port) as client:
                assert client.hello() == params
                for batch, route in zip(batches, routes, strict=True):
                    client.send_batch(batch, route=route)
                assert client.sync() == len(values)
                served = client.query(queries)
        expected = offline.estimate_many(queries)
        assert np.array_equal(served, expected), case.name
