"""Tests for the private range-count / quantile application."""

import numpy as np
import pytest

from repro.applications.quantiles import (
    HierarchicalRangeOracle,
    PrivateQuantileEstimator,
)


def gaussian_values(rng, n=40_000, domain=1024, mean=600, std=80):
    values = np.clip(rng.normal(mean, std, size=n), 0, domain - 1)
    return values.astype(np.int64)


class TestHierarchicalRangeOracle:
    def test_range_counts_accurate(self, rng):
        domain = 1024
        values = gaussian_values(rng, domain=domain)
        oracle = HierarchicalRangeOracle(domain, epsilon=2.0)
        oracle.collect(values, rng)
        bound = oracle.expected_range_error(beta=0.01)
        for lo, hi in [(0, 512), (512, 1024), (500, 700), (0, 1024)]:
            true = int(np.count_nonzero((values >= lo) & (values < hi)))
            assert abs(oracle.range_count(lo, hi) - true) < max(bound, 1_500)

    def test_prefix_counts_monotone_in_expectation(self, rng):
        domain = 256
        values = rng.integers(0, domain, size=20_000)
        oracle = HierarchicalRangeOracle(domain, epsilon=2.0)
        oracle.collect(values, rng)
        quarter = oracle.prefix_count(64)
        full = oracle.prefix_count(256)
        assert full > quarter
        assert abs(full - 20_000) < 6_000

    def test_empty_range_is_zero(self, rng):
        oracle = HierarchicalRangeOracle(64, epsilon=1.0)
        oracle.collect(rng.integers(0, 64, 1_000), rng)
        assert oracle.range_count(10, 10) == 0.0
        assert oracle.range_count(20, 10) == 0.0

    def test_histogram_at_resolution(self, rng):
        domain = 64
        values = rng.integers(0, domain, size=5_000)
        oracle = HierarchicalRangeOracle(domain, epsilon=2.0)
        oracle.collect(values, rng)
        top_level = oracle.num_levels - 1
        coarse = oracle.histogram_at_resolution(top_level)
        assert coarse.shape == (1,)
        finest = oracle.histogram_at_resolution(0)
        assert finest.shape[0] == 64 // oracle.finest_resolution
        with pytest.raises(ValueError):
            oracle.histogram_at_resolution(oracle.num_levels)

    def test_max_levels_cap(self, rng):
        oracle = HierarchicalRangeOracle(1024, epsilon=1.0, max_levels=4)
        assert oracle.num_levels == 4
        oracle.collect(rng.integers(0, 1024, 2_000), rng)
        assert oracle.finest_resolution > 1

    def test_validation(self, rng):
        oracle = HierarchicalRangeOracle(64, epsilon=1.0)
        with pytest.raises(RuntimeError):
            oracle.range_count(0, 10)
        with pytest.raises(ValueError):
            oracle.collect(np.array([]), rng)
        with pytest.raises(ValueError):
            oracle.collect(np.array([64]), rng)
        with pytest.raises(ValueError):
            HierarchicalRangeOracle(0, 1.0)


class TestPrivateQuantileEstimator:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(3)
        values = gaussian_values(rng, n=40_000, domain=1024, mean=600, std=80)
        estimator = PrivateQuantileEstimator(domain_size=1024, epsilon=2.0)
        estimator.collect(values, rng=4)
        return values, estimator

    def test_median_close_to_truth(self, fitted):
        values, estimator = fitted
        true_median = float(np.median(values))
        assert abs(estimator.median() - true_median) < 60

    def test_rank_error_small(self, fitted):
        values, estimator = fitted
        # Rank error within a few percent of n for the quartiles.
        for q in (0.25, 0.5, 0.75):
            assert estimator.rank_error(values, q) < 0.06 * values.size

    def test_quantiles_are_monotone(self, fitted):
        _, estimator = fitted
        results = estimator.quantiles([0.1, 0.25, 0.5, 0.75, 0.9])
        ordered = [results[q] for q in sorted(results)]
        assert ordered == sorted(ordered)

    def test_extreme_quantiles_within_domain(self, fitted):
        _, estimator = fitted
        assert 0 <= estimator.quantile(0.01) < estimator.domain_size
        assert 0 <= estimator.quantile(0.99) < estimator.domain_size

    def test_invalid_quantile_rejected(self, fitted):
        _, estimator = fitted
        with pytest.raises(ValueError):
            estimator.quantile(0.0)
        with pytest.raises(ValueError):
            estimator.quantile(1.0)

    def test_skewed_distribution(self):
        rng = np.random.default_rng(8)
        values = np.minimum(rng.exponential(60, size=30_000), 1023).astype(np.int64)
        estimator = PrivateQuantileEstimator(domain_size=1024, epsilon=2.0)
        estimator.collect(values, rng=9)
        true_median = float(np.median(values))
        assert abs(estimator.median() - true_median) < 60
