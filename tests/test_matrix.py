"""Matrix harness tests: config parsing, expansion, seeds, caching, CLI.

The execution tests stay on the engine path (``shards: [0]``) with tiny
cells so they run in tier-1 time; the live serving path is exercised by
the `matrix-smoke` CI step (and shares all its plumbing with the
load-test path covered in test_cluster/test_server).
"""

from __future__ import annotations

import textwrap

import pytest

yaml = pytest.importorskip("yaml")

from repro.experiments.matrix import (  # noqa: E402 - after importorskip
    AXES,
    ConfigError,
    derive_cell_seed,
    expand_cells,
    load_config,
    run_matrix,
)
from repro.experiments.matrix.render import (  # noqa: E402
    render_accuracy_csv,
    render_serving_md,
)


def write_config(tmp_path, body: str, name: str = "cfg.yaml"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return path


SMALL = """
    name: small
    kind: serving
    description: tiny engine-only matrix for tests
    seed: 7
    matrix:
      protocol: [hashtogram, explicit]
      epsilon: [1.0]
      domain_size: [256]
      users: [400]
      workers: [1, 2]
      shards: [0]
    quick:
      protocol: [hashtogram]
      workers: [2]
"""


# ---------------------------------------------------------------------------
# parsing and validation
# ---------------------------------------------------------------------------

def test_load_applies_axis_defaults(tmp_path):
    config = load_config(write_config(tmp_path, """
        name: defaults
        kind: serving
        matrix:
          protocol: [cms]
    """))
    for axis, (_, default) in AXES.items():
        if axis != "protocol":
            assert config.matrix[axis] == default
    assert config.matrix["protocol"] == ("cms",)
    assert config.seed == 0 and config.committed and config.queries == 32


def test_invalid_axis_value_rejected(tmp_path):
    with pytest.raises(ConfigError, match="matrix.protocol"):
        load_config(write_config(tmp_path, """
            matrix:
              protocol: [hashtogram, bogus]
        """))
    with pytest.raises(ConfigError, match="matrix.workers"):
        load_config(write_config(tmp_path, """
            matrix:
              workers: [0]
        """))
    with pytest.raises(ConfigError, match="matrix.epsilon"):
        load_config(write_config(tmp_path, """
            matrix:
              epsilon: [-1.0]
        """))


def test_unknown_axis_rejected(tmp_path):
    with pytest.raises(ConfigError, match="unknown axes.*beta"):
        load_config(write_config(tmp_path, """
            matrix:
              beta: [0.05]
        """))


def test_duplicate_axis_values_rejected(tmp_path):
    with pytest.raises(ConfigError, match="duplicate"):
        load_config(write_config(tmp_path, """
            matrix:
              epsilon: [1.0, 1.0]
        """))


def test_cartesian_product_guard(tmp_path):
    path = write_config(tmp_path, """
        matrix:
          epsilon: [1.0, 2.0, 3.0]
          domain_size: [64, 128]
        max_cells: 5
    """)
    with pytest.raises(ConfigError, match="expands to 6 cells"):
        load_config(path)


def test_max_cells_ceiling_is_hard(tmp_path):
    with pytest.raises(ConfigError, match="hard ceiling"):
        load_config(write_config(tmp_path, """
            matrix:
              epsilon: [1.0]
            max_cells: 100000
        """))


def test_quick_slice_must_narrow(tmp_path):
    with pytest.raises(ConfigError, match="only narrows"):
        load_config(write_config(tmp_path, """
            matrix:
              protocol: [hashtogram]
            quick:
              protocol: [explicit]
        """))


def test_unknown_top_level_key_rejected(tmp_path):
    with pytest.raises(ConfigError, match="unknown top-level keys"):
        load_config(write_config(tmp_path, """
            matrix:
              epsilon: [1.0]
            cells: 4
        """))


def test_paper_config_section_validation(tmp_path):
    with pytest.raises(ConfigError, match="sections"):
        load_config(write_config(tmp_path, """
            kind: paper
        """))
    with pytest.raises(ConfigError, match="commentary"):
        load_config(write_config(tmp_path, """
            kind: paper
            sections:
              - experiment: table1
                title: T1
        """))
    with pytest.raises(ConfigError, match="duplicate experiments"):
        load_config(write_config(tmp_path, """
            kind: paper
            sections:
              - {experiment: table1, title: a, commentary: c}
              - {experiment: table1, title: b, commentary: c}
        """))


def test_paper_render_rejects_unknown_experiment(tmp_path):
    from repro.experiments.matrix.paper import render_paper_md
    config = load_config(write_config(tmp_path, """
        kind: paper
        sections:
          - {experiment: no-such-driver, title: T, commentary: c}
    """))
    with pytest.raises(ConfigError, match="unknown experiment"):
        render_paper_md(config, quick=True)


# ---------------------------------------------------------------------------
# expansion, quick slices, seeds
# ---------------------------------------------------------------------------

def test_expansion_order_and_quick_slice(tmp_path):
    config = load_config(write_config(tmp_path, SMALL))
    cells = expand_cells(config)
    assert len(cells) == 4
    # canonical order: protocol varies slower than workers
    assert [(c.protocol, c.workers) for c in cells] == [
        ("hashtogram", 1), ("hashtogram", 2),
        ("explicit", 1), ("explicit", 2)]
    assert [c.index for c in cells] == [0, 1, 2, 3]
    quick = expand_cells(config, quick=True)
    assert [(c.protocol, c.workers) for c in quick] == [("hashtogram", 2)]


def test_cell_seeds_are_distinct_stable_and_slice_independent(tmp_path):
    config = load_config(write_config(tmp_path, SMALL))
    cells = expand_cells(config)
    seeds = [c.seed for c in cells]
    assert len(set(seeds)) == len(seeds)
    assert seeds == [c.seed for c in expand_cells(config)]
    # the quick slice selects the same cell, not a reseeded one
    (quick_cell,) = expand_cells(config, quick=True)
    assert quick_cell.seed == cells[1].seed
    assert quick_cell.digest() == cells[1].digest()


def test_seed_derivation_ignores_axis_declaration_order():
    axes = {name: default[0] for name, (_, default) in AXES.items()}
    reordered = dict(reversed(list(axes.items())))
    assert derive_cell_seed(3, axes) == derive_cell_seed(3, reordered)
    assert derive_cell_seed(3, axes) != derive_cell_seed(4, axes)
    changed = dict(axes, epsilon=2.0)
    assert derive_cell_seed(3, axes) != derive_cell_seed(3, changed)


def test_repo_configs_parse():
    quick = load_config("experiments/configs/quick.yaml")
    protocols = {c.protocol for c in expand_cells(quick)}
    shards = {c.shards for c in expand_cells(quick)}
    assert len(protocols) >= 3 and 0 in shards and 2 in shards
    # the smoke slice covers both execution paths with few cells
    smoke = expand_cells(quick, quick=True)
    assert len(smoke) <= 4 and {c.shards for c in smoke} == {0, 2}
    assert load_config("experiments/configs/full.yaml").committed is False
    paper = load_config("experiments/configs/paper.yaml")
    assert paper.kind == "paper" and len(paper.sections) >= 12


# ---------------------------------------------------------------------------
# execution, caching, rendering (engine path only: tier-1 speed)
# ---------------------------------------------------------------------------

def test_run_matrix_caches_and_renders_byte_identically(tmp_path):
    config = load_config(write_config(tmp_path, SMALL))
    cache = tmp_path / "cache"
    results = run_matrix(config, cache_dir=cache)
    assert [r.cached for r in results] == [False] * 4
    assert all(r.bit_identical for r in results)
    assert all(r.deterministic["check"] == "engine==serial" for r in results)
    assert all("offline_reports_per_s" in r.timing for r in results)

    again = run_matrix(config, cache_dir=cache)
    assert [r.cached for r in again] == [True] * 4
    assert [r.deterministic for r in again] == [r.deterministic
                                                for r in results]
    assert render_serving_md(config, again) == \
        render_serving_md(config, results)
    assert render_accuracy_csv(again) == render_accuracy_csv(results)

    forced = run_matrix(config, cache_dir=cache, force=True)
    assert [r.cached for r in forced] == [False] * 4
    assert render_accuracy_csv(forced) == render_accuracy_csv(results)


def test_rendered_outputs_carry_no_timing_columns(tmp_path):
    config = load_config(write_config(tmp_path, SMALL))
    results = run_matrix(config, quick=True, cache_dir=tmp_path / "c")
    md = render_serving_md(config, results)
    csv = render_accuracy_csv(results)
    for text in (md, csv):
        assert "reports_per_s" not in text and "ingest" not in text
    assert "| yes |" in md


def test_matrix_cli_run_and_render(tmp_path, capsys):
    from repro.cli import main
    config_path = write_config(tmp_path, SMALL + "    committed: false\n")
    cache = tmp_path / "cache"
    assert main(["matrix", "run", str(config_path), "--quick",
                 "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "all 1 cells BIT-IDENTICAL" in out
    assert (cache / "out" / "small.md").is_file()
    assert (cache / "out" / "small_accuracy.csv").is_file()
    assert (cache / "small_timing.csv").is_file()
    # render reuses the cache: the quick cell is restored, not re-run
    assert main(["matrix", "render", str(config_path), "--quick",
                 "--cache-dir", str(cache)]) == 0
    assert "(cached)" in capsys.readouterr().out


def test_matrix_cli_usage_errors(tmp_path, capsys):
    from repro.cli import main
    assert main(["matrix", "run"]) == 2
    assert main(["matrix", "run", str(tmp_path / "missing.yaml")]) == 2
    capsys.readouterr()
