"""Tests for standard composition and central-model group privacy."""

import math

import pytest

from repro.accounting.composition import (
    advanced_composition,
    basic_composition,
    central_group_privacy,
    composition_crossover,
)


class TestBasicComposition:
    def test_linear_in_k(self):
        assert basic_composition(10, 0.1) == (pytest.approx(1.0), 0.0)
        assert basic_composition(3, 0.5, 1e-6) == (pytest.approx(1.5),
                                                   pytest.approx(3e-6))

    def test_validation(self):
        with pytest.raises(ValueError):
            basic_composition(0, 0.1)
        with pytest.raises(ValueError):
            basic_composition(2, -0.1)
        with pytest.raises(ValueError):
            basic_composition(2, 0.1, delta=2.0)


class TestAdvancedComposition:
    def test_formula(self):
        k, eps, delta_prime = 100, 0.1, 1e-6
        eps_prime, delta_total = advanced_composition(k, eps, 0.0, delta_prime)
        expected = k * eps**2 / 2 + eps * math.sqrt(2 * k * math.log(1 / delta_prime))
        assert eps_prime == pytest.approx(expected)
        assert delta_total == pytest.approx(delta_prime)

    def test_beats_basic_for_large_k(self):
        k, eps = 10_000, 0.01
        adv, _ = advanced_composition(k, eps, 0.0, 1e-9)
        basic, _ = basic_composition(k, eps)
        assert adv < basic

    def test_delta_accumulates(self):
        _, delta_total = advanced_composition(5, 0.1, 1e-8, 1e-6)
        assert delta_total == pytest.approx(5e-8 + 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            advanced_composition(5, 0.1, 0.0, 0.0)


class TestCentralGroupPrivacy:
    def test_pure_case_linear(self):
        assert central_group_privacy(7, 0.2) == (pytest.approx(1.4), 0.0)

    def test_approximate_case_amplifies_delta(self):
        eps_k, delta_k = central_group_privacy(3, 0.5, 1e-9)
        assert eps_k == pytest.approx(1.5)
        assert delta_k == pytest.approx(3 * math.exp(2 * 0.5) * 1e-9)


class TestCrossover:
    def test_crossover_exists_and_is_consistent(self):
        k = composition_crossover(0.1, 1e-6)
        adv_at_k, _ = advanced_composition(k, 0.1, 0.0, 1e-6)
        assert adv_at_k < k * 0.1
        if k > 1:
            adv_before, _ = advanced_composition(k - 1, 0.1, 0.0, 1e-6)
            assert adv_before >= (k - 1) * 0.1
