"""Tests for the crash-safe CRC32-framed journals (:mod:`repro.cluster.journal`).

The contract under test is the write-ahead-log recovery rule the elastic
cluster tier stands on (``docs/wire-protocol.md`` §6.3): replay parses
records in order and **truncates at the first torn header, short payload,
or checksum mismatch — without raising** — because every journal consumer
is idempotent one level up.  Damage shapes are pinned as a committed
corpus under ``tests/data/journal_corpus/`` (torn tails, flipped bytes,
scribbled lengths, duplicated tail records) so recovery behavior can
never drift silently; the unit tests cover the three journal layers built
on that framing: :class:`RecordLog`, :class:`FrameJournal`, and
:class:`MembershipJournal`.
"""

import base64
import json
import struct
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

from repro.cluster.journal import (
    FrameJournal,
    JournalError,
    MembershipJournal,
    RecordLog,
    scan_records,
)

CORPUS_DIR = Path(__file__).parent / "data" / "journal_corpus"
CORPUS = json.loads((CORPUS_DIR / "corpus.json").read_text())
CASES = CORPUS["cases"]
CASE_IDS = [case["name"] for case in CASES]

_HEADER = struct.Struct("<II")


def _record(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


# --------------------------------------------------------------------------------------
# the pinned recovery corpus
# --------------------------------------------------------------------------------------

@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_corpus_scan_verdict(case):
    """Every corpus image replays exactly its pinned payload prefix."""
    raw = base64.b64decode(case["raw_b64"])
    payloads, valid = scan_records(raw)
    assert payloads == [base64.b64decode(p) for p in case["payloads_b64"]]
    assert valid == case["valid_length"]


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_corpus_load_truncates_in_place(case, tmp_path):
    """RecordLog.load on a damaged file truncates it to the valid prefix —
    after which a reload (and any append) sees a clean journal."""
    raw = base64.b64decode(case["raw_b64"])
    path = tmp_path / "journal.bin"
    path.write_bytes(raw)
    log = RecordLog(path, fsync=False)
    expected = [base64.b64decode(p) for p in case["payloads_b64"]]
    assert log.load() == expected
    assert path.stat().st_size == case["valid_length"]
    log.append(b"appended-after-recovery")
    assert log.load() == expected + [b"appended-after-recovery"]
    log.close()


def test_corpus_covers_every_damage_family():
    notes = {case["name"] for case in CASES}
    assert {"clean", "torn-header", "torn-payload", "flipped-payload-byte",
            "duplicated-tail-record", "scribbled-huge-length"} <= notes


@pytest.mark.slow
def test_generator_reproduces_committed_corpus(tmp_path):
    """The committed corpus and its generator may never drift apart."""
    script = CORPUS_DIR / "generate.py"
    copied = tmp_path / "generate.py"
    copied.write_text(script.read_text().replace(
        'OUT = Path(__file__).parent / "corpus.json"',
        f'OUT = Path({str(tmp_path / "corpus.json")!r})'))
    subprocess.run([sys.executable, str(copied)], check=True,
                   cwd=str(CORPUS_DIR.parents[2]))
    regenerated = (tmp_path / "corpus.json").read_bytes()
    assert regenerated == (CORPUS_DIR / "corpus.json").read_bytes()


# --------------------------------------------------------------------------------------
# RecordLog: the shared CRC framing
# --------------------------------------------------------------------------------------

class TestRecordLog:
    def test_append_load_round_trip(self, tmp_path):
        log = RecordLog(tmp_path / "log.bin")
        payloads = [b"first", b"", b"\x00" * 64, b"last"]
        for payload in payloads:
            log.append(payload)
        assert log.load() == payloads
        # load() closes the handle; appending afterwards reopens cleanly
        log.append(b"tail")
        assert log.load() == payloads + [b"tail"]
        log.close()

    def test_missing_file_loads_empty(self, tmp_path):
        assert RecordLog(tmp_path / "absent.bin").load() == []

    def test_clear_drops_everything(self, tmp_path):
        log = RecordLog(tmp_path / "log.bin", fsync=False)
        log.append(b"one")
        log.append(b"two")
        log.clear()
        assert log.load() == []
        assert (tmp_path / "log.bin").stat().st_size == 0
        log.close()

    def test_delete_removes_the_file(self, tmp_path):
        log = RecordLog(tmp_path / "log.bin", fsync=False)
        log.append(b"one")
        log.delete()
        assert not (tmp_path / "log.bin").exists()
        log.delete()  # idempotent

    def test_creates_parent_directories(self, tmp_path):
        log = RecordLog(tmp_path / "deep" / "nested" / "log.bin", fsync=False)
        log.append(b"payload")
        assert log.load() == [b"payload"]
        log.close()

    def test_on_disk_layout_is_the_documented_framing(self, tmp_path):
        log = RecordLog(tmp_path / "log.bin", fsync=False)
        log.append(b"abc")
        log.close()
        raw = (tmp_path / "log.bin").read_bytes()
        assert raw == _HEADER.pack(3, zlib.crc32(b"abc")) + b"abc"

    def test_scan_stops_at_corruption_not_just_tail(self):
        """Damage *behind* a valid suffix still discards the suffix — replay
        must be a prefix, never a subsequence with holes."""
        raw = _record(b"a") + _record(b"b") + _record(b"c")
        mutated = bytearray(raw)
        mutated[len(_record(b"a")) + _HEADER.size] ^= 0x01  # corrupt "b"
        payloads, valid = scan_records(bytes(mutated))
        assert payloads == [b"a"]
        assert valid == len(_record(b"a"))


# --------------------------------------------------------------------------------------
# FrameJournal: the per-shard-link replay mirror
# --------------------------------------------------------------------------------------

class TestFrameJournal:
    def test_round_trip_and_watermark(self, tmp_path):
        journal = FrameJournal(tmp_path / "frames.bin", fsync=False)
        journal.append(b"frame-one", num_reports=100, seq=3)
        journal.append(b"frame-two", num_reports=50, seq=9)
        entries, max_seq = journal.load()
        assert entries == [(b"frame-one", 100), (b"frame-two", 50)]
        assert max_seq == 9
        journal.close()

    def test_barrier_keeps_only_the_watermark(self, tmp_path):
        journal = FrameJournal(tmp_path / "frames.bin", fsync=False)
        journal.append(b"frame", num_reports=10, seq=4)
        journal.barrier(seq=7)
        entries, max_seq = journal.load()
        assert entries == []  # the barrier entry carries no frame bytes
        assert max_seq == 7   # but the next router resumes stamping above 7
        journal.append(b"later", num_reports=5, seq=8)
        entries, max_seq = journal.load()
        assert entries == [(b"later", 5)]
        assert max_seq == 8
        journal.close()

    def test_empty_journal_watermark_is_zero(self, tmp_path):
        assert FrameJournal(tmp_path / "frames.bin").load() == ([], 0)

    def test_short_entry_is_a_typed_error(self, tmp_path):
        # a record that passes its CRC but cannot hold the fixed prefix is
        # semantic corruption, not a torn tail: it must be loud
        RecordLog(tmp_path / "frames.bin", fsync=False).append(b"abc")
        journal = FrameJournal(tmp_path / "frames.bin")
        with pytest.raises(JournalError, match="fixed prefix"):
            journal.load()
        journal.close()

    def test_torn_tail_loses_the_tail_frame_only(self, tmp_path):
        path = tmp_path / "frames.bin"
        journal = FrameJournal(path, fsync=False)
        journal.append(b"kept", num_reports=1, seq=1)
        journal.append(b"torn", num_reports=2, seq=2)
        journal.close()
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size - 3)
        entries, max_seq = journal.load()
        assert entries == [(b"kept", 1)]
        assert max_seq == 1
        journal.close()


# --------------------------------------------------------------------------------------
# MembershipJournal: the transition audit log
# --------------------------------------------------------------------------------------

class TestMembershipJournal:
    def test_round_trip_and_last(self, tmp_path):
        journal = MembershipJournal(tmp_path / "membership.bin", fsync=False)
        steps = [
            {"op": "add", "shard": 2, "step": "spawned"},
            {"op": "add", "shard": 2, "step": "map-committed"},
            {"op": "drain", "shard": 0, "step": "handoff", "target": 1},
        ]
        for step in steps:
            journal.append(step)
        assert journal.entries() == steps
        assert journal.last() == steps[-1]
        assert journal.last(op="add") == steps[1]
        assert journal.last(op="rolling-restart") is None
        journal.close()

    def test_empty_journal(self, tmp_path):
        journal = MembershipJournal(tmp_path / "membership.bin")
        assert journal.entries() == []
        assert journal.last() is None

    def test_non_json_record_is_a_typed_error(self, tmp_path):
        RecordLog(tmp_path / "membership.bin",
                  fsync=False).append(b"\xff not json")
        with pytest.raises(JournalError, match="invalid membership entry"):
            MembershipJournal(tmp_path / "membership.bin").entries()

    def test_non_object_record_is_a_typed_error(self, tmp_path):
        RecordLog(tmp_path / "membership.bin", fsync=False).append(b"[1,2]")
        with pytest.raises(JournalError, match="must be an object"):
            MembershipJournal(tmp_path / "membership.bin").entries()

    def test_torn_tail_drops_the_unfinished_transition_step(self, tmp_path):
        path = tmp_path / "membership.bin"
        journal = MembershipJournal(path, fsync=False)
        journal.append({"op": "add", "step": "spawned"})
        journal.append({"op": "add", "step": "map-committed"})
        journal.close()
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size - 5)
        assert journal.entries() == [{"op": "add", "step": "spawned"}]
        journal.close()
