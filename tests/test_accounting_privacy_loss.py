"""Tests for the privacy loss random variable helpers."""

import math

import numpy as np
import pytest

from repro.accounting.privacy_loss import (
    exact_expected_privacy_loss,
    exact_privacy_loss_distribution,
    expected_privacy_loss_bound,
    privacy_loss_samples,
    summarize_losses,
    worst_case_privacy_loss_bound,
)
from repro.randomizers.laplace import LaplaceHistogramRandomizer
from repro.randomizers.randomized_response import BinaryRandomizedResponse


class TestBounds:
    def test_expected_loss_bound(self):
        assert expected_privacy_loss_bound(0.4) == pytest.approx(0.08)
        with pytest.raises(ValueError):
            expected_privacy_loss_bound(0)

    def test_worst_case_bound(self):
        assert worst_case_privacy_loss_bound(0.7) == 0.7


class TestExactDistribution:
    def test_randomized_response_losses(self):
        epsilon = 0.5
        randomizer = BinaryRandomizedResponse(epsilon)
        losses, probabilities = exact_privacy_loss_distribution(randomizer, 0, 1)
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.abs(losses).max() == pytest.approx(epsilon)

    def test_expected_loss_below_bun_steinke_bound(self):
        """E[L] <= ε²/2 (Proposition 3.3 of [5]) — the key fact behind Thm 4.2."""
        for epsilon in (0.1, 0.3, 0.8):
            randomizer = BinaryRandomizedResponse(epsilon)
            kl = exact_expected_privacy_loss(randomizer, 0, 1)
            assert 0 < kl <= expected_privacy_loss_bound(epsilon) + 1e-12

    def test_non_enumerable_space_rejected(self):
        randomizer = LaplaceHistogramRandomizer(1.0, 4)
        with pytest.raises(ValueError):
            exact_privacy_loss_distribution(randomizer, 0, 1)


class TestSampling:
    def test_samples_bounded_by_epsilon(self, rng):
        epsilon = 0.6
        randomizer = BinaryRandomizedResponse(epsilon)
        losses = privacy_loss_samples(randomizer, 0, 1, 2_000, rng)
        assert np.abs(losses).max() <= epsilon + 1e-12

    def test_sample_mean_close_to_exact(self, rng):
        epsilon = 0.5
        randomizer = BinaryRandomizedResponse(epsilon)
        losses = privacy_loss_samples(randomizer, 0, 1, 50_000, rng)
        exact = exact_expected_privacy_loss(randomizer, 0, 1)
        assert abs(losses.mean() - exact) < 0.01

    def test_validation(self, rng):
        randomizer = BinaryRandomizedResponse(0.5)
        with pytest.raises(ValueError):
            privacy_loss_samples(randomizer, 0, 1, 0, rng)


class TestSummary:
    def test_summary_fields(self):
        summary = summarize_losses([-0.5, 0.1, 0.4, 0.5])
        assert summary.num_samples == 4
        assert summary.max_abs == pytest.approx(0.5)
        assert summary.mean == pytest.approx(0.125)
        assert not summary.exceeds_pure_bound(0.5)
        assert summary.exceeds_pure_bound(0.4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize_losses([])

    def test_quantiles_ordered(self):
        summary = summarize_losses(np.linspace(-1, 1, 1000))
        assert summary.quantile_95 <= summary.quantile_99

    def test_expected_loss_mean_is_kl_for_rr(self):
        """Cross-check: for RR the KL divergence has a closed form."""
        epsilon = 0.7
        p = math.exp(epsilon) / (math.exp(epsilon) + 1)
        closed_form = (2 * p - 1) * epsilon
        randomizer = BinaryRandomizedResponse(epsilon)
        assert exact_expected_privacy_loss(randomizer, 0, 1) == pytest.approx(closed_form)
