"""Tests for the packing lower bounds implied by advanced grouposition."""

import math

import pytest

from repro.lowerbounds.packing import (
    packing_advantage,
    packing_lower_bound_users,
    selection_lower_bound_central,
    selection_lower_bound_local,
)


class TestSelectionBounds:
    def test_central_bound_formula(self):
        bound = selection_lower_bound_central(1024, 0.5)
        assert bound == pytest.approx(math.log(1024 * (2 / 3)) / 0.5)

    def test_local_bound_exceeds_central(self):
        """The Section 1.1 observation: packing bounds are stronger locally."""
        for epsilon in (0.05, 0.1, 0.5):
            local = selection_lower_bound_local(1 << 20, epsilon)
            central = selection_lower_bound_central(1 << 20, epsilon)
            assert local > central

    def test_local_bound_scales_like_inverse_epsilon_squared(self):
        a = selection_lower_bound_local(1 << 20, 0.1)
        b = selection_lower_bound_local(1 << 20, 0.05)
        # Halving epsilon should roughly quadruple the requirement (between 2x and 6x
        # because of the sqrt cross-term).
        assert 2.0 < b / a < 6.0

    def test_central_bound_scales_like_inverse_epsilon(self):
        a = selection_lower_bound_central(1 << 20, 0.1)
        b = selection_lower_bound_central(1 << 20, 0.05)
        assert b / a == pytest.approx(2.0)

    def test_bounds_grow_with_alternatives(self):
        assert (selection_lower_bound_local(1 << 30, 0.1)
                > selection_lower_bound_local(1 << 10, 0.1))

    def test_validation(self):
        with pytest.raises(ValueError):
            selection_lower_bound_central(0, 0.1)
        with pytest.raises(ValueError):
            selection_lower_bound_local(10, 0.1, failure_probability=1.0)


class TestPackingUsers:
    def test_model_selection(self):
        local = packing_lower_bound_users(1 << 16, 0.1, model="local")
        central = packing_lower_bound_users(1 << 16, 0.1, model="central")
        assert local > central
        with pytest.raises(ValueError):
            packing_lower_bound_users(1 << 16, 0.1, model="other")

    def test_advantage_roughly_two_over_epsilon(self):
        epsilon = 0.01
        advantage = packing_advantage(1 << 20, epsilon)
        assert 0.5 / epsilon < advantage < 4.0 / epsilon
