"""Tests for the streaming aggregation service (:mod:`repro.server`).

Covers the frame layer (sync and async flavors share bytes), the live
server end to end against the offline engine (the served estimates must be
**bit-identical** to :func:`repro.engine.run_simulation` under the same
seed), windowed queries over epochs, error reporting, and — the durability
contract — a server that is ``SIGKILL``-ed after a snapshot and restored
into a fresh process finishing the collection bit-identically.
"""

import asyncio
import io
import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.engine import encode_stream, run_simulation
from repro.protocol import ExplicitHistogramParams, HashtogramParams
from repro.server import (
    AggregationClient,
    AggregationServer,
    AsyncAggregationClient,
    FrameError,
    ServerError,
    decode_frame,
    encode_frame,
    encode_reports_frame,
    read_frame_sync,
    write_frame_sync,
)

SRC_ROOT = str(Path(repro.__file__).resolve().parent.parent)


# --------------------------------------------------------------------------------------
# framing
# --------------------------------------------------------------------------------------

class TestFraming:
    def test_sync_round_trip(self):
        stream = io.BytesIO()
        write_frame_sync(stream, {"type": "hello", "n": 3})
        write_frame_sync(stream, {"type": "sync"})
        stream.seek(0)
        assert read_frame_sync(stream) == {"type": "hello", "n": 3}
        assert read_frame_sync(stream) == {"type": "sync"}
        assert read_frame_sync(stream) is None  # clean EOF

    def test_async_reads_sync_bytes(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"type": "stats"}))
            reader.feed_eof()
            from repro.server import read_frame
            first = await read_frame(reader)
            second = await read_frame(reader)
            return first, second
        first, second = asyncio.run(run())
        assert first == {"type": "stats"}
        assert second is None

    def test_rejects_non_object_payload(self):
        with pytest.raises(FrameError, match="JSON object"):
            decode_frame(b"[1, 2, 3]")

    def test_rejects_invalid_json(self):
        with pytest.raises(FrameError, match="invalid JSON"):
            decode_frame(b"{nope")

    def test_rejects_oversized_announcement(self):
        stream = io.BytesIO(struct.pack("!I", (1 << 30) + 1) + b"x")
        with pytest.raises(FrameError, match="limit"):
            read_frame_sync(stream)

    def test_rejects_truncated_frame(self):
        stream = io.BytesIO(struct.pack("!I", 10) + b"{}")
        with pytest.raises(FrameError, match="mid-frame"):
            read_frame_sync(stream)


# --------------------------------------------------------------------------------------
# in-process server harness
# --------------------------------------------------------------------------------------

@contextmanager
def running_server(params, **kwargs):
    """Run an :class:`AggregationServer` on its own event-loop thread."""
    server = AggregationServer(params, **kwargs)
    started = threading.Event()
    address = {}

    def run() -> None:
        async def main() -> None:
            address["hp"] = await server.start("127.0.0.1", 0)
            started.set()
            await server.serve_until_stopped()
        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    host, port = address["hp"]
    try:
        yield server, host, port
    finally:
        try:
            with AggregationClient(host, port) as client:
                client.shutdown()
        except OSError:
            pass  # already stopped by the test body
        thread.join(10)
        assert not thread.is_alive(), "server thread failed to stop"


def _small_params():
    return HashtogramParams.create(1 << 10, 1.0, num_buckets=16, rng=0)


class TestServerEndToEnd:
    def test_served_estimates_bit_identical_to_engine(self):
        params = _small_params()
        values = np.random.default_rng(5).integers(0, 1 << 10, size=12_000)
        offline = run_simulation(params, values,
                                 rng=np.random.default_rng(7)).finalize()
        queries = list(range(128))
        with running_server(params) as (_, host, port):
            with AggregationClient(host, port) as client:
                assert client.hello() == params
                for batch in encode_stream(params, values,
                                           rng=np.random.default_rng(7)):
                    client.send_batch(batch)
                assert client.sync() == values.size
                served = client.query(queries)
        assert np.array_equal(served, offline.estimate_many(queries))

    def test_json_and_b64_batch_encodings_agree(self):
        params = ExplicitHistogramParams(64, 1.0, "krr")
        values = np.random.default_rng(0).integers(0, 64, size=2_000)
        batch = params.make_encoder().encode_batch(values,
                                                   np.random.default_rng(1))
        queries = list(range(64))
        results = {}
        for encoding in ("b64", "json"):
            with running_server(params) as (_, host, port):
                with AggregationClient(host, port) as client:
                    client.send_batch(batch, encoding=encoding)
                    client.sync()
                    results[encoding] = client.query(queries)
        assert np.array_equal(results["b64"], results["json"])

    def test_binary_wire_format_bit_identical_to_json(self):
        params = _small_params()
        values = np.random.default_rng(21).integers(0, 1 << 10, size=6_000)
        batches = list(encode_stream(params, values,
                                     rng=np.random.default_rng(22)))
        queries = list(range(128))
        results = {}
        for wire_format in ("json", "binary"):
            with running_server(params) as (_, host, port):
                with AggregationClient(host, port,
                                       wire_format=wire_format) as client:
                    assert client.hello() == params  # negotiates the format
                    assert "binary" in client.server_wire_formats
                    for batch in batches:
                        client.send_batch(batch)
                    assert client.sync() == values.size
                    results[wire_format] = client.query(queries)
        assert np.array_equal(results["binary"], results["json"])

    def test_binary_frames_rejected_when_disabled(self):
        params = _small_params()
        batch = params.make_encoder().encode_batch(
            [1, 2, 3], np.random.default_rng(0))
        with running_server(params, wire_formats=("json",)) as (_, host, port):
            with AggregationClient(host, port,
                                   wire_format="binary") as client:
                with pytest.raises(ServerError, match="does not accept"):
                    client.hello()  # negotiation fails up front
                client.send_batch(batch)  # forced anyway: dropped + accounted
                assert client.sync() == 0
                stats = client.stats()
                assert stats["reports_rejected"] == len(batch)
                assert "disabled" in stats["last_rejection"]
                # json frames on the same connection still land
                client.send_batch(batch, wire_format="json")
                assert client.sync() == len(batch)

    def test_windowed_queries_over_epochs(self):
        params = ExplicitHistogramParams(32, 1.0, "krr")
        encoder = params.make_encoder()
        per_epoch = {}
        with running_server(params, window=10) as (_, host, port):
            with AggregationClient(host, port) as client:
                for epoch in range(3):
                    values = np.random.default_rng(epoch).integers(
                        0, 32, size=1_000)
                    batch = encoder.encode_batch(
                        values, np.random.default_rng(100 + epoch))
                    per_epoch[epoch] = batch
                    client.send_batch(batch, epoch=epoch)
                client.sync()
                queries = list(range(32))
                stats = client.stats()
                assert stats["epochs"] == [0, 1, 2]
                all_epochs = client.query(queries)
                newest_only = client.query(queries, window=1)
        reference_all = params.make_aggregator()
        for batch in per_epoch.values():
            reference_all.absorb_batch(batch)
        reference_newest = params.make_aggregator().absorb_batch(per_epoch[2])
        assert np.array_equal(
            all_epochs, reference_all.finalize().estimate_many(queries))
        assert np.array_equal(
            newest_only, reference_newest.finalize().estimate_many(queries))

    def test_async_client(self):
        params = ExplicitHistogramParams(32, 1.0, "krr")
        values = np.random.default_rng(3).integers(0, 32, size=1_500)
        batches = list(encode_stream(params, values,
                                     rng=np.random.default_rng(4)))
        reference = params.make_aggregator()
        for batch in batches:
            reference.absorb_batch(batch)
        queries = list(range(32))

        async def drive(host, port):
            async with await AsyncAggregationClient.connect(host, port) as client:
                assert await client.hello() == params
                assert await client.send_stream(batches) == values.size
                assert await client.sync() == values.size
                stats = await client.stats()
                assert stats["reports_absorbed"] == values.size
                return await client.query(queries)

        with running_server(params) as (_, host, port):
            served = asyncio.run(drive(host, port))
        assert np.array_equal(served,
                              reference.finalize().estimate_many(queries))

    def test_concurrent_connections_interleave(self):
        params = _small_params()
        values = np.random.default_rng(11).integers(0, 1 << 10, size=8_000)
        offline = run_simulation(params, values, rng=np.random.default_rng(13),
                                 chunk_size=512).finalize()
        batches = list(encode_stream(params, values,
                                     rng=np.random.default_rng(13),
                                     chunk_size=512))
        queries = list(range(64))
        workers = 3
        with running_server(params) as (_, host, port):
            def send(worker):
                with AggregationClient(host, port) as client:
                    for i in range(worker, len(batches), workers):
                        client.send_batch(batches[i])
                    client.sync()
            threads = [threading.Thread(target=send, args=(w,))
                       for w in range(workers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with AggregationClient(host, port) as client:
                assert client.sync() == values.size
                served = client.query(queries)
        assert np.array_equal(served, offline.estimate_many(queries))

    def test_foreign_protocol_batch_is_rejected(self):
        # `reports` frames are fire-and-forget: a foreign batch must be
        # dropped and *accounted*, never answered — an error frame would
        # occupy the next request's reply slot and desynchronize the
        # connection forever.
        params = _small_params()
        foreign = ExplicitHistogramParams(16, 1.0, "krr")
        batch = foreign.make_encoder().encode_batch(
            [1, 2, 3], np.random.default_rng(0))
        with running_server(params) as (_, host, port):
            with AggregationClient(host, port) as client:
                client.send_batch(batch)
                assert client.sync() == 0
                stats = client.stats()
                assert stats["reports_rejected"] == len(batch)
                assert "cannot ingest" in stats["last_rejection"]
                # reply stream still aligned: distinct request kinds in a row
                assert list(client.query([1, 2])) == [0.0, 0.0]
                assert client.stats()["type"] == "stats"

    def test_stale_epoch_is_dropped_not_fatal(self):
        params = ExplicitHistogramParams(16, 1.0, "krr")
        batch = params.make_encoder().encode_batch(
            [1, 2, 3], np.random.default_rng(0))
        with running_server(params, window=2) as (_, host, port):
            with AggregationClient(host, port) as client:
                for epoch in (5, 6, 7):
                    client.send_batch(batch, epoch=epoch)
                client.sync()
                # Epoch 4 already rolled out of the window: the batch is
                # dropped and accounted for, and the server keeps serving.
                client.send_batch(batch, epoch=4)
                client.sync()
                stats = client.stats()
                assert stats["epochs"] == [6, 7]
                assert stats["reports_rejected"] == len(batch)
                assert "retention window" in stats["last_rejection"]
                assert stats["reports_absorbed"] == 3 * len(batch)

    def test_malformed_columns_are_dropped_not_fatal(self):
        # Correct protocol tag, but columns that don't fit the protocol:
        # the drain task must reject the batch and keep serving (a dead
        # drain would deadlock every later sync).
        params = _small_params()
        with running_server(params) as (_, host, port):
            with AggregationClient(host, port) as client:
                write_frame_sync(client._stream, {
                    "type": "reports", "epoch": 0,
                    "batch": {"protocol": params.protocol,
                              "encoding": "json", "num_reports": 2,
                              "columns": {"bogus": {"dtype": "<i8",
                                                    "shape": [2],
                                                    "data": [1, 2]}}}})
                assert client.sync() == 0
                stats = client.stats()
                assert stats["reports_rejected"] == 2
                assert stats["last_rejection"]
                # and a good batch afterwards still lands
                good = params.make_encoder().encode_batch(
                    [1, 2, 3], np.random.default_rng(0))
                client.send_batch(good)
                assert client.sync() == 3

    def test_shutdown_completes_with_idle_connection(self):
        # Python >= 3.12.1: Server.wait_closed() waits for every handler,
        # so shutdown must actively close idle connections or it hangs.
        params = _small_params()
        with running_server(params) as (_, host, port):
            idle = AggregationClient(host, port)
            try:
                with AggregationClient(host, port) as client:
                    assert client.shutdown() == 0
                # running_server's finally asserts the thread stopped within
                # its timeout, which is the actual regression check.
            finally:
                idle.close()

    def test_query_on_empty_server_returns_zeros(self):
        with running_server(_small_params()) as (_, host, port):
            with AggregationClient(host, port) as client:
                assert list(client.query([0, 1, 2])) == [0.0, 0.0, 0.0]

    def test_partial_batch_failure_rolls_back_atomically(self):
        # A hashtogram batch whose columns decode fine but whose inner
        # payload is corrupt for one repetition must not leave the other
        # repetitions' accumulators mutated (absorb is atomic server-side).
        params = _small_params()
        encoder = params.make_encoder()
        good = encoder.encode_batch(np.arange(100) % 50,
                                    np.random.default_rng(0))
        corrupt = encoder.encode_batch(np.arange(100) % 50,
                                       np.random.default_rng(1))
        # out-of-range Hadamard rows for the *last* repetition only: earlier
        # repetitions would absorb before the failure without rollback
        rows = np.array(corrupt.columns["row"], copy=True)
        last_rep = corrupt.columns["repetition"] == params.num_repetitions - 1
        rows[last_rep] = 1 << 40
        corrupt.columns["row"] = rows
        queries = list(range(50))
        with running_server(params) as (_, host, port):
            with AggregationClient(host, port) as client:
                client.send_batch(good)
                client.sync()
                before = client.query(queries)
                client.send_batch(corrupt)
                client.sync()
                after = client.query(queries)
                stats = client.stats()
        assert stats["reports_rejected"] == len(corrupt)
        assert stats["reports_absorbed"] == len(good)
        assert np.array_equal(before, after)

    def test_sparse_epoch_query_window_is_value_based(self):
        params = ExplicitHistogramParams(16, 1.0, "krr")
        batch = params.make_encoder().encode_batch(
            [1, 2, 3], np.random.default_rng(0))
        with running_server(params) as (_, host, port):
            with AggregationClient(host, port) as client:
                client.send_batch(batch, epoch=0)
                client.send_batch(batch, epoch=50)
                client.sync()
                write_frame_sync(client._stream,
                                 {"type": "query", "items": [1], "window": 24})
                reply = read_frame_sync(client._stream)
        # epoch 0 is 50 epochs old: a last-24-epochs query must exclude it.
        assert reply["epochs"] == [50]
        assert reply["num_reports"] == len(batch)

    def test_unknown_batch_encoding_rejected(self):
        from repro.protocol import ReportBatch
        with pytest.raises(ValueError, match="unknown batch encoding"):
            ReportBatch.from_dict({"protocol": "x", "encoding": "base64",
                                   "num_reports": 0, "columns": {}})

    def test_snapshot_without_store_errors(self):
        with running_server(_small_params()) as (_, host, port):
            with AggregationClient(host, port) as client:
                with pytest.raises(ServerError, match="snapshot"):
                    client.snapshot()

    def test_unknown_frame_type_errors(self):
        with running_server(_small_params()) as (_, host, port):
            with AggregationClient(host, port) as client:
                write_frame_sync(client._stream, {"type": "subscribe"})
                reply = read_frame_sync(client._stream)
                assert reply["type"] == "error"
                assert "unknown frame type" in reply["error"]

    def test_in_process_snapshot_restore(self, tmp_path):
        params = _small_params()
        values = np.random.default_rng(17).integers(0, 1 << 10, size=6_000)
        batches = list(encode_stream(params, values,
                                     rng=np.random.default_rng(19)))
        queries = list(range(64))
        with running_server(params, snapshot_dir=tmp_path) as (_, host, port):
            with AggregationClient(host, port) as client:
                for batch in batches[:len(batches) // 2]:
                    client.send_batch(batch)
                client.sync()
                snapshot_path = client.snapshot()
        restored = AggregationServer.restore(snapshot_path)
        for batch in batches[len(batches) // 2:]:
            restored.windowed.absorb_batch(batch)
        straight = params.make_aggregator()
        for batch in batches:
            straight.absorb_batch(batch)
        assert np.array_equal(
            restored.windowed.finalize().estimate_many(queries),
            straight.finalize().estimate_many(queries))


# --------------------------------------------------------------------------------------
# kill -9 and restore, across real processes
# --------------------------------------------------------------------------------------

def _spawn_serve(extra_args, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--host", "127.0.0.1",
         "--port", "0", "--quiet", *extra_args],
        stdout=subprocess.PIPE, text=True, env=env, cwd=tmp_path)
    line = proc.stdout.readline()
    assert line.startswith("LISTENING "), f"unexpected first line {line!r}"
    _, host, port = line.split()
    return proc, host, int(port)


class TestKillAndRestore:
    def test_sigkill_then_restore_is_bit_identical(self, tmp_path):
        params = ExplicitHistogramParams(256, 1.0, "hadamard")
        params_file = tmp_path / "params.json"
        params_file.write_text(json.dumps(params.to_dict()))
        snapshot_dir = tmp_path / "ckpt"

        values = np.random.default_rng(23).integers(0, 256, size=10_000)
        batches = list(encode_stream(params, values,
                                     rng=np.random.default_rng(29)))
        half = len(batches) // 2
        queries = list(range(256))

        proc, host, port = _spawn_serve(
            ["--params-file", str(params_file),
             "--snapshot-dir", str(snapshot_dir)], tmp_path)
        try:
            with AggregationClient(host, port) as client:
                for batch in batches[:half]:
                    client.send_batch(batch)
                client.sync()
                snapshot_path = client.snapshot()
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
            proc.stdout.close()

        proc, host, port = _spawn_serve(
            ["--restore", snapshot_path,
             "--snapshot-dir", str(snapshot_dir)], tmp_path)
        try:
            with AggregationClient(host, port) as client:
                assert client.sync() == sum(len(b) for b in batches[:half])
                for batch in batches[half:]:
                    client.send_batch(batch)
                assert client.sync() == values.size
                served = client.query(queries)
                client.shutdown()
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()

        straight = params.make_aggregator()
        for batch in batches:
            straight.absorb_batch(batch)
        assert np.array_equal(served,
                              straight.finalize().estimate_many(queries))


# --------------------------------------------------------------------------------------
# async-safety regressions (defects found by `python -m repro.tools.lint`)
# --------------------------------------------------------------------------------------

class TestAsyncSafetyRegressions:
    """Pin the fixes for the RPL3 findings of the static-analysis suite."""

    def test_concurrent_start_raises_exactly_once(self):
        # RPL302: start() used to read self._server, await, then write it —
        # two concurrent start() calls both passed the guard and the first
        # bound server (and its drain task) leaked.
        server = AggregationServer(_small_params())

        async def main():
            results = await asyncio.gather(server.start("127.0.0.1", 0),
                                           server.start("127.0.0.1", 0),
                                           return_exceptions=True)
            errors = [r for r in results if isinstance(r, RuntimeError)]
            assert len(errors) == 1, results
            await server.stop()

        asyncio.run(main())

    def test_snapshot_write_does_not_block_event_loop(self, tmp_path):
        # RPL301: the snapshot handler used to call SnapshotStore.save on
        # the event loop; a slow disk froze every other connection.  The
        # save now runs in an executor, so a hello on a second connection
        # must complete while the write is still in flight.
        gate = threading.Event()
        entered = threading.Event()

        with running_server(_small_params(),
                            snapshot_dir=tmp_path) as (server, host, port):
            real_save = server.store.save

            def stalled_save(payload):
                entered.set()
                assert gate.wait(10), "test never released the save"
                return real_save(payload)

            server.store.save = stalled_save

            snap_path = {}

            def request_snapshot():
                with AggregationClient(host, port) as client:
                    snap_path["path"] = client.snapshot()

            hello_ok = threading.Event()

            def request_hello():
                with AggregationClient(host, port) as client:
                    client.hello()
                    hello_ok.set()

            snap_thread = threading.Thread(target=request_snapshot,
                                           daemon=True)
            snap_thread.start()
            assert entered.wait(10), "snapshot request never reached save()"
            try:
                threading.Thread(target=request_hello, daemon=True).start()
                served_while_saving = hello_ok.wait(5)
            finally:
                gate.set()
            snap_thread.join(10)
            assert served_while_saving, \
                "hello blocked while the snapshot write was in flight"
            assert Path(snap_path["path"]).is_file()


# --------------------------------------------------------------------------------------
# delivery sequencing, health, and client deadlines (the cluster-hardening tier)
# --------------------------------------------------------------------------------------

class TestSequencingAndHealth:
    """Spec §7.1: a not-larger ``seq`` is an exact redelivery — drop it."""

    def _stamped(self, params, seed, seq, wire_format):
        values = np.random.default_rng(seed).integers(0, 1 << 10, size=1_200)
        batch = params.make_encoder().encode_batch(values,
                                                   np.random.default_rng(seed))
        return batch, encode_reports_frame(batch, wire_format=wire_format,
                                           seq=seq)

    @pytest.mark.parametrize("wire_format", ["json", "binary"])
    def test_sequenced_redelivery_dropped_exactly(self, wire_format):
        params = _small_params()
        batch1, frame1 = self._stamped(params, 3, 1, wire_format)
        batch2, frame2 = self._stamped(params, 4, 2, wire_format)
        queries = list(range(64))
        expected = (params.make_aggregator().absorb_batch(batch1)
                    .absorb_batch(batch2).finalize().estimate_many(queries))
        with running_server(params) as (_, host, port):
            with AggregationClient(host, port) as client:
                client.send_raw(frame1)
                assert client.sync() == len(batch1)
                client.send_raw(frame1)  # byte-identical redelivery (replay)
                assert client.sync() == len(batch1)
                client.send_raw(frame2)  # watermark advances: absorbed
                assert client.sync() == len(batch1) + len(batch2)
                assert client.stats()["reports_deduped"] == len(batch1)
                assert client.health()["max_seq"] == 2
                served = client.query(queries)
        assert np.array_equal(served, expected)

    def test_unsequenced_frames_never_deduped(self):
        # Plain clients don't stamp seq; identical frames must all absorb.
        params = _small_params()
        batch, _ = self._stamped(params, 5, 1, "json")
        frame = encode_reports_frame(batch)  # no seq field
        with running_server(params) as (_, host, port):
            with AggregationClient(host, port) as client:
                client.send_raw(frame)
                client.send_raw(frame)
                assert client.sync() == 2 * len(batch)
                assert client.stats()["reports_deduped"] == 0

    def test_health_probe_reports_watermark(self):
        params = _small_params()
        batch, frame = self._stamped(params, 6, 7, "binary")
        with running_server(params) as (_, host, port):
            with AggregationClient(host, port) as client:
                reply = client.health()
                assert reply["status"] == "ok"
                assert reply["protocol"] == params.protocol
                assert reply["max_seq"] is None
                assert reply["num_reports"] == 0
                client.send_raw(frame)
                client.sync()
                reply = client.health()
                assert reply["max_seq"] == 7
                assert reply["num_reports"] == len(batch)


class TestClientDeadlines:
    """A wedged server must surface as ``TimeoutError``, never a silent hang."""

    @contextmanager
    def _black_hole(self):
        # A listener whose kernel backlog completes the TCP handshake but
        # whose owner never accepts, reads, or writes a byte — the stalled
        # server pathology the timeout hardening exists for.
        sock = socket.socket()
        try:
            sock.bind(("127.0.0.1", 0))
            sock.listen(1)
            yield sock.getsockname()
        finally:
            sock.close()

    def test_sync_client_times_out_on_stalled_server(self):
        with self._black_hole() as (host, port):
            client = AggregationClient(host, port, timeout=0.5)
            try:
                with pytest.raises(TimeoutError):
                    client.hello()
            finally:
                client.close()

    def test_async_client_times_out_on_stalled_server(self):
        async def main():
            with self._black_hole() as (host, port):
                client = await AsyncAggregationClient.connect(host, port,
                                                              timeout=0.5)
                try:
                    with pytest.raises(TimeoutError):
                        await client.hello()
                finally:
                    await client.close()

        asyncio.run(main())
