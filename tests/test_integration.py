"""Integration tests spanning multiple subsystems.

These exercise the public API the way the examples and benchmarks do:
realistic workloads end to end, protocol-versus-baseline comparisons, the
string-domain applications from the paper's introduction, and the composition
of the structural results with concrete randomizers.
"""

import numpy as np
import pytest

from repro import (
    DomainScanHeavyHitters,
    GenProt,
    GroupPrivacyAnalyzer,
    HashtogramOracle,
    PrivateExpanderSketch,
    SingleHashHeavyHitters,
    advanced_grouposition,
    planted_workload,
    score_heavy_hitters,
    synthetic_url_dataset,
)
from repro.accounting.composition import central_group_privacy
from repro.analysis.bounds import heavy_hitter_error_this_work
from repro.baselines.nonprivate import ExactCounter
from repro.randomizers.randomized_response import BinaryRandomizedResponse


class TestProtocolVersusBaseline:
    """The Table-1-style comparison on one shared workload."""

    @pytest.fixture(scope="class")
    def workload(self):
        return planted_workload(num_users=30_000, domain_size=1 << 18,
                                heavy_fractions=[0.3, 0.22],
                                heavy_elements=[123_456, 7_890], rng=21)

    def test_both_protocols_find_the_heavy_hitters(self, workload):
        ours = PrivateExpanderSketch(domain_size=1 << 18, epsilon=4.0)
        # The single-hash baseline needs repetitions to push its (constant)
        # per-hash failure probability down - exactly the beta-dependence the
        # paper's protocol removes.  One repetition does occasionally miss a
        # heavy hitter (seen with some seeds), so the comparison runs it at 3.
        baseline = SingleHashHeavyHitters(domain_size=1 << 18, epsilon=4.0,
                                          num_repetitions=3)
        result_ours = ours.run(workload.values, rng=1)
        result_baseline = baseline.run(workload.values, rng=2)
        for element in workload.heavy_elements:
            assert element in result_ours.estimates
            assert element in result_baseline.estimates

    def test_resource_profiles_are_comparable(self, workload):
        ours = PrivateExpanderSketch(domain_size=1 << 18, epsilon=4.0)
        result = ours.run(workload.values, rng=3)
        # O(1) communication per user and a bounded output list.
        assert result.communication_bits_per_user() < 200
        assert result.list_size < 4_000

    def test_domain_scan_matches_on_small_domain(self):
        workload = planted_workload(num_users=20_000, domain_size=1 << 12,
                                    heavy_fractions=[0.25],
                                    heavy_elements=[321], rng=4)
        scanner = DomainScanHeavyHitters(domain_size=1 << 12, epsilon=2.0,
                                         num_repetitions=1)
        result = scanner.run(workload.values, rng=5)
        assert 321 in result.estimates
        # The scan's server memory is at least |X| - the cost the paper removes.
        assert result.meter.server_memory_items >= 1 << 12


class TestUrlTelemetryScenario:
    """The Chrome-style string workload from the introduction."""

    def test_end_to_end_url_discovery(self):
        values, domain, popular = synthetic_url_dataset(num_users=40_000,
                                                        num_popular=3,
                                                        popular_mass=0.7, rng=31)
        protocol = PrivateExpanderSketch(domain_size=domain.domain_size,
                                         epsilon=4.0, beta=0.1)
        result = protocol.run(values, rng=32)
        decoded = {}
        for code, estimate in result.sorted_items():
            try:
                decoded[domain.decode(int(code))] = estimate
            except ValueError:
                continue
        top_url = max(popular, key=popular.get)
        assert top_url in decoded
        assert abs(decoded[top_url] - popular[top_url]) < 0.5 * popular[top_url]


class TestFrequencyOracleAgainstExactCounts:
    def test_oracle_tracks_exact_counter(self, rng):
        domain = 1 << 16
        values = np.concatenate([
            np.full(4_000, 77),
            np.full(2_500, 1_234),
            rng.integers(0, domain, size=13_500),
        ])
        exact = ExactCounter().update(values)
        oracle = HashtogramOracle(domain, epsilon=1.0)
        oracle.collect(values, rng)
        for element in (77, 1_234, 999):
            assert abs(oracle.estimate(element) - exact.estimate(element)) < (
                oracle.expected_error(beta=0.01))

    def test_oracle_error_within_paper_bound_shape(self, rng):
        """Measured worst-case error over a query set stays within a small
        multiple of the Theorem 3.7 formula."""
        domain, n = 1 << 16, 20_000
        values = rng.integers(0, domain, size=n)
        oracle = HashtogramOracle(domain, epsilon=1.0)
        oracle.collect(values, rng)
        queries = rng.integers(0, domain, size=200)
        exact = ExactCounter().update(values)
        worst = max(abs(oracle.estimate(int(q)) - exact.estimate(int(q)))
                    for q in queries)
        bound = heavy_hitter_error_this_work(n, domain, 1.0, 0.01)
        assert worst < 3 * bound


class TestStructuralResultsOnProtocolComponents:
    def test_grouposition_analyzer_on_protocol_randomizer(self):
        """Apply the Section 4 machinery to the randomizer actually used by the
        counting lower-bound experiment."""
        epsilon, k, delta = 0.25, 32, 0.05
        analyzer = GroupPrivacyAnalyzer(BinaryRandomizedResponse(epsilon))
        estimate = analyzer.empirical_group_epsilon([0] * k, [1] * k, delta,
                                                    num_samples=10_000, rng=7)
        local_bound = advanced_grouposition(k, epsilon, delta)
        central_bound, _ = central_group_privacy(k, epsilon)
        assert estimate.quantile <= local_bound <= central_bound * 1.5

    def test_genprot_wraps_randomized_response_counting(self):
        """GenProt-transformed reports plug into the same aggregation code."""
        epsilon = 0.25
        base = BinaryRandomizedResponse(epsilon)
        genprot = GenProt(base, beta=0.05)
        values = [1] * 1_500 + [0] * 1_500
        surrogates = np.array(genprot.surrogate_reports(values, rng=8))
        estimate = base.unbiased_count(surrogates)
        assert abs(estimate - 1_500) < 5 * np.sqrt(
            3_000 * base.estimator_variance_per_user)


class TestDefinitionCompliance:
    def test_output_satisfies_definition_3_1_on_repeated_runs(self):
        """Across several independent runs, every planted Delta-heavy element
        is recovered and every estimate is within Delta of the truth, for
        Delta = the largest planted frequency band the protocol targets."""
        workload = planted_workload(num_users=25_000, domain_size=1 << 18,
                                    heavy_fractions=[0.35, 0.25],
                                    heavy_elements=[111_111, 222], rng=41)
        protocol = PrivateExpanderSketch(domain_size=1 << 18, epsilon=4.0, beta=0.1)
        delta = 0.2 * workload.num_users
        failures = 0
        for seed in range(3):
            result = protocol.run(workload.values, rng=100 + seed)
            score = score_heavy_hitters(result.estimates, workload.values, delta)
            if not score.succeeded or score.max_estimation_error > delta:
                failures += 1
        assert failures == 0
