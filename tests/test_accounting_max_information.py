"""Tests for the max-information bounds (Theorem 4.5)."""

import numpy as np
import pytest

from repro.accounting.max_information import (
    central_max_information,
    central_max_information_product,
    crossover_beta,
    generalization_error_bound,
    ldp_max_information,
    max_information_from_losses,
)


class TestAnalyticBounds:
    def test_ldp_bound_formula(self):
        n, eps, beta = 1_000, 0.1, 0.05
        expected = n * eps**2 / 2 + eps * np.sqrt(2 * n * np.log(1 / beta))
        assert ldp_max_information(n, eps, beta) == pytest.approx(expected)

    def test_ldp_beats_central_for_small_epsilon(self):
        """For small ε the LDP bound ~ nε²/2 is far below the central εn."""
        n, eps, beta = 100_000, 0.01, 0.01
        assert ldp_max_information(n, eps, beta) < central_max_information(n, eps)

    def test_ldp_matches_central_product_shape(self):
        """The LDP bound matches the central bound that only holds for product
        distributions (up to constants)."""
        n, eps, beta = 10_000, 0.05, 0.05
        ldp = ldp_max_information(n, eps, beta)
        product = central_max_information_product(n, eps, beta)
        assert 0.2 < ldp / product < 2.0

    def test_crossover_beta(self):
        n, eps = 10_000, 0.1
        beta_star = crossover_beta(n, eps)
        if 0 < beta_star < 1:
            above = ldp_max_information(n, eps, min(beta_star * 2, 0.999999))
            assert above <= central_max_information(n, eps) * 1.001

    def test_validation(self):
        with pytest.raises(ValueError):
            ldp_max_information(0, 0.1, 0.05)
        with pytest.raises(ValueError):
            ldp_max_information(10, 0.1, 0.0)
        with pytest.raises(ValueError):
            central_max_information(10, -1.0)


class TestEmpiricalEstimation:
    def test_quantile_semantics(self):
        losses = np.linspace(0, 1, 101)
        assert max_information_from_losses(losses, beta=0.1) == pytest.approx(0.9)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            max_information_from_losses([], 0.1)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            max_information_from_losses([1.0], 0.0)


class TestGeneralization:
    def test_generalization_bound(self):
        assert generalization_error_bound(0.0, 0.01) == pytest.approx(0.01)
        assert generalization_error_bound(1.0, 0.01) == pytest.approx(0.01 * np.e)

    def test_validation(self):
        with pytest.raises(ValueError):
            generalization_error_bound(-1.0, 0.1)
        with pytest.raises(ValueError):
            generalization_error_bound(1.0, 1.5)
