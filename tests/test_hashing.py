"""Tests for repro.hashing: primes and k-wise independent hash families."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing.kwise import (
    KWiseHashFamily,
    kwise_hash,
    pairwise_hash,
    sign_hash,
    total_description_bits,
)
from repro.hashing.primes import is_prime, next_prime, previous_prime


class TestPrimes:
    def test_small_primes(self):
        primes = [2, 3, 5, 7, 11, 13, 97, 101, 7919]
        for p in primes:
            assert is_prime(p)

    def test_small_composites(self):
        for c in [0, 1, 4, 6, 9, 91, 561, 7917]:
            assert not is_prime(c)

    def test_large_prime_and_composite(self):
        assert is_prime(2**31 - 1)          # Mersenne prime
        assert not is_prime(2**31 - 3)

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(14) == 17
        assert next_prime(17) == 17
        assert next_prime(1 << 20) == 1048583

    def test_previous_prime(self):
        assert previous_prime(17) == 17
        assert previous_prime(16) == 13
        with pytest.raises(ValueError):
            previous_prime(1)

    @given(st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=50)
    def test_next_prime_property(self, n):
        p = next_prime(n)
        assert p >= n
        assert is_prime(p)


class TestKWiseHash:
    def test_range_respected(self):
        h = pairwise_hash(10_000, 37, rng=0)
        values = h(np.arange(1000))
        assert values.min() >= 0 and values.max() < 37

    def test_scalar_and_vector_agree(self):
        h = pairwise_hash(10_000, 64, rng=1)
        xs = np.arange(50)
        vector = h(xs)
        scalars = np.array([h(int(x)) for x in xs])
        assert np.array_equal(vector, scalars)

    def test_determinism(self):
        h = pairwise_hash(1 << 20, 128, rng=3)
        assert h(123456) == h(123456)

    def test_different_samples_differ(self):
        family = KWiseHashFamily.create(1 << 16, 97, independence=2)
        h1, h2 = family.sample_many(2, rng=5)
        xs = np.arange(200)
        assert not np.array_equal(h1(xs), h2(xs))

    def test_rejects_negative_inputs(self):
        h = pairwise_hash(100, 10, rng=0)
        with pytest.raises(ValueError):
            h(np.array([-1, 3]))

    def test_description_bits_scale_with_independence(self):
        pair = pairwise_hash(1 << 20, 16, rng=0)
        eightwise = kwise_hash(1 << 20, 16, independence=8, rng=0)
        assert eightwise.description_bits == 4 * pair.description_bits
        assert total_description_bits([pair, eightwise]) == (
            pair.description_bits + eightwise.description_bits)

    def test_approximate_uniformity(self):
        """Bucket loads of a pairwise hash should be near-uniform."""
        h = pairwise_hash(1 << 20, 16, rng=11)
        values = h(np.arange(16_000))
        counts = np.bincount(values, minlength=16)
        assert counts.min() > 500
        assert counts.max() < 1500

    def test_pairwise_collision_rate(self):
        """Empirical collision probability of random pairs is close to 1/range."""
        rng = np.random.default_rng(0)
        collisions = 0
        trials = 400
        for seed in range(trials):
            h = pairwise_hash(1 << 16, 32, rng=seed)
            x, y = rng.integers(0, 1 << 16, size=2)
            while x == y:
                y = rng.integers(0, 1 << 16)
            collisions += int(h(int(x)) == h(int(y)))
        # Expected collision rate 1/32 = 0.03125; allow generous sampling slack.
        assert collisions / trials < 0.09

    def test_large_prime_path(self):
        """Domains above 2^31 exercise the object-dtype evaluation path."""
        h = pairwise_hash(1 << 40, 64, rng=2)
        values = h(np.array([0, 1, (1 << 40) - 1]))
        assert values.min() >= 0 and values.max() < 64

    def test_scalar_fast_path_matches_vector(self):
        """The allocation-free scalar Horner path must agree with the
        vectorized evaluation bit for bit, for both prime regimes."""
        for h in (kwise_hash(1 << 20, 97, independence=5, rng=7),
                  pairwise_hash(1 << 40, 64, rng=2)):
            xs = list(range(64)) + [h.prime - 1, h.prime, h.prime + 13]
            vector = h(np.asarray(xs, dtype=np.int64))
            for i, x in enumerate(xs):
                assert h(int(x)) == int(vector[i])     # python int scalar
                assert h(np.int64(x)) == int(vector[i])  # numpy int scalar

    def test_scalar_fast_path_rejects_negative(self):
        h = pairwise_hash(100, 10, rng=0)
        with pytest.raises(ValueError):
            h(-1)

    def test_cached_coefficients_survive_pickle(self):
        import pickle
        h = kwise_hash(1 << 16, 32, independence=4, rng=9)
        clone = pickle.loads(pickle.dumps(h))
        assert clone == h
        assert clone(12345) == h(12345)
        assert np.array_equal(clone(np.arange(100)), h(np.arange(100)))


class TestSignHash:
    def test_values_are_signs(self):
        s = sign_hash(1 << 16, rng=0)
        values = s(np.arange(1000))
        assert set(np.unique(values)).issubset({-1, 1})

    def test_balance(self):
        s = sign_hash(1 << 16, rng=1)
        values = s(np.arange(10_000))
        assert abs(values.mean()) < 0.1

    def test_scalar(self):
        s = sign_hash(1 << 16, rng=2)
        assert s(5) in (-1, 1)


class TestFamilyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            KWiseHashFamily.create(0, 10)
        with pytest.raises(ValueError):
            KWiseHashFamily.create(10, 0)
        with pytest.raises(ValueError):
            KWiseHashFamily.create(10, 10, independence=0)

    def test_prime_exceeds_domain_and_range(self):
        family = KWiseHashFamily.create(1000, 2000, independence=3)
        assert family.prime >= 2000
