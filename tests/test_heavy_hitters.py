"""End-to-end tests for PrivateExpanderSketch (the paper's main protocol)."""

import numpy as np
import pytest

from repro.analysis.metrics import score_heavy_hitters
from repro.core.heavy_hitters import PrivateExpanderSketch
from repro.workloads.distributions import planted_workload


class TestSmallDomainFallback:
    def test_small_domain_enumeration(self, rng):
        domain = 256
        values = rng.integers(0, domain, size=5_000)
        values[:2_000] = 17
        protocol = PrivateExpanderSketch(domain_size=domain, epsilon=1.0)
        result = protocol.run(values, rng=1)
        assert result.metadata["mode"] == "small_domain_enumeration"
        assert 17 in result.estimates
        assert abs(result.estimates[17] - 2_000) < 1_000
        assert result.oracle is not None

    def test_fallback_can_be_disabled(self, rng):
        domain = 256
        values = rng.integers(0, domain, size=2_000)
        protocol = PrivateExpanderSketch(domain_size=domain, epsilon=1.0,
                                         small_domain_cutoff=0,
                                         num_coordinates=6)
        result = protocol.run(values, rng=2)
        assert result.metadata.get("mode") != "small_domain_enumeration"


class TestFullProtocol:
    @pytest.fixture(scope="class")
    def executed(self):
        """One medium protocol run shared by the assertions below (runs take ~1s).

        The planted frequencies sit comfortably above the protocol's practical
        detection threshold at this scale (roughly 10-15% of n for n = 30k and
        epsilon = 4; see EXPERIMENTS.md for the measured threshold curve).
        """
        workload = planted_workload(num_users=30_000, domain_size=1 << 20,
                                    heavy_fractions=[0.3, 0.24, 0.18],
                                    heavy_elements=[891944, 667902, 535965],
                                    rng=11)
        protocol = PrivateExpanderSketch(domain_size=1 << 20, epsilon=4.0, beta=0.05)
        result = protocol.run(workload.values, rng=3)
        return workload, protocol, result

    def test_recovers_all_planted_heavy_hitters(self, executed):
        workload, _, result = executed
        for element in workload.heavy_elements:
            assert element in result.estimates

    def test_estimates_are_accurate(self, executed):
        workload, protocol, result = executed
        params = protocol.parameters_for(workload.num_users)
        bound = 6.0 * params.theoretical_error()
        for element, frequency in workload.as_dict().items():
            assert abs(result.estimates[element] - frequency) < bound

    def test_list_size_is_bounded(self, executed):
        workload, protocol, result = executed
        params = protocol.parameters_for(workload.num_users)
        assert result.list_size <= params.num_buckets * 4 * params.list_size

    def test_score_against_definition(self, executed):
        workload, _, result = executed
        threshold = min(workload.heavy_frequencies)
        score = score_heavy_hitters(result.estimates, workload.values, threshold)
        assert score.recall == 1.0
        assert score.succeeded

    def test_resource_accounting_populated(self, executed):
        workload, _, result = executed
        meter = result.meter
        assert meter.communication_bits > 0
        assert meter.public_randomness_bits > 0
        assert meter.server_memory_items > 0
        assert meter.user_time_s > 0
        assert meter.server_time_s > 0
        # Communication per user is a small constant number of bits (two
        # Hadamard-response style reports), far below log |X| * anything big.
        assert result.communication_bits_per_user() < 200

    def test_server_memory_bounded_by_one_coordinate_oracle(self, executed):
        """The server streams one coordinate at a time: its peak memory is a
        single coordinate oracle (B*Y*Z cells, padded) plus the final
        Hashtogram, not the sum over all M coordinates."""
        _, _, result = executed
        num_cells = result.metadata["num_cells"]
        assert result.meter.server_memory_items < 2.5 * num_cells
        num_coordinates = result.metadata["parameters"]["num_coordinates"]
        assert result.meter.server_memory_items < num_coordinates * num_cells / 2

    def test_metadata_contains_parameters(self, executed):
        _, protocol, result = executed
        assert "parameters" in result.metadata
        assert result.metadata["parameters"]["epsilon"] == protocol.epsilon
        assert len(result.metadata["group_sizes"]) == (
            result.metadata["parameters"]["num_coordinates"])

    def test_final_oracle_usable_for_extra_queries(self, executed):
        workload, _, result = executed
        # Querying an element that never occurs should give a small estimate.
        absent = 123_457
        assert absent not in set(workload.values.tolist())
        assert abs(result.oracle.estimate(absent)) < 3_000


class TestConfiguration:
    def test_cell_guard_triggers(self):
        protocol = PrivateExpanderSketch(domain_size=1 << 20, epsilon=1.0,
                                         small_domain_cutoff=0,
                                         hash_range=256, expander_degree=4,
                                         max_cells=1 << 20)
        with pytest.raises(ValueError):
            protocol.run(np.zeros(100, dtype=np.int64), rng=0)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            PrivateExpanderSketch(domain_size=1 << 16, epsilon=1.0, beta=0.0)

    def test_explicit_parameters_used(self):
        from repro.core.params import ProtocolParameters

        params = ProtocolParameters.derive(1_000, 1 << 16, 1.0, 0.05,
                                           num_coordinates=6, num_buckets=3)
        protocol = PrivateExpanderSketch(domain_size=1 << 16, epsilon=1.0,
                                         params=params)
        assert protocol.parameters_for(999_999) is params
