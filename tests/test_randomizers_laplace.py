"""Tests for the additive-noise (Laplace / Gaussian) histogram randomizers."""

import math

import numpy as np
import pytest

from repro.randomizers.laplace import (
    GaussianHistogramRandomizer,
    LaplaceHistogramRandomizer,
)


class TestLaplaceHistogramRandomizer:
    def test_report_shape(self, rng):
        randomizer = LaplaceHistogramRandomizer(1.0, 8)
        report = randomizer.randomize(3, rng)
        assert report.shape == (8,)

    def test_scale(self):
        randomizer = LaplaceHistogramRandomizer(0.5, 4)
        assert randomizer.scale == pytest.approx(4.0)

    def test_density_ratio_bounded_by_epsilon(self, rng):
        """For any report, the log-density ratio between neighbouring inputs
        is bounded by epsilon (L1 sensitivity 2, scale 2/eps)."""
        epsilon = 0.8
        randomizer = LaplaceHistogramRandomizer(epsilon, 6)
        for _ in range(50):
            report = randomizer.randomize(2, rng)
            loss = randomizer.privacy_loss(2, 5, report)
            assert abs(loss) <= epsilon + 1e-9

    def test_unbiased_histogram(self, rng):
        randomizer = LaplaceHistogramRandomizer(2.0, 5)
        values = rng.integers(0, 5, size=3_000)
        reports = np.stack([randomizer.randomize(int(v), rng) for v in values])
        estimates = randomizer.unbiased_histogram(reports)
        true = np.bincount(values, minlength=5)
        tolerance = 5 * math.sqrt(3_000 * randomizer.estimator_variance_per_user)
        assert np.abs(estimates - true).max() < tolerance

    def test_continuous_report_space(self):
        randomizer = LaplaceHistogramRandomizer(1.0, 4)
        assert randomizer.report_space() is None
        assert randomizer.delta == 0.0

    def test_validates_shapes(self):
        randomizer = LaplaceHistogramRandomizer(1.0, 4)
        with pytest.raises(ValueError):
            randomizer.log_prob(0, np.zeros(3))
        with pytest.raises(ValueError):
            randomizer.unbiased_histogram(np.zeros((5, 3)))


class TestGaussianHistogramRandomizer:
    def test_requires_positive_delta(self):
        with pytest.raises(ValueError):
            GaussianHistogramRandomizer(1.0, 0.0, 4)

    def test_sigma_formula(self):
        epsilon, delta = 1.0, 1e-5
        randomizer = GaussianHistogramRandomizer(epsilon, delta, 4)
        expected = math.sqrt(2 * math.log(1.25 / delta)) * math.sqrt(2.0) / epsilon
        assert randomizer.sigma == pytest.approx(expected)

    def test_is_approximately_private_not_purely(self, rng):
        """The Gaussian mechanism has unbounded privacy loss (it is (eps, delta)
        but not pure); extreme reports must show losses above epsilon."""
        randomizer = GaussianHistogramRandomizer(0.5, 1e-3, 2)
        # Construct a report far in the direction distinguishing inputs 0 and 1.
        report = np.array([60.0, -60.0])
        loss = randomizer.privacy_loss(0, 1, report)
        assert loss > 0.5

    def test_typical_loss_is_small(self, rng):
        randomizer = GaussianHistogramRandomizer(0.5, 1e-3, 2)
        losses = randomizer.sample_privacy_losses(0, 1, 500, rng)
        # The 90th percentile of the loss should be within the (eps, delta) regime.
        assert np.quantile(losses, 0.9) < 0.5 + 1e-9

    def test_unbiased_histogram(self, rng):
        randomizer = GaussianHistogramRandomizer(2.0, 1e-4, 4)
        values = rng.integers(0, 4, size=2_000)
        reports = np.stack([randomizer.randomize(int(v), rng) for v in values])
        estimates = randomizer.unbiased_histogram(reports)
        true = np.bincount(values, minlength=4)
        tolerance = 5 * math.sqrt(2_000) * randomizer.sigma
        assert np.abs(estimates - true).max() < tolerance

    def test_delta_recorded(self):
        randomizer = GaussianHistogramRandomizer(1.0, 1e-6, 4)
        assert randomizer.delta == 1e-6
