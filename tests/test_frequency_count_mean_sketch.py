"""Tests for the Count-Mean-Sketch frequency oracle (Apple-style baseline)."""

import numpy as np
import pytest

from repro.frequency.count_mean_sketch import CountMeanSketchOracle
from repro.frequency.hashtogram import HashtogramOracle


class TestCountMeanSketch:
    def test_heavy_element_estimated_accurately(self, rng):
        domain = 1 << 20
        values = rng.integers(0, domain, size=20_000)
        values[:5_000] = 424_242
        oracle = CountMeanSketchOracle(domain, epsilon=2.0)
        oracle.collect(values, rng)
        assert abs(oracle.estimate(424_242) - 5_000) < oracle.expected_error(0.001)

    def test_absent_element_near_zero(self, rng):
        domain = 1 << 18
        values = rng.integers(0, domain // 4, size=10_000)
        oracle = CountMeanSketchOracle(domain, epsilon=2.0)
        oracle.collect(values, rng)
        assert abs(oracle.estimate(domain - 1)) < oracle.expected_error(0.001)

    def test_estimate_many_matches_scalar(self, rng):
        domain = 1 << 14
        oracle = CountMeanSketchOracle(domain, epsilon=1.0, num_hashes=8)
        oracle.collect(rng.integers(0, domain, 4_000), rng)
        queries = [0, 5, 99, domain - 1]
        batch = oracle.estimate_many(queries)
        for query, value in zip(queries, batch, strict=True):
            assert value == pytest.approx(oracle.estimate(query))
        assert oracle.estimate_many([]).size == 0

    def test_memory_independent_of_domain(self, rng):
        small = CountMeanSketchOracle(1 << 10, epsilon=1.0, num_hashes=8,
                                      num_buckets=64)
        large = CountMeanSketchOracle(1 << 24, epsilon=1.0, num_hashes=8,
                                      num_buckets=64)
        values_small = rng.integers(0, 1 << 10, 2_000)
        values_large = rng.integers(0, 1 << 24, 2_000)
        small.collect(values_small, rng)
        large.collect(values_large, rng)
        assert small.server_state_size == large.server_state_size == 8 * 64

    def test_default_buckets_scale_with_sqrt_n(self, rng):
        oracle = CountMeanSketchOracle(1 << 16, epsilon=1.0)
        oracle.collect(rng.integers(0, 1 << 16, 10_000), rng)
        assert 50 <= oracle.num_buckets <= 200

    def test_public_randomness_tracked(self, rng):
        oracle = CountMeanSketchOracle(1 << 16, epsilon=1.0, num_hashes=4)
        oracle.collect(rng.integers(0, 1 << 16, 1_000), rng)
        assert oracle.public_randomness_bits > 0

    def test_requires_collection_and_validates(self, rng):
        oracle = CountMeanSketchOracle(100, epsilon=1.0)
        with pytest.raises(RuntimeError):
            oracle.estimate(0)
        with pytest.raises(ValueError):
            oracle.collect(np.array([100]), rng)
        oracle.collect(rng.integers(0, 100, 500), rng)
        with pytest.raises(ValueError):
            oracle.estimate(101)
        with pytest.raises(ValueError):
            oracle.expected_error(0.0)

    def test_unbiasedness_over_repetitions(self):
        domain = 1 << 14
        base = np.random.default_rng(1)
        values = base.integers(0, domain, size=4_000)
        values[:800] = 777
        estimates = []
        for seed in range(25):
            oracle = CountMeanSketchOracle(domain, epsilon=2.0, num_hashes=8)
            oracle.collect(values, np.random.default_rng(seed))
            estimates.append(oracle.estimate(777))
        mean = float(np.mean(estimates))
        stderr = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean - 800) < 4 * stderr + 10

    def test_comparable_to_hashtogram(self, rng):
        """Both industrial-style oracles should land in the same error regime."""
        domain = 1 << 18
        values = rng.integers(0, domain, size=20_000)
        values[:4_000] = 55_555
        cms = CountMeanSketchOracle(domain, epsilon=1.0)
        hashtogram = HashtogramOracle(domain, epsilon=1.0)
        cms.collect(values, np.random.default_rng(0))
        hashtogram.collect(values, np.random.default_rng(0))
        cms_error = abs(cms.estimate(55_555) - 4_000)
        hashtogram_error = abs(hashtogram.estimate(55_555) - 4_000)
        ceiling = 3 * max(cms.expected_error(0.01), hashtogram.expected_error(0.01))
        assert cms_error < ceiling
        assert hashtogram_error < ceiling
