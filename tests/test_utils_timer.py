"""Tests for repro.utils.timer: Timer and ResourceMeter accounting."""

import pytest

from repro.utils.timer import ResourceMeter, Timer


class TestTimer:
    def test_measures_non_negative_time(self):
        with Timer() as timer:
            total = sum(range(10_000))
        assert total == sum(range(10_000))
        assert timer.elapsed >= 0.0


class TestResourceMeter:
    def test_accumulation(self):
        meter = ResourceMeter()
        meter.add_server_time(0.5)
        meter.add_server_time(0.25)
        meter.add_user_time(1.0)
        meter.add_communication(100)
        meter.add_communication(28)
        meter.add_public_randomness(64)
        meter.observe_server_memory(10)
        meter.observe_server_memory(5)  # smaller value must not shrink the peak
        meter.bump("decodes")
        meter.bump("decodes", 2)

        assert meter.server_time_s == pytest.approx(0.75)
        assert meter.user_time_s == pytest.approx(1.0)
        assert meter.communication_bits == 128
        assert meter.public_randomness_bits == 64
        assert meter.server_memory_items == 10
        assert meter.counters["decodes"] == 3

    def test_per_user_quantities(self):
        meter = ResourceMeter()
        meter.add_communication(1000)
        meter.add_user_time(2.0)
        assert meter.per_user_communication_bits(10) == pytest.approx(100.0)
        assert meter.per_user_time_s(10) == pytest.approx(0.2)

    def test_per_user_rejects_zero_users(self):
        meter = ResourceMeter()
        with pytest.raises(ValueError):
            meter.per_user_communication_bits(0)
        with pytest.raises(ValueError):
            meter.per_user_time_s(0)

    def test_as_dict_contains_counters(self):
        meter = ResourceMeter()
        meter.bump("lists_built", 4)
        flattened = meter.as_dict()
        assert flattened["lists_built"] == 4
        assert set(flattened) >= {
            "server_time_s", "user_time_s", "communication_bits",
            "public_randomness_bits", "server_memory_items",
        }
