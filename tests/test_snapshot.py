"""Durable snapshot round-trips for every registered wire protocol.

The contract under test (``docs/wire-protocol.md`` §6): for any aggregator,

    absorb(S1) -> snapshot -> JSON -> restore -> absorb(S2) -> finalize

is **bit-identical** to ``absorb(S1 + S2) -> finalize`` on an aggregator
that never checkpointed — the snapshot carries exact integer state, and
integers survive JSON exactly.  Also covered: the windowed (epoch-rolled)
collection built on the same state hooks, and the atomic on-disk store.
"""

import json

import numpy as np
import pytest

from repro.baselines.single_hash import SingleHashHeavyHitters
from repro.core.heavy_hitters import PrivateExpanderSketch
from repro.protocol import (
    CountMeanSketchParams,
    ExplicitHistogramParams,
    HashtogramParams,
    RapporParams,
    ServerAggregator,
)
from repro.server.snapshot import (
    SNAPSHOT_MAGIC,
    SnapshotCorruptError,
    SnapshotStore,
    read_snapshot,
    write_snapshot,
)
from repro.server.window import WindowedAggregator

DOMAIN = 1 << 12


def _frequency_cases():
    return [
        ("explicit/hadamard", ExplicitHistogramParams(256, 1.0, "hadamard")),
        ("explicit/oue", ExplicitHistogramParams(64, 1.0, "oue")),
        ("explicit/krr", ExplicitHistogramParams(64, 1.0, "krr")),
        ("hashtogram",
         HashtogramParams.create(DOMAIN, 1.0, num_buckets=16, rng=0)),
        ("cms", CountMeanSketchParams.create(DOMAIN, 1.0, num_hashes=4,
                                             num_buckets=16, rng=0)),
    ]


def _heavy_hitter_cases(num_users):
    expander = PrivateExpanderSketch(domain_size=1 << 16, epsilon=4.0)
    single = SingleHashHeavyHitters(domain_size=1 << 16, epsilon=4.0,
                                    num_repetitions=2)
    return [
        ("expander_sketch",
         expander.public_params(num_users, rng=np.random.default_rng(3))),
        ("single_hash",
         single.public_params(num_users, rng=np.random.default_rng(5))),
    ]


def _two_halves(params, num_users, rng):
    """Two encoded batches covering one population of ``num_users``."""
    values = rng.integers(0, params.domain_size, size=num_users)
    values[: num_users // 4] = params.domain_size // 2  # a planted heavy hitter
    encoder = params.make_encoder()
    half = num_users // 2
    first = encoder.encode_batch(values[:half], np.random.default_rng(21))
    second = encoder.encode_batch(values[half:], np.random.default_rng(22),
                                  first_user_index=half)
    return first, second


def _checkpointed_vs_straight(params, first, second):
    """Finalized outputs of the checkpointed and never-checkpointed paths."""
    checkpointed = params.make_aggregator().absorb_batch(first)
    payload = json.loads(json.dumps(checkpointed.snapshot()))
    restored = ServerAggregator.from_snapshot(payload)
    assert restored.num_reports == len(first)
    restored.absorb_batch(second)
    straight = params.make_aggregator().absorb_batch(first).absorb_batch(second)
    return restored.finalize(), straight.finalize()


class TestAggregatorSnapshotRoundTrip:
    @pytest.mark.parametrize("name,params", _frequency_cases(),
                             ids=[name for name, _ in _frequency_cases()])
    def test_frequency_protocols_bit_identical(self, rng, name, params):
        first, second = _two_halves(params, 4_000, rng)
        restored, straight = _checkpointed_vs_straight(params, first, second)
        queries = np.arange(min(params.domain_size, 256))
        assert np.array_equal(restored.estimate_many(queries),
                              straight.estimate_many(queries))

    def test_rappor_bit_identical(self, rng):
        params = RapporParams.create(512, 2.0, num_bits=64, rng=0)
        first, second = _two_halves(params, 3_000, rng)
        restored, straight = _checkpointed_vs_straight(params, first, second)
        candidates = list(range(64))
        assert np.array_equal(restored.estimate_candidates(candidates),
                              straight.estimate_candidates(candidates))

    @pytest.mark.parametrize("index", [0, 1], ids=["expander", "single_hash"])
    def test_heavy_hitters_bit_identical(self, rng, index):
        num_users = 8_000
        name, params = _heavy_hitter_cases(num_users)[index]
        first, second = _two_halves(params, num_users, rng)
        restored, straight = _checkpointed_vs_straight(params, first, second)
        assert restored.estimates == straight.estimates
        assert restored.candidates == straight.candidates

    def test_snapshot_is_json_safe(self, rng):
        params = HashtogramParams.create(DOMAIN, 1.0, num_buckets=16, rng=0)
        first, _ = _two_halves(params, 2_000, rng)
        payload = params.make_aggregator().absorb_batch(first).snapshot()
        assert payload == json.loads(json.dumps(payload))

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not an aggregator snapshot"):
            ServerAggregator.from_snapshot({"format": "something-else"})

    def test_rejects_wrong_version(self):
        params = ExplicitHistogramParams(16, 1.0)
        payload = params.make_aggregator().snapshot()
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            ServerAggregator.from_snapshot(payload)

    def test_rejects_mismatched_params(self):
        payload = ExplicitHistogramParams(16, 1.0).make_aggregator().snapshot()
        other = ExplicitHistogramParams(32, 1.0).make_aggregator()
        with pytest.raises(ValueError, match="different public parameters"):
            other.restore(payload)

    def test_rejects_truncated_state(self):
        params = ExplicitHistogramParams(16, 1.0)
        payload = params.make_aggregator().snapshot()
        payload["state"]["accumulator"] = payload["state"]["accumulator"][:3]
        with pytest.raises(ValueError, match="shape"):
            ServerAggregator.from_snapshot(payload)


class TestWindowedAggregator:
    def _params(self):
        return ExplicitHistogramParams(64, 1.0, "krr")

    def _batch(self, params, seed, n=500):
        values = np.random.default_rng(seed).integers(0, 64, size=n)
        return params.make_encoder().encode_batch(values,
                                                  np.random.default_rng(seed))

    def test_windowed_merge_equals_manual_merge(self):
        params = self._params()
        windowed = WindowedAggregator(params)
        manual = params.make_aggregator()
        for epoch in range(4):
            batch = self._batch(params, epoch)
            windowed.absorb_batch(batch, epoch)
            manual.absorb_batch(batch)
        assert windowed.epochs == [0, 1, 2, 3]
        assert windowed.num_reports == manual.num_reports
        queries = np.arange(64)
        assert np.array_equal(windowed.finalize().estimate_many(queries),
                              manual.finalize().estimate_many(queries))

    def test_query_window_selects_newest_epochs(self):
        params = self._params()
        windowed = WindowedAggregator(params)
        last_two = params.make_aggregator()
        for epoch in range(4):
            batch = self._batch(params, epoch)
            windowed.absorb_batch(batch, epoch)
            if epoch >= 2:
                last_two.absorb_batch(batch)
        assert windowed.select_epochs(2) == [2, 3]
        queries = np.arange(64)
        assert np.array_equal(windowed.finalize(2).estimate_many(queries),
                              last_two.finalize().estimate_many(queries))

    def test_retention_drops_old_epochs(self):
        params = self._params()
        windowed = WindowedAggregator(params, window=2)
        for epoch in range(5):
            windowed.absorb_batch(self._batch(params, epoch), epoch)
        assert windowed.epochs == [3, 4]
        with pytest.raises(ValueError, match="retention window"):
            windowed.absorb_batch(self._batch(params, 9), epoch=1)

    def test_epoch_gaps_count_numerically(self):
        params = self._params()
        windowed = WindowedAggregator(params, window=3)
        windowed.absorb_batch(self._batch(params, 0), epoch=10)
        windowed.absorb_batch(self._batch(params, 1), epoch=14)
        # 14 - window(3) = 11 > 10: the old epoch falls out despite only two tags.
        assert windowed.epochs == [14]

    def test_empty_window_finalizes_fresh(self):
        params = self._params()
        windowed = WindowedAggregator(params)
        assert windowed.merged().num_reports == 0

    def test_snapshot_round_trip_bit_identical(self):
        params = self._params()
        windowed = WindowedAggregator(params, window=8)
        for epoch in range(3):
            windowed.absorb_batch(self._batch(params, epoch), epoch)
        payload = json.loads(json.dumps(windowed.snapshot()))
        restored = WindowedAggregator.from_snapshot(payload)
        assert restored.window == 8
        assert restored.epochs == windowed.epochs
        extra = self._batch(params, 77)
        windowed.absorb_batch(extra, 3)
        restored.absorb_batch(extra, 3)
        queries = np.arange(64)
        assert np.array_equal(restored.finalize().estimate_many(queries),
                              windowed.finalize().estimate_many(queries))

    def test_snapshot_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a windowed snapshot"):
            WindowedAggregator.from_snapshot({"format": "nope"})


class TestChecksummedContainer:
    """The fixed container every snapshot ships in (wire-protocol §6.2):
    a flipped bit or short read raises the typed
    :class:`SnapshotCorruptError` before any state is parsed."""

    def _payload(self):
        return {"format": "demo", "values": list(range(32)), "n": 7}

    def test_container_header_layout(self, tmp_path):
        import struct
        import zlib

        path = write_snapshot(tmp_path / "snap.json", self._payload())
        raw = path.read_bytes()
        magic, crc, length = struct.unpack_from("<III", raw, 0)
        body = raw[12:]
        assert magic == SNAPSHOT_MAGIC
        assert length == len(body)
        assert crc == zlib.crc32(body)

    @pytest.mark.parametrize("format", ["json", "binary"])
    def test_round_trip_both_encodings(self, tmp_path, format):
        params = HashtogramParams.create(DOMAIN, 1.0, num_buckets=16, rng=0)
        values = np.random.default_rng(0).integers(0, DOMAIN, size=1000)
        batch = params.make_encoder().encode_batch(values,
                                                   np.random.default_rng(1))
        windowed = WindowedAggregator(params)
        windowed.absorb_batch(batch, epoch=0)
        path = write_snapshot(tmp_path / "snap", windowed.snapshot(), format)
        restored = WindowedAggregator.from_snapshot(read_snapshot(path))
        queries = np.arange(256)
        assert np.array_equal(restored.finalize().estimate_many(queries),
                              windowed.finalize().estimate_many(queries))

    def test_flipped_body_byte_is_loud(self, tmp_path):
        path = write_snapshot(tmp_path / "snap.json", self._payload())
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptError, match="checksum mismatch"):
            read_snapshot(path)

    def test_truncated_body_is_loud(self, tmp_path):
        path = write_snapshot(tmp_path / "snap.json", self._payload())
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])
        with pytest.raises(SnapshotCorruptError, match="announces"):
            read_snapshot(path)

    def test_truncated_header_is_loud(self, tmp_path):
        path = write_snapshot(tmp_path / "snap.json", self._payload())
        path.write_bytes(path.read_bytes()[:7])
        with pytest.raises(SnapshotCorruptError, match="truncated"):
            read_snapshot(path)

    def test_corrupt_error_is_a_value_error(self):
        # one except clause catches both on every restore path
        assert issubclass(SnapshotCorruptError, ValueError)

    def test_legacy_headerless_json_still_restores(self, tmp_path):
        # files written before the container existed start with '{' — they
        # must keep restoring through the same entry point
        import json as json_mod

        path = tmp_path / "legacy.json"
        path.write_text(json_mod.dumps(self._payload()))
        assert read_snapshot(path) == self._payload()

    def test_write_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot format"):
            write_snapshot(tmp_path / "snap", {}, format="yaml")


class TestSnapshotStore:
    def test_atomic_write_and_read(self, tmp_path):
        path = write_snapshot(tmp_path / "snap.json", {"a": [1, 2, 3]})
        assert read_snapshot(path) == {"a": [1, 2, 3]}
        assert not (tmp_path / "snap.json.tmp").exists()

    def test_latest_valid_walks_past_corruption(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=4)
        for i in range(3):
            store.save({"seq": i})
        newest = store.latest()
        raw = bytearray(newest.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        newest.write_bytes(bytes(raw))
        # latest() still points at the damaged file; latest_valid() walks
        # back to the newest restorable checkpoint instead
        assert store.latest() == newest
        valid = store.latest_valid()
        assert valid is not None and valid != newest
        path, payload = store.load_latest_valid()
        assert path == valid
        assert payload == {"seq": 1}

    def test_latest_valid_none_when_everything_is_damaged(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        store.save({"seq": 0})
        for path in tmp_path.iterdir():
            path.write_bytes(b"\x52garbage")  # container first byte, bad rest
        assert store.latest_valid() is None
        assert store.load_latest_valid() is None

    def test_sequence_numbers_and_pruning(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        paths = [store.save({"seq": i}) for i in range(4)]
        assert paths[-1].name == "snapshot-000004.json"
        remaining = sorted(p.name for p in tmp_path.iterdir())
        assert remaining == ["snapshot-000003.json", "snapshot-000004.json"]
        assert store.load_latest() == {"seq": 3}

    def test_empty_store(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.latest() is None
        assert store.load_latest() is None
