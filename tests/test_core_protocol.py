"""Tests for the shared HeavyHitterProtocol base class."""

import numpy as np
import pytest

from repro.core.protocol import HeavyHitterProtocol
from repro.core.results import HeavyHitterResult


class TrivialProtocol(HeavyHitterProtocol):
    """Minimal concrete protocol for testing the base-class helpers."""

    name = "trivial"

    def run(self, values, rng=None):
        values = self._validate_values(values)
        counts = np.bincount(values, minlength=self.domain_size)
        estimates = {int(x): float(c) for x, c in enumerate(counts) if c > 0}
        return HeavyHitterResult(estimates=estimates, protocol=self.name,
                                 num_users=int(values.size), epsilon=self.epsilon)


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TrivialProtocol(domain_size=0, epsilon=1.0)
        with pytest.raises(ValueError):
            TrivialProtocol(domain_size=10, epsilon=0.0)

    def test_value_validation(self):
        protocol = TrivialProtocol(domain_size=10, epsilon=1.0)
        with pytest.raises(ValueError):
            protocol.run(np.array([]))
        with pytest.raises(ValueError):
            protocol.run(np.array([10]))
        with pytest.raises(ValueError):
            protocol.run(np.array([-1]))
        with pytest.raises(ValueError):
            protocol.run(np.array([[1, 2], [3, 4]]))

    def test_valid_run(self):
        protocol = TrivialProtocol(domain_size=10, epsilon=1.0)
        result = protocol.run([1, 1, 2])
        assert result.estimates == {1: 2.0, 2: 1.0}


class TestPartitionUsers:
    def test_partition_covers_all_users(self):
        assignment = HeavyHitterProtocol.partition_users(100, 7, rng=0)
        assert assignment.shape == (100,)
        assert set(np.unique(assignment)) == set(range(7))

    def test_partition_sizes_nearly_equal(self):
        assignment = HeavyHitterProtocol.partition_users(103, 10, rng=1)
        sizes = np.bincount(assignment, minlength=10)
        assert sizes.max() - sizes.min() <= 1

    def test_partition_is_random(self):
        a = HeavyHitterProtocol.partition_users(50, 5, rng=0)
        b = HeavyHitterProtocol.partition_users(50, 5, rng=1)
        assert not np.array_equal(a, b)

    def test_partition_deterministic_for_seed(self):
        a = HeavyHitterProtocol.partition_users(50, 5, rng=3)
        b = HeavyHitterProtocol.partition_users(50, 5, rng=3)
        assert np.array_equal(a, b)

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            HeavyHitterProtocol.partition_users(0, 5)
        with pytest.raises(ValueError):
            HeavyHitterProtocol.partition_users(10, 0)
