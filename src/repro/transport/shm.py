"""The same-host shared-memory ring backend (``shm://name``).

One dialed link is a *pair* of single-producer/single-consumer byte rings
— one per direction, so the link is fully duplex — living in two
``multiprocessing.shared_memory`` segments.  Frames travel in the exact
length-prefixed encoding of :mod:`repro.server.framing`; only the carrier
changes: instead of a socket there is a power-of-nothing ring of
``capacity`` data bytes behind a 40-byte header (``docs/wire-protocol.md``
§9)::

    ring_header := magic (u32) version (u32) capacity (u64) head (u64)
                   tail (u64) producer_closed (u32) consumer_closed (u32)

``head`` and ``tail`` are free-running 64-bit byte counters (never
wrapped; positions are taken modulo ``capacity``), each written by exactly
one side: the producer advances ``tail`` after copying bytes in, the
consumer advances ``head`` after copying bytes out.  Those aligned 8-byte
stores are the only cross-process communication — no locks, no futexes,
and **no syscall per frame**; both sides wait by spinning through
``asyncio.sleep(0)`` a bounded number of times and then parking in short
``asyncio.sleep`` naps.  Data moves with ``np.frombuffer`` views over the
segment: one vectorized copy in on the producer, one vectorized copy out
on the consumer (the absorb side's only copy — the binary ``reports``
decode on top of it stays zero-copy).

Accepting works through a *control segment* named by the address
(``shm://name`` ⇒ segment ``name``) holding a slot table::

    ctl_header := magic (u32) version (u32) num_slots (u32) ring_bytes (u32)
    slot       := state (u32) generation (u32)

A dialer claims a free slot by **creating** the two ring segments
``{name}.{slot}.{generation}.{a|b}`` — creation is the atomic part
(``shm_open`` with ``O_CREAT|O_EXCL``), so two dialers racing for one
slot cannot both win — then marks the slot ready; the listener's accept
loop attaches the rings and hands the shims to its connection handler.
When a link dies the listener bumps the slot's generation and frees it,
so recycled slots never reuse a segment name.

The dialing side owns the ring segments and unlinks them on close; every
*attached* segment is explicitly unregistered from the multiprocessing
resource tracker, which would otherwise unlink the peer's segments when
this process exits (CPython's bpo-39959).
"""

from __future__ import annotations

import asyncio
import struct
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Optional, Set, Tuple

import numpy as np

from repro.transport.base import (
    Backend,
    Handler,
    Listener,
    TransportError,
    format_address,
    register_backend,
)

__all__ = ["ShmListener", "RING_MAGIC", "CTL_MAGIC", "RING_VERSION",
           "DEFAULT_RING_BYTES", "DEFAULT_SLOTS"]

#: first field of every ring segment ("RING" in ASCII)
RING_MAGIC = 0x52494E47
#: first field of every control segment ("DOOR" in ASCII)
CTL_MAGIC = 0x444F4F52
#: layout version of both segment kinds
RING_VERSION = 1
#: default per-direction ring capacity, bytes (dial-time override)
DEFAULT_RING_BYTES = 1 << 22
#: default number of connection slots in a control segment
DEFAULT_SLOTS = 64

#: ring segment header: magic, version, capacity, head, tail,
#: producer_closed, consumer_closed (docs/wire-protocol.md §9)
_RING_HEADER = struct.Struct("<IIQQQII")
#: control segment header: magic, version, num_slots, ring_bytes
_CTL_HEADER = struct.Struct("<IIII")
#: one connection slot: state, generation
_SLOT = struct.Struct("<II")

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

# byte offsets of the mutable ring header fields
_HEAD_OFF = 16
_TAIL_OFF = 24
_PRODUCER_CLOSED_OFF = 32
_CONSUMER_CLOSED_OFF = 36

# slot states
_SLOT_FREE = 0
_SLOT_READY = 1
_SLOT_ATTACHED = 2

#: cooperative yields before a waiter starts parking in short naps.  Kept
#: small on purpose: one ``asyncio.sleep(0)`` round-trip through the loop
#: costs tens of microseconds, and on a host where producer and consumer
#: share a core every extra hot yield *steals time from the peer* the
#: waiter is waiting for — long spin budgets measurably slow the link down.
_SPIN_YIELDS = 4
#: parked-poll nap once the spin budget is exhausted, seconds
_PAUSE_S = 0.0005


async def _pause(spins: int) -> None:
    """Futex-free wait step: yield while hot, then park in short naps."""
    if spins < _SPIN_YIELDS:
        await asyncio.sleep(0)
    else:
        await asyncio.sleep(_PAUSE_S)


#: names of segments *created* by this process (it owns their unlink);
#: attaching one of these must not touch the resource tracker, whose
#: per-process cache is a set — a second unregister would underflow it
_OWNED: Set[str] = set()


def _create(name: str, size: int) -> shared_memory.SharedMemory:
    segment = shared_memory.SharedMemory(name=name, create=True, size=size)
    _OWNED.add(name)
    return segment


def _unlink(segment: shared_memory.SharedMemory) -> None:
    _OWNED.discard(segment.name.lstrip("/"))
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


def _attach(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without adopting it.

    CPython registers every opened segment (not just created ones) with
    the multiprocessing resource tracker, whose exit-time cleanup unlinks
    them — pulling segments out from under the peer process that owns
    them (bpo-39959).  Owners unlink explicitly; attachers unregister.
    """
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        raise TransportError(f"no shared-memory segment {name!r}") from None
    if name not in _OWNED:
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # noqa: BLE001 - tracker internals vary by version
            pass
    return segment


class _Ring:
    """One SPSC byte ring inside one shared-memory segment.

    Exactly one process writes ``tail`` (the producer) and exactly one
    writes ``head`` (the consumer); each side only ever *reads* the
    other's counter.  Publication order is copy-then-advance on both
    sides, so a counter a peer can observe always covers bytes that are
    already in (or already out of) the data region.
    """

    def __init__(self, segment: shared_memory.SharedMemory, *,
                 create: bool, capacity: Optional[int] = None) -> None:
        self._segment = segment
        if create:
            if capacity is None or capacity < 1:
                raise ValueError("a created ring needs a positive capacity")
            _RING_HEADER.pack_into(segment.buf, 0, RING_MAGIC, RING_VERSION,
                                   capacity, 0, 0, 0, 0)
        else:
            magic, version, capacity, _, _, _, _ = _RING_HEADER.unpack_from(
                segment.buf, 0)
            if magic != RING_MAGIC or version != RING_VERSION:
                raise TransportError(
                    f"segment {segment.name!r} is not a v{RING_VERSION} "
                    f"transport ring")
        self.capacity = int(capacity)
        self._data: Optional[np.ndarray] = np.frombuffer(
            segment.buf, dtype=np.uint8, offset=_RING_HEADER.size,
            count=self.capacity)

    # -- header fields (aligned single-word loads/stores) ------------------------------

    @property
    def head(self) -> int:
        return _U64.unpack_from(self._segment.buf, _HEAD_OFF)[0]

    @head.setter
    def head(self, value: int) -> None:
        _U64.pack_into(self._segment.buf, _HEAD_OFF, value)

    @property
    def tail(self) -> int:
        return _U64.unpack_from(self._segment.buf, _TAIL_OFF)[0]

    @tail.setter
    def tail(self, value: int) -> None:
        _U64.pack_into(self._segment.buf, _TAIL_OFF, value)

    @property
    def producer_closed(self) -> bool:
        return _U32.unpack_from(self._segment.buf,
                                _PRODUCER_CLOSED_OFF)[0] != 0

    @property
    def consumer_closed(self) -> bool:
        return _U32.unpack_from(self._segment.buf,
                                _CONSUMER_CLOSED_OFF)[0] != 0

    def close_producer(self) -> None:
        # no-op after detach so abort() stays idempotent post-close
        buf = self._segment.buf
        if buf is not None:
            _U32.pack_into(buf, _PRODUCER_CLOSED_OFF, 1)

    def close_consumer(self) -> None:
        buf = self._segment.buf
        if buf is not None:
            _U32.pack_into(buf, _CONSUMER_CLOSED_OFF, 1)

    # -- data movement -----------------------------------------------------------------

    def readable(self) -> int:
        return self.tail - self.head

    def writable(self) -> int:
        return self.capacity - (self.tail - self.head)

    def push(self, view: np.ndarray) -> int:
        """Copy up to ``len(view)`` bytes in; returns the count (0 = full)."""
        n = min(len(view), self.writable())
        if n == 0 or self._data is None:
            return 0
        tail = self.tail
        pos = tail % self.capacity
        first = min(n, self.capacity - pos)
        self._data[pos:pos + first] = view[:first]
        if n > first:
            self._data[:n - first] = view[first:n]
        self.tail = tail + n  # publish only after the copy landed
        return n

    def pull(self, limit: int) -> bytes:
        """Copy up to ``limit`` readable bytes out; ``b""`` when empty."""
        n = min(limit, self.readable())
        if n <= 0 or self._data is None:
            return b""
        head = self.head
        pos = head % self.capacity
        first = min(n, self.capacity - pos)
        if n > first:
            out = np.empty(n, dtype=np.uint8)
            out[:first] = self._data[pos:pos + first]
            out[first:] = self._data[:n - first]
            data = out.tobytes()
        else:
            data = self._data[pos:pos + first].tobytes()
        self.head = head + n  # release only after the copy is out
        return data

    def detach(self) -> None:
        """Drop the mapping (the numpy view must go first, see mmap docs)."""
        self._data = None
        try:
            self._segment.close()
        except BufferError:  # a straggling view pins the mapping; leak it
            pass

    def unlink(self) -> None:
        _unlink(self._segment)


class _Link:
    """One duplex shm link: the two rings plus shared teardown state."""

    def __init__(self, out_ring: _Ring, in_ring: _Ring, *,
                 owns_segments: bool) -> None:
        self.out_ring = out_ring
        self.in_ring = in_ring
        self.owns_segments = owns_segments
        self.closed = False

    def close(self) -> None:
        """Close both directions and release the mappings (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self.out_ring.close_producer()
        self.in_ring.close_consumer()
        if self.owns_segments:
            # the dialer created the segments; their names die with it
            self.out_ring.unlink()
            self.in_ring.unlink()
        self.out_ring.detach()
        self.in_ring.detach()


class RingReader:
    """Duck-typed ``asyncio.StreamReader`` over the link's inbound ring."""

    def __init__(self, link: _Link) -> None:
        self._link = link

    def at_eof(self) -> bool:
        ring = self._link.in_ring
        return self._link.closed or (
            ring.producer_closed and ring.readable() == 0)

    async def read(self, n: int = -1) -> bytes:
        """Read up to ``n`` available bytes; ``b""`` on EOF or local close."""
        if n < 0:
            n = 1 << 16
        ring = self._link.in_ring
        spins = 0
        while True:
            if self._link.closed:
                return b""
            data = ring.pull(n)
            if data:
                return data
            if ring.producer_closed:
                return b""
            await _pause(spins)
            spins += 1

    async def readexactly(self, n: int) -> bytes:
        """Exactly-``n`` read with stream semantics: EOF raises
        :class:`asyncio.IncompleteReadError` carrying the partial bytes
        (empty partial = clean close between frames)."""
        ring = self._link.in_ring
        parts: Optional[bytearray] = None
        have = 0
        spins = 0
        while have < n:
            if self._link.closed:
                raise asyncio.IncompleteReadError(
                    bytes(parts or b""), n)
            data = ring.pull(n - have)
            if data:
                if parts is None and len(data) == n:
                    return data  # hot path: one pull, zero restaging
                if parts is None:
                    parts = bytearray(data)
                else:
                    parts += data
                have = len(parts)
                spins = 0
                continue
            if ring.producer_closed:
                raise asyncio.IncompleteReadError(bytes(parts or b""), n)
            await _pause(spins)
            spins += 1
        return bytes(parts or b"")


class _RingTransport:
    """The ``writer.transport`` shim: ``abort()`` is an immediate reset."""

    def __init__(self, link: _Link) -> None:
        self._link = link

    def abort(self) -> None:
        # a reset must be visible to the peer's *writer* too: closing our
        # consumer side makes their next drain raise ConnectionResetError
        self._link.in_ring.close_producer()
        self._link.close()


class RingWriter:
    """Duck-typed ``asyncio.StreamWriter`` over the link's outbound ring."""

    def __init__(self, link: _Link) -> None:
        self._link = link
        self._buffer = bytearray()
        self.transport = _RingTransport(link)

    def write(self, data: bytes) -> None:
        if self._link.closed:
            return
        if not self._buffer:
            # opportunistic zero-copy push straight from the caller's bytes:
            # a frame that fits never waits for drain() and is never staged
            # through the overflow buffer
            pushed = self._link.out_ring.push(
                np.frombuffer(data, dtype=np.uint8))
            if pushed < len(data):
                self._buffer += memoryview(data)[pushed:]
            return
        self._buffer += data
        # opportunistic push: a frame that fits never waits for drain()
        self._flush_some()

    def _flush_some(self) -> int:
        if not self._buffer:
            return 0
        pushed = self._link.out_ring.push(
            np.frombuffer(self._buffer, dtype=np.uint8))
        if pushed:
            del self._buffer[:pushed]
        return pushed

    async def drain(self) -> None:
        """Block until everything written landed in the ring."""
        ring = self._link.out_ring
        spins = 0
        while self._buffer:
            if self._link.closed or ring.consumer_closed:
                self._buffer.clear()
                raise ConnectionResetError(
                    "shm link closed by peer with frames in flight")
            if self._flush_some():
                spins = 0
                continue
            await _pause(spins)
            spins += 1

    def is_closing(self) -> bool:
        return self._link.closed

    def close(self) -> None:
        # best-effort final flush without blocking, then tear down: the
        # frame vocabulary drains after every reply, so the buffer is
        # normally already empty here
        self._flush_some()
        self._link.close()

    async def wait_closed(self) -> None:
        return None

    def get_extra_info(self, name: str, default: Any = None) -> Any:
        return default


# ----- listener -----------------------------------------------------------------------


class ShmListener(Listener):
    """The accepting side of ``shm://name``: owns the control segment."""

    def __init__(self, handler: Handler, name: str, *,
                 num_slots: int = DEFAULT_SLOTS,
                 ring_bytes: int = DEFAULT_RING_BYTES) -> None:
        super().__init__(format_address("shm", name))
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        self.name = name
        self._handler = handler
        self._num_slots = num_slots
        self._ring_bytes = int(ring_bytes)
        size = _CTL_HEADER.size + num_slots * _SLOT.size
        try:
            self._ctl = _create(name, size)
        except FileExistsError:
            raise TransportError(
                f"shared-memory control segment {name!r} already exists "
                f"(another listener, or a leaked segment in /dev/shm)"
            ) from None
        _CTL_HEADER.pack_into(self._ctl.buf, 0, CTL_MAGIC, RING_VERSION,
                              num_slots, self._ring_bytes)
        for slot in range(num_slots):
            _SLOT.pack_into(self._ctl.buf, _CTL_HEADER.size + slot * _SLOT.size,
                            _SLOT_FREE, 0)
        self._accept_task: Optional[asyncio.Task] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._closed = False

    def start(self) -> None:
        self._accept_task = asyncio.get_running_loop().create_task(
            self._accept_loop())

    # -- slot table --------------------------------------------------------------------

    def _slot(self, index: int) -> Tuple[int, int]:
        return _SLOT.unpack_from(self._ctl.buf,
                                 _CTL_HEADER.size + index * _SLOT.size)

    def _set_slot(self, index: int, state: int, generation: int) -> None:
        _SLOT.pack_into(self._ctl.buf, _CTL_HEADER.size + index * _SLOT.size,
                        state, generation)

    # -- accept loop -------------------------------------------------------------------

    async def _accept_loop(self) -> None:
        # An idle poll, never a hot spin: accept latency is not on the frame
        # hot path, and on a small host every busy yield here competes with
        # the very handlers this listener spawned.  A ticks-over-bytes
        # compare makes the no-dialer tick one memcmp instead of
        # ``num_slots`` struct unpacks.
        table = slice(_CTL_HEADER.size,
                      _CTL_HEADER.size + self._num_slots * _SLOT.size)
        last = b""
        while not self._closed:
            snapshot = bytes(self._ctl.buf[table])
            if snapshot != last:
                expected = bytearray(snapshot)
                for index in range(self._num_slots):
                    state, generation = _SLOT.unpack_from(
                        snapshot, index * _SLOT.size)
                    if state == _SLOT_READY:
                        self._accept(index, generation)
                        # fold our own slot write into the expectation so a
                        # claim racing the re-read still differs next tick
                        _SLOT.pack_into(expected, index * _SLOT.size,
                                        *self._slot(index))
                last = bytes(expected)
            await asyncio.sleep(_PAUSE_S)

    def _accept(self, index: int, generation: int) -> None:
        base = f"{self.name}.{index}.{generation}"
        try:
            # the dialer's ``.a`` ring is our inbound, ``.b`` our outbound
            in_ring = _Ring(_attach(f"{base}.a"), create=False)
            out_ring = _Ring(_attach(f"{base}.b"), create=False)
        except TransportError:
            # the dialer vanished between claiming and our attach; recycle
            self._set_slot(index, _SLOT_FREE, generation + 1)
            return
        self._set_slot(index, _SLOT_ATTACHED, generation)
        link = _Link(out_ring, in_ring, owns_segments=False)
        task = asyncio.get_running_loop().create_task(
            self._run_handler(index, generation, link))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _run_handler(self, index: int, generation: int,
                           link: _Link) -> None:
        try:
            await self._handler(RingReader(link), RingWriter(link))
        finally:
            link.close()
            if not self._closed:
                self._set_slot(index, _SLOT_FREE, generation + 1)

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting and retire the control segment.

        Open links are not torn down here (their handlers own them), but
        the control magic is zeroed first so late dialers fail fast
        instead of parking in a claimed-but-never-accepted slot.
        """
        if self._closed:
            return
        self._closed = True
        _U32.pack_into(self._ctl.buf, 0, 0)
        if self._accept_task is not None:
            self._accept_task.cancel()

    async def wait_closed(self) -> None:
        for task in [self._accept_task, *self._conn_tasks]:
            if task is None:
                continue
            try:
                await task
            except asyncio.CancelledError:
                pass
        try:
            self._ctl.close()
        except BufferError:
            pass
        _unlink(self._ctl)


# ----- backend entry points -----------------------------------------------------------


async def _dial(rest: str, *,
                ring_bytes: Optional[int] = None) -> Tuple[Any, Any]:
    """Claim a slot on the listener named ``rest`` and build the link."""
    ctl = _attach(rest)
    try:
        magic, version, num_slots, default_ring = _CTL_HEADER.unpack_from(
            ctl.buf, 0)
        if magic != CTL_MAGIC or version != RING_VERSION:
            raise TransportError(f"{rest!r} is not a live v{RING_VERSION} "
                                 f"shm listener")
        capacity = int(ring_bytes) if ring_bytes else int(default_ring)
        segment_size = _RING_HEADER.size + capacity
        for index in range(int(num_slots)):
            offset = _CTL_HEADER.size + index * _SLOT.size
            state, generation = _SLOT.unpack_from(ctl.buf, offset)
            if state != _SLOT_FREE:
                continue
            base = f"{rest}.{index}.{generation}"
            # creating the segment is the atomic claim: two dialers racing
            # for one slot cannot both win the O_EXCL create
            try:
                seg_a = _create(f"{base}.a", segment_size)
            except FileExistsError:
                continue
            try:
                seg_b = _create(f"{base}.b", segment_size)
            except FileExistsError:
                seg_a.close()
                _unlink(seg_a)
                continue
            out_ring = _Ring(seg_a, create=True, capacity=capacity)
            in_ring = _Ring(seg_b, create=True, capacity=capacity)
            _SLOT.pack_into(ctl.buf, offset, _SLOT_READY, generation)
            link = _Link(out_ring, in_ring, owns_segments=True)
            return RingReader(link), RingWriter(link)
        raise TransportError(f"shm listener {rest!r} has no free "
                             f"connection slot (num_slots={num_slots})")
    finally:
        ctl.close()


async def _serve(handler: Handler, rest: str, *,
                 num_slots: int = DEFAULT_SLOTS,
                 ring_bytes: int = DEFAULT_RING_BYTES,
                 **options: Any) -> ShmListener:
    listener = ShmListener(handler, rest, num_slots=num_slots,
                           ring_bytes=ring_bytes)
    listener.start()
    return listener


register_backend(Backend(name="shm", dial=_dial, serve=_serve))
