"""The backend contract: addresses, dial/accept, deadlines, close.

A *backend* provides two coroutines:

* ``dial(rest, **options) -> (reader, writer)`` — open one link to the
  endpoint named by the address remainder ``rest``.
* ``serve(handler, rest, **options) -> Listener`` — bind an accept
  endpoint; ``handler(reader, writer)`` is awaited once per accepted link.

``reader`` and ``writer`` are *duck-typed* asyncio streams: a reader needs
``readexactly`` (raising :class:`asyncio.IncompleteReadError` on EOF, with
an empty ``partial`` for a clean between-frames close) and ``read``; a
writer needs ``write`` / ``drain`` / ``close`` / ``wait_closed`` /
``is_closing``.  That surface is exactly what the frame layer and the
server/router connection handlers consume, so every backend plugs into
them unchanged — the TCP backend hands back real
:class:`asyncio.StreamReader` / :class:`asyncio.StreamWriter` pairs, the
shm backend hands back ring shims with the same methods.

:class:`Connection` wraps a dialed pair in the frame-level contract the
conformance suite pins down: ``send``/``recv`` move whole frame payloads,
``recv`` returns ``None`` on a clean peer close, and a ``timeout`` turns a
stalled peer into the builtin :class:`TimeoutError` on every Python
version.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.server.framing import frame_bytes, read_frame_payload

__all__ = [
    "Backend",
    "Connection",
    "Listener",
    "TransportError",
    "backend_names",
    "dial",
    "format_address",
    "get_backend",
    "parse_address",
    "register_backend",
    "serve",
]

#: per-link handler awaited by a listener for every accepted connection
Handler = Callable[[Any, Any], Awaitable[None]]


class TransportError(ConnectionError):
    """A transport endpoint could not be created, dialed, or used.

    Subclasses :class:`ConnectionError` on purpose: every caller that
    already survives a refused/reset TCP peer (the router's recovery
    ladder, the clients' error paths) handles a failed shm link through
    the same ``except OSError`` clauses.
    """


class Listener:
    """One bound accept endpoint of some backend.

    ``close`` stops accepting new links; established connections belong to
    their handlers and are torn down by whoever owns them (mirroring
    ``asyncio.base_events.Server`` semantics).
    """

    def __init__(self, address: str) -> None:
        #: the canonical dialable address, e.g. ``tcp://127.0.0.1:4242``
        self.address = address

    def close(self) -> None:
        raise NotImplementedError

    async def wait_closed(self) -> None:
        raise NotImplementedError


async def _deadline(awaitable: Awaitable[Any], timeout: Optional[float],
                    what: str) -> Any:
    """Await under an optional deadline, normalized to builtin TimeoutError."""
    if timeout is None:
        return await awaitable
    try:
        return await asyncio.wait_for(awaitable, timeout)
    except asyncio.TimeoutError:
        # On 3.10 asyncio.TimeoutError is not the builtin; normalize so
        # callers catch one exception type on every Python version.
        raise TimeoutError(f"{what} timed out after {timeout}s") from None


class Connection:
    """One framed bidirectional link over any backend.

    The conformance contract (``tests/test_transport_conformance.py``):

    * ``send`` frames the payload and applies write backpressure;
    * ``recv`` returns one payload byte-identically, ``None`` on a clean
      peer close, raises :class:`~repro.server.framing.FrameError` on a
      malformed or oversized frame and builtin :class:`TimeoutError` once
      the deadline passes;
    * ``close``/``wait_closed`` release the link; closing is idempotent.
    """

    def __init__(self, reader: Any, writer: Any, address: str) -> None:
        self.reader = reader
        self.writer = writer
        self.address = address

    async def send(self, payload: bytes,
                   timeout: Optional[float] = None) -> None:
        """Frame ``payload`` and write it; drains (applies backpressure)."""
        self.writer.write(frame_bytes(payload))
        await _deadline(self.writer.drain(), timeout,
                        f"frame send on {self.address}")

    async def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """Read one frame payload; ``None`` once the peer closed cleanly."""
        return await _deadline(read_frame_payload(self.reader), timeout,
                               f"frame recv on {self.address}")

    def close(self) -> None:
        self.writer.close()

    async def wait_closed(self) -> None:
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "Connection":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.close()
        await self.wait_closed()


# ----- backend registry ---------------------------------------------------------------


@dataclass(frozen=True)
class Backend:
    """One registered transport: a scheme name plus its two coroutines."""

    name: str
    dial: Callable[..., Awaitable[Tuple[Any, Any]]]
    serve: Callable[..., Awaitable[Listener]]


_BACKENDS: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> None:
    """Register a backend under its scheme name (rejects duplicates)."""
    if backend.name in _BACKENDS:
        raise ValueError(f"transport backend {backend.name!r} is already "
                         f"registered")
    _BACKENDS[backend.name] = backend


def get_backend(name: str) -> Backend:
    if name not in _BACKENDS:
        raise ValueError(f"unknown transport {name!r} "
                         f"(registered: {backend_names()})")
    return _BACKENDS[name]


def backend_names() -> Tuple[str, ...]:
    """The registered scheme names, sorted (CLI choices, test matrix)."""
    return tuple(sorted(_BACKENDS))


def parse_address(address: str) -> Tuple[str, str]:
    """Split ``"scheme://rest"`` and validate the scheme is registered."""
    scheme, sep, rest = address.partition("://")
    if not sep or not scheme or not rest:
        raise ValueError(f"transport address must look like "
                         f"'<scheme>://<endpoint>', got {address!r}")
    get_backend(scheme)
    return scheme, rest


def format_address(scheme: str, rest: str) -> str:
    return f"{scheme}://{rest}"


async def dial(address: str, *, timeout: Optional[float] = None,
               **options: Any) -> Connection:
    """Open one framed link to ``address`` (``tcp://host:port``,
    ``shm://name``); a missing/refusing endpoint raises a
    :class:`ConnectionError` subclass, a stalled one :class:`TimeoutError`."""
    scheme, rest = parse_address(address)
    backend = get_backend(scheme)
    reader, writer = await _deadline(backend.dial(rest, **options), timeout,
                                     f"dial {address}")
    return Connection(reader, writer, address)


async def serve(handler: Handler, address: str, **options: Any) -> Listener:
    """Bind ``address`` and await ``handler(reader, writer)`` per link."""
    scheme, rest = parse_address(address)
    return await get_backend(scheme).serve(handler, rest, **options)
