"""Pluggable transports under the frame protocol.

The frame layer (:mod:`repro.server.framing`) already splits framing from
I/O: ``frame_bytes`` wraps a payload in its length prefix and
``read_frame_payload`` needs nothing from its ``reader`` beyond an async
``readexactly``.  This package supplies the I/O: a *backend* is a way to
dial and accept bidirectional byte links carrying those frames, registered
under a scheme name and addressed as ``"<scheme>://<rest>"``.

Two backends ship (``docs/transport.md``):

* ``tcp`` — the existing asyncio TCP streams (``tcp://host:port``), with
  optional SO_REUSEPORT multi-acceptor listening so several acceptor
  sockets can share one port.
* ``shm`` — a same-host shared-memory link (``shm://name``): one
  single-producer/single-consumer byte ring per direction inside a
  ``multiprocessing.shared_memory`` segment, futex-free spin-then-sleep
  waiting, and no syscall per frame (``docs/wire-protocol.md`` §9).

Every backend upholds the same contract — async frame send/recv, dial and
accept, deadline and close semantics — and is exercised by the
backend-parametrized conformance suite in
``tests/test_transport_conformance.py``; registering a new backend is all
it takes to put it under the same assertions.
"""

from repro.transport.base import (
    Backend,
    Connection,
    Listener,
    TransportError,
    backend_names,
    dial,
    format_address,
    get_backend,
    parse_address,
    register_backend,
    serve,
)
from repro.transport.shm import ShmListener
from repro.transport.tcp import TcpListener, reuseport_sockets

__all__ = [
    "Backend",
    "Connection",
    "Listener",
    "ShmListener",
    "TcpListener",
    "TransportError",
    "backend_names",
    "dial",
    "format_address",
    "get_backend",
    "parse_address",
    "register_backend",
    "reuseport_sockets",
    "serve",
]
