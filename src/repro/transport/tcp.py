"""The TCP backend: asyncio streams behind the transport contract.

``tcp://host:port`` maps straight onto :func:`asyncio.open_connection` /
:func:`asyncio.start_server` — the reader/writer pairs *are* the native
asyncio streams, so this backend adds no indirection on the hot path.

The one extra capability is SO_REUSEPORT multi-acceptor listening:
``serve(..., acceptors=N)`` binds ``N`` listening sockets to the same
``(host, port)`` so the kernel load-balances incoming connections across
acceptors.  In-process that spreads accept work across ``N`` asyncio
server objects; across processes (each shard drain in its own worker)
the same option lets several processes share one ingest port, which is
the multi-core drain path ``docs/transport.md`` describes.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, List, Tuple

from repro.transport.base import (
    Backend,
    Handler,
    Listener,
    TransportError,
    format_address,
    register_backend,
)

__all__ = ["TcpListener", "reuseport_sockets"]


def parse_endpoint(rest: str) -> Tuple[str, int]:
    """Split the ``host:port`` remainder of a ``tcp://`` address."""
    host, sep, port = rest.rpartition(":")
    if not sep or not host:
        raise ValueError(f"tcp address must look like 'tcp://host:port', "
                         f"got {rest!r}")
    return host, int(port)


def reuseport_sockets(host: str, port: int,
                      count: int) -> List[socket.socket]:
    """Bind ``count`` listening sockets to one ``(host, port)``.

    With ``count > 1`` every socket sets ``SO_REUSEPORT`` so the kernel
    accepts on all of them; ``port=0`` binds the first socket ephemerally
    and pins the rest to the port it got.
    """
    if count < 1:
        raise ValueError("acceptor count must be >= 1")
    if count > 1 and not hasattr(socket, "SO_REUSEPORT"):
        raise TransportError("SO_REUSEPORT is not available on this "
                             "platform; use a single acceptor")
    sockets: List[socket.socket] = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            if count > 1:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((host, port))
            sock.listen(128)
            sock.setblocking(False)
            port = sock.getsockname()[1]
            sockets.append(sock)
    except OSError:
        for sock in sockets:
            sock.close()
        raise
    return sockets


class TcpListener(Listener):
    """One or more SO_REUSEPORT acceptor sockets behind one address."""

    def __init__(self, servers: List[asyncio.base_events.Server],
                 host: str, port: int) -> None:
        super().__init__(format_address("tcp", f"{host}:{port}"))
        self.host = host
        self.port = port
        self._servers = servers

    def close(self) -> None:
        for server in self._servers:
            server.close()

    async def wait_closed(self) -> None:
        for server in self._servers:
            await server.wait_closed()


async def _dial(rest: str, **options: Any) -> Tuple[Any, Any]:
    host, port = parse_endpoint(rest)
    return await asyncio.open_connection(host, port)


async def _serve(handler: Handler, rest: str, *, acceptors: int = 1,
                 **options: Any) -> TcpListener:
    host, port = parse_endpoint(rest)
    if acceptors == 1:
        # single-acceptor fast path: identical to pre-transport behavior
        server = await asyncio.start_server(handler, host, port)
        sockname = server.sockets[0].getsockname()
        return TcpListener([server], str(sockname[0]), int(sockname[1]))
    sockets = reuseport_sockets(host, port, acceptors)
    servers: List[asyncio.base_events.Server] = []
    try:
        for sock in sockets:
            servers.append(await asyncio.start_server(handler, sock=sock))
    except OSError:
        for server in servers:
            server.close()
        for sock in sockets[len(servers):]:
            sock.close()
        raise
    sockname = sockets[0].getsockname()
    return TcpListener(servers, str(sockname[0]), int(sockname[1]))


register_backend(Backend(name="tcp", dial=_dial, serve=_serve))
