"""Baseline heavy-hitter protocols and non-private streaming references.

* :class:`SingleHashHeavyHitters` — the reduction of Bassily et al. [3]
  surveyed in Section 3.1.1: one shared hash per repetition, symbol-by-symbol
  reconstruction, and success-probability amplification by repetitions (the
  source of the sub-optimal ``sqrt(log(1/β))`` factor the paper removes).
* :class:`DomainScanHeavyHitters` — a Bassily-Smith-style protocol that builds
  a frequency oracle and scans the whole domain; it reproduces the "runtime at
  least linear in |X|" cost profile Table 1 attributes to [4].
* :class:`RapporHeavyHitters` — the industrial RAPPOR baseline [12]
  (Bloom-filter reports, candidate-set regression decoding).
* :mod:`repro.baselines.nonprivate` — exact counting, Misra-Gries,
  SpaceSaving, CountMin and CountSketch, used for ground truth and to show the
  error floor without privacy.
"""

from repro.baselines.bassily_smith import DomainScanHeavyHitters
from repro.baselines.nonprivate import (
    CountMinSketch,
    CountSketch,
    ExactCounter,
    MisraGries,
    SpaceSaving,
)
from repro.baselines.rappor_hh import RapporHeavyHitters
from repro.baselines.single_hash import SingleHashHeavyHitters

__all__ = [
    "SingleHashHeavyHitters",
    "DomainScanHeavyHitters",
    "RapporHeavyHitters",
    "ExactCounter",
    "MisraGries",
    "SpaceSaving",
    "CountMinSketch",
    "CountSketch",
]
