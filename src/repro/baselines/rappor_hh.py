"""RAPPOR-based heavy hitters: the Google Chrome industrial baseline [12].

The paper's introduction cites RAPPOR as the most prominent deployed LDP
heavy-hitters system.  Its main limitation relative to the paper's protocol is
that decoding requires a *known candidate set* (RAPPOR cannot discover
previously unseen strings), which is exactly the problem the hashing /
list-recovery machinery of Sections 3.1-3.3 solves.  We implement it both as a
comparison point and to exercise the :class:`~repro.randomizers.rappor.BasicRappor`
randomizer end to end.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.protocol import HeavyHitterProtocol
from repro.core.results import HeavyHitterResult
from repro.protocol.rappor import RapporParams
from repro.utils.rng import RandomState, as_generator
from repro.utils.timer import ResourceMeter, Timer
from repro.utils.validation import check_positive_int


class RapporHeavyHitters(HeavyHitterProtocol):
    """Heavy hitters via basic RAPPOR reports and candidate-set regression.

    Parameters
    ----------
    domain_size, epsilon:
        Problem parameters.
    candidates:
        The candidate elements the server will decode against.  If ``None``
        the full domain is used, which is only sensible for small domains —
        reproducing RAPPOR's known-dictionary limitation.
    num_bits, num_hashes:
        Bloom filter configuration of the underlying RAPPOR randomizer.
    threshold:
        Estimated-frequency cut-off below which candidates are dropped from
        the output list (``None`` keeps all non-negative estimates).
    """

    name = "rappor"

    def __init__(self, domain_size: int, epsilon: float,
                 candidates: Optional[Sequence[int]] = None,
                 num_bits: int = 256, num_hashes: int = 2,
                 threshold: Optional[float] = None,
                 max_enumerated_domain: int = 1 << 16) -> None:
        super().__init__(domain_size, epsilon)
        self.num_bits = check_positive_int(num_bits, "num_bits")
        self.num_hashes = check_positive_int(num_hashes, "num_hashes")
        self.threshold = threshold
        if candidates is None:
            if domain_size > max_enumerated_domain:
                raise ValueError(
                    "RAPPOR decoding needs a candidate set; pass `candidates` "
                    f"explicitly for domains larger than {max_enumerated_domain}")
            candidates = range(domain_size)
        self.candidates = [int(c) for c in candidates]

    def public_params(self, rng: RandomState = None) -> RapporParams:
        """Sample the serializable wire parameters (the Bloom hash functions)."""
        return RapporParams.create(self.domain_size, self.epsilon,
                                   num_bits=self.num_bits,
                                   num_hashes=self.num_hashes, rng=rng)

    def run(self, values: Sequence[int], rng: RandomState = None,
            chunk_size: int | None = None) -> HeavyHitterResult:
        """One-shot simulation: ``encode_batch → absorb_batch → finalize``."""
        from repro.engine.engine import encode_concat
        gen = as_generator(rng)
        values = self._validate_values(values)
        num_users = int(values.size)
        meter = ResourceMeter()

        wire = self.public_params(rng=gen)

        with Timer() as user_timer:
            # Each user Bloom-encodes and bit-flips on her own device; the
            # encoder vectorises by value (shared values share Bloom patterns).
            batch = encode_concat(wire, values, gen, chunk_size=chunk_size)
        meter.add_user_time(user_timer.elapsed)
        meter.add_communication(int(wire.report_bits * num_users))
        meter.add_public_randomness(wire.public_randomness_bits)

        with Timer() as ingest_timer:
            aggregator = wire.make_aggregator()
            aggregator.absorb_batch(batch)
        meter.add_server_time(ingest_timer.elapsed)

        with Timer() as server_timer:
            aggregate = aggregator.finalize()
            raw = aggregate.estimate_candidates(self.candidates)
            noise_floor = (self.threshold if self.threshold is not None
                           else 2.0 * np.sqrt(max(num_users, 1)))
            estimates: Dict[int, float] = {
                int(c): float(a) for c, a in zip(self.candidates, raw, strict=True)
                if a >= noise_floor}
        meter.add_server_time(server_timer.elapsed)
        meter.observe_server_memory(self.num_bits + len(self.candidates))

        return HeavyHitterResult(
            estimates=estimates,
            protocol=self.name,
            num_users=num_users,
            epsilon=self.epsilon,
            meter=meter,
            candidates=list(estimates),
            metadata={
                "num_bits": self.num_bits,
                "num_hashes": self.num_hashes,
                "num_candidates": len(self.candidates),
                "noise_floor": float(noise_floor),
                "report_bits": float(wire.report_bits),
                "server_state_size": int(aggregator.state_size),
            },
        )
