"""A Bassily-Smith [4]-style baseline: frequency oracle plus full-domain scan.

Table 1 credits Bassily and Smith (STOC 2015) with the first succinct
histogram protocol attaining the optimal ``sqrt(n log|X|)/ε`` error (up to the
β-dependence), but with server time ``O~(n^{2.5})``, user time ``O~(n^{1.5})``
and — in the simpler variant the paper's introduction alludes to — a runtime
"at least linear in |X|", which is what makes it impractical for large
domains.

This baseline reproduces that cost/accuracy profile in the simplest faithful
way (see DESIGN.md, substitution 4): it builds a Hashtogram frequency oracle
with the full privacy budget, *scans every domain element*, and keeps elements
whose estimate clears the noise floor.  Success amplification uses
``R = Θ(log(1/β))`` repetitions over disjoint user groups with a median
combine, which reproduces the stronger-than-necessary β-dependence of the
pre-[3] constructions.  It is intended to be run on moderate domains only; the
benchmarks use it to populate the Bassily-Smith column of Table 1 and to show
the |X|-scan blow-up empirically.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.core.protocol import HeavyHitterProtocol
from repro.core.results import HeavyHitterResult
from repro.frequency.hashtogram import HashtogramOracle
from repro.utils.rng import RandomState, as_generator
from repro.utils.timer import ResourceMeter, Timer
from repro.utils.validation import check_positive_int, check_probability


class DomainScanHeavyHitters(HeavyHitterProtocol):
    """Frequency-oracle-scan heavy hitters (Bassily-Smith-style baseline).

    Parameters
    ----------
    domain_size, epsilon:
        Problem parameters.  The protocol enumerates all of [0, domain_size),
        so it refuses domains above ``max_scan_domain``.
    beta:
        Target failure probability; drives the repetition count.
    num_repetitions:
        Explicit override of the repetition count.
    max_scan_domain:
        Guard against accidentally scanning astronomically large domains.
    """

    name = "domain_scan_bs"

    def __init__(self, domain_size: int, epsilon: float, beta: float = 0.05,
                 num_repetitions: int | None = None,
                 max_scan_domain: int = 1 << 22) -> None:
        super().__init__(domain_size, epsilon)
        self.beta = check_probability(beta, "beta", allow_zero=False, allow_one=False)
        self.num_repetitions = num_repetitions
        self.max_scan_domain = int(max_scan_domain)
        if domain_size > self.max_scan_domain:
            raise ValueError(
                f"DomainScanHeavyHitters enumerates the domain and refuses "
                f"|X| = {domain_size} > {self.max_scan_domain}; this is the very "
                f"limitation the paper's protocol removes")

    def repetitions_for_beta(self) -> int:
        if self.num_repetitions is not None:
            return check_positive_int(self.num_repetitions, "num_repetitions")
        return max(1, int(round(math.log2(1.0 / self.beta))))

    def run(self, values: Sequence[int], rng: RandomState = None,
            chunk_size: int | None = None) -> HeavyHitterResult:
        gen = as_generator(rng)
        values = self._validate_values(values)
        num_users = int(values.size)
        meter = ResourceMeter()
        repetitions = self.repetitions_for_beta()

        # ----- collection: one oracle per repetition over a disjoint user group -------
        oracles = []
        group_sizes = []
        with Timer() as user_timer:
            assignment = self.partition_users(num_users, repetitions, gen)
            for r in range(repetitions):
                members = values[assignment == r]
                group_sizes.append(int(members.size))
                oracle = HashtogramOracle(self.domain_size, self.epsilon)
                oracle.collect(members, gen, chunk_size=chunk_size)
                oracles.append(oracle)
        meter.add_user_time(user_timer.elapsed)
        meter.add_communication(int(sum(
            o.report_bits * s
            for o, s in zip(oracles, group_sizes, strict=True))))
        meter.add_public_randomness(sum(o.public_randomness_bits for o in oracles))

        # ----- the domain scan (the expensive part) -------------------------------------
        with Timer() as scan_timer:
            all_elements = np.arange(self.domain_size)
            per_rep = np.stack([o.estimate_many(all_elements) for o in oracles])
            # Each repetition only saw n/R users; rescale to the full population
            # before the median combine.
            scales = np.array([num_users / max(s, 1) for s in group_sizes])
            scaled = per_rep * scales[:, None]
            combined = np.median(scaled, axis=0)
            noise_floor = float(np.median(
                [o.expected_error(self.beta) * num_users / max(s, 1)
                 for o, s in zip(oracles, group_sizes, strict=True)]))
            keep = combined >= noise_floor
            estimates: Dict[int, float] = {
                int(x): float(combined[x]) for x in np.nonzero(keep)[0]}
        meter.add_server_time(scan_timer.elapsed)
        meter.observe_server_memory(sum(o.server_state_size for o in oracles)
                                    + self.domain_size)

        return HeavyHitterResult(
            estimates=estimates,
            protocol=self.name,
            num_users=num_users,
            epsilon=self.epsilon,
            meter=meter,
            candidates=list(estimates),
            oracle=oracles[0] if oracles else None,
            metadata={
                "repetitions": repetitions,
                "noise_floor": noise_floor,
                "scanned_domain": self.domain_size,
            },
        )
