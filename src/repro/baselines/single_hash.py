"""The single-hash heavy-hitters reduction of Bassily et al. [3] (Section 3.1.1).

This is the baseline whose error carries the extra ``sqrt(log(1/β))`` factor
the paper's new protocol removes (Theorem 3.3 vs Theorem 3.13).  The
construction surveyed in Section 3.1.1:

* one public hash ``h : X -> [T]`` maps every input to a hash value;
* each domain element is written as M symbols over an alphabet [W];
* for every coordinate m, a frequency oracle over pairs ``(h(x), x[m])``
  lets the server read off, for every hash value t, the most frequent symbol
  in position m, reconstructing a potential heavy hitter x̂(t) symbol by
  symbol;
* because a single hash fails (collides) with constant probability per heavy
  hitter, the whole scheme is repeated ``R = Θ(log(1/β))`` times with
  independent hashes and the candidate sets are united — and it is exactly
  this repetition that costs the extra ``sqrt(log(1/β))`` in the error, since
  the users (and privacy budget) are split across repetitions.

Users are partitioned across (repetition, coordinate) pairs; each user spends
ε/2 on her coordinate report and ε/2 on the final estimation oracle, exactly
mirroring the budget split of PrivateExpanderSketch so that the comparison
isolates the structural difference (one shared hash + repetitions versus
per-coordinate hashes + list-recoverable code).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.core.protocol import HeavyHitterProtocol
from repro.core.results import HeavyHitterResult
from repro.frequency.explicit import ExplicitHistogramOracle
from repro.frequency.hashtogram import HashtogramOracle
from repro.hashing.kwise import KWiseHashFamily
from repro.utils.bits import bits_needed
from repro.utils.rng import RandomState, as_generator
from repro.utils.timer import ResourceMeter, Timer
from repro.utils.validation import check_positive_int, check_probability


class SingleHashHeavyHitters(HeavyHitterProtocol):
    """Bassily et al. [3]-style heavy hitters with repetition-based amplification.

    Parameters
    ----------
    domain_size, epsilon:
        Problem parameters.
    beta:
        Target failure probability; the number of repetitions is
        ``max(1, round(log2(1/β)))`` — the β-dependence of this protocol.
    hash_range:
        Range T of the shared hash (defaults to ``ceil(sqrt(n))`` at run time).
    symbol_bits:
        Number of bits per reconstructed symbol (alphabet W = 2^symbol_bits).
    num_repetitions:
        Explicit override of the repetition count (otherwise derived from β).
    threshold_std:
        Detection threshold in units of the per-cell oracle noise.
    """

    name = "single_hash_bnst"

    def __init__(self, domain_size: int, epsilon: float, beta: float = 0.05,
                 hash_range: int | None = None, symbol_bits: int = 4,
                 num_repetitions: int | None = None,
                 threshold_std: float = 2.0) -> None:
        super().__init__(domain_size, epsilon)
        self.beta = check_probability(beta, "beta", allow_zero=False, allow_one=False)
        self.hash_range = hash_range
        self.symbol_bits = check_positive_int(symbol_bits, "symbol_bits")
        self.num_repetitions = num_repetitions
        self.threshold_std = float(threshold_std)

    # ----- derived dimensions ---------------------------------------------------

    @property
    def alphabet_size(self) -> int:
        return 1 << self.symbol_bits

    @property
    def num_symbols(self) -> int:
        """Number of symbols M needed to spell out one domain element."""
        return max(1, math.ceil(bits_needed(self.domain_size) / self.symbol_bits))

    def repetitions_for_beta(self) -> int:
        if self.num_repetitions is not None:
            return check_positive_int(self.num_repetitions, "num_repetitions")
        return max(1, int(round(math.log2(1.0 / self.beta))))

    # ----- execution ----------------------------------------------------------------

    def run(self, values: Sequence[int], rng: RandomState = None) -> HeavyHitterResult:
        gen = as_generator(rng)
        values = self._validate_values(values)
        num_users = int(values.size)
        meter = ResourceMeter()

        repetitions = self.repetitions_for_beta()
        num_symbols = self.num_symbols
        alphabet = self.alphabet_size
        hash_range = self.hash_range or max(16, int(math.ceil(math.sqrt(num_users))))
        epsilon_stage = self.epsilon / 2.0

        # Decompose every value into its symbols once, vectorised.
        symbols = np.empty((num_users, num_symbols), dtype=np.int64)
        remaining = values.copy()
        for m in range(num_symbols):
            symbols[:, m] = remaining & (alphabet - 1)
            remaining >>= self.symbol_bits

        # ----- public randomness -----------------------------------------------------
        with Timer() as setup_timer:
            family = KWiseHashFamily.create(self.domain_size, hash_range, independence=2)
            hashes = family.sample_many(repetitions, gen)
            groups = self.partition_users(num_users, repetitions * num_symbols, gen)
        meter.bump("setup_time_s", setup_timer.elapsed)
        meter.add_public_randomness(sum(h.description_bits for h in hashes))

        # ----- stage 1: per-(repetition, coordinate) oracles ---------------------------
        cells_per_oracle = hash_range * alphabet
        oracles: List[List[ExplicitHistogramOracle]] = []
        group_sizes: List[int] = []
        with Timer() as user_timer:
            hash_values = np.stack([np.asarray(h(values)) for h in hashes])
            for r in range(repetitions):
                row: List[ExplicitHistogramOracle] = []
                for m in range(num_symbols):
                    group = r * num_symbols + m
                    mask = groups == group
                    members = np.nonzero(mask)[0]
                    group_sizes.append(int(members.size))
                    cells = (hash_values[r, members] * alphabet
                             + symbols[members, m]).astype(np.int64)
                    oracle = ExplicitHistogramOracle(cells_per_oracle, epsilon_stage,
                                                     randomizer="hadamard")
                    oracle.collect(cells, gen)
                    row.append(oracle)
                oracles.append(row)
        meter.add_user_time(user_timer.elapsed)
        meter.add_communication(int(sum(
            oracles[r][m].report_bits * group_sizes[r * num_symbols + m]
            for r in range(repetitions) for m in range(num_symbols))))

        # ----- stage 2: reconstruct one candidate per (repetition, hash value) -----------
        with Timer() as reconstruct_timer:
            candidates: List[int] = []
            seen = set()
            for r in range(repetitions):
                reconstructed = np.zeros(hash_range, dtype=np.int64)
                passes_threshold = np.ones(hash_range, dtype=bool)
                for m in range(num_symbols):
                    oracle = oracles[r][m]
                    size = group_sizes[r * num_symbols + m]
                    cell_std = math.sqrt(max(size, 1)
                                         * oracle.estimator_variance_per_user)
                    table = oracle.histogram().reshape(hash_range, alphabet)
                    best_symbol = table.argmax(axis=1)
                    best_value = table.max(axis=1)
                    passes_threshold &= best_value >= self.threshold_std * cell_std
                    reconstructed |= best_symbol << (m * self.symbol_bits)
                for t in range(hash_range):
                    candidate = int(reconstructed[t])
                    if not passes_threshold[t]:
                        continue
                    if candidate < self.domain_size and candidate not in seen:
                        seen.add(candidate)
                        candidates.append(candidate)
        meter.add_server_time(reconstruct_timer.elapsed)

        # ----- stage 3: final estimation oracle -------------------------------------------
        with Timer() as final_timer:
            final_oracle = HashtogramOracle(self.domain_size, epsilon_stage)
            final_oracle.collect(values, gen)
        meter.add_user_time(final_timer.elapsed)
        meter.add_communication(int(final_oracle.report_bits * num_users))
        meter.add_public_randomness(final_oracle.public_randomness_bits)

        with Timer() as estimate_timer:
            estimates: Dict[int, float] = {}
            if candidates:
                estimated = final_oracle.estimate_many(candidates)
                estimates = {int(x): float(a) for x, a in zip(candidates, estimated)}
        meter.add_server_time(estimate_timer.elapsed)

        meter.observe_server_memory(
            sum(o.server_state_size for row in oracles for o in row)
            + final_oracle.server_state_size)

        return HeavyHitterResult(
            estimates=estimates,
            protocol=self.name,
            num_users=num_users,
            epsilon=self.epsilon,
            meter=meter,
            candidates=candidates,
            oracle=final_oracle,
            metadata={
                "repetitions": repetitions,
                "hash_range": hash_range,
                "num_symbols": num_symbols,
                "alphabet_size": alphabet,
            },
        )
