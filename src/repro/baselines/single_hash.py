"""The single-hash heavy-hitters reduction of Bassily et al. [3] (Section 3.1.1).

This is the baseline whose error carries the extra ``sqrt(log(1/β))`` factor
the paper's new protocol removes (Theorem 3.3 vs Theorem 3.13).  The
construction surveyed in Section 3.1.1:

* one public hash ``h : X -> [T]`` maps every input to a hash value;
* each domain element is written as M symbols over an alphabet [W];
* for every coordinate m, a frequency oracle over pairs ``(h(x), x[m])``
  lets the server read off, for every hash value t, the most frequent symbol
  in position m, reconstructing a potential heavy hitter x̂(t) symbol by
  symbol;
* because a single hash fails (collides) with constant probability per heavy
  hitter, the whole scheme is repeated ``R = Θ(log(1/β))`` times with
  independent hashes and the candidate sets are united — and it is exactly
  this repetition that costs the extra ``sqrt(log(1/β))`` in the error, since
  the users (and privacy budget) are split across repetitions.

Users are round-robin partitioned across (repetition, coordinate) pairs; each
user spends ε/2 on her coordinate report and ε/2 on the final estimation
oracle, exactly mirroring the budget split of PrivateExpanderSketch so that
the comparison isolates the structural difference (one shared hash +
repetitions versus per-coordinate hashes + list-recoverable code).

The wire-level decomposition lives in
:class:`repro.protocol.heavy_hitters.SingleHashParams`; :meth:`run` is the
one-shot simulation built on it.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.protocol import HeavyHitterProtocol
from repro.core.results import HeavyHitterResult
from repro.protocol.heavy_hitters import SingleHashParams
from repro.utils.bits import bits_needed
from repro.utils.rng import RandomState, as_generator
from repro.utils.timer import ResourceMeter, Timer
from repro.utils.validation import check_positive_int, check_probability


class SingleHashHeavyHitters(HeavyHitterProtocol):
    """Bassily et al. [3]-style heavy hitters with repetition-based amplification.

    Parameters
    ----------
    domain_size, epsilon:
        Problem parameters.
    beta:
        Target failure probability; the number of repetitions is
        ``max(1, round(log2(1/β)))`` — the β-dependence of this protocol.
    hash_range:
        Range T of the shared hash (defaults to ``ceil(sqrt(n))`` at run time).
    symbol_bits:
        Number of bits per reconstructed symbol (alphabet W = 2^symbol_bits).
    num_repetitions:
        Explicit override of the repetition count (otherwise derived from β).
    threshold_std:
        Detection threshold in units of the per-cell oracle noise.
    """

    name = "single_hash_bnst"

    def __init__(self, domain_size: int, epsilon: float, beta: float = 0.05,
                 hash_range: int | None = None, symbol_bits: int = 4,
                 num_repetitions: int | None = None,
                 threshold_std: float = 2.0) -> None:
        super().__init__(domain_size, epsilon)
        self.beta = check_probability(beta, "beta", allow_zero=False, allow_one=False)
        self.hash_range = hash_range
        self.symbol_bits = check_positive_int(symbol_bits, "symbol_bits")
        self.num_repetitions = num_repetitions
        self.threshold_std = float(threshold_std)

    # ----- derived dimensions ---------------------------------------------------

    @property
    def alphabet_size(self) -> int:
        return 1 << self.symbol_bits

    @property
    def num_symbols(self) -> int:
        """Number of symbols M needed to spell out one domain element."""
        return max(1, math.ceil(bits_needed(self.domain_size) / self.symbol_bits))

    def repetitions_for_beta(self) -> int:
        if self.num_repetitions is not None:
            return check_positive_int(self.num_repetitions, "num_repetitions")
        return max(1, int(round(math.log2(1.0 / self.beta))))

    # ----- wire parameters ------------------------------------------------------

    def public_params(self, num_users: int,
                      rng: RandomState = None) -> SingleHashParams:
        """Sample the serializable wire parameters for a ``num_users`` run."""
        hash_range = self.hash_range or max(16, int(math.ceil(math.sqrt(num_users))))
        return SingleHashParams.create(
            num_users, self.domain_size, self.epsilon,
            repetitions=self.repetitions_for_beta(),
            num_symbols=self.num_symbols, symbol_bits=self.symbol_bits,
            hash_range=hash_range, threshold_std=self.threshold_std, rng=rng)

    # ----- execution ----------------------------------------------------------------

    def run(self, values: Sequence[int], rng: RandomState = None,
            chunk_size: int | None = None) -> HeavyHitterResult:
        """One-shot simulation: ``encode_batch → absorb_batch → finalize``."""
        from repro.engine.engine import encode_concat
        gen = as_generator(rng)
        values = self._validate_values(values)
        num_users = int(values.size)
        meter = ResourceMeter()

        with Timer() as setup_timer:
            wire = self.public_params(num_users, rng=gen)
        meter.bump("setup_time_s", setup_timer.elapsed)
        meter.add_public_randomness(wire.public_randomness_bits)

        with Timer() as user_timer:
            batch = encode_concat(wire, values, gen, chunk_size=chunk_size)
        meter.add_user_time(user_timer.elapsed)
        meter.add_communication(int(wire.report_bits * num_users))

        with Timer() as ingest_timer:
            aggregator = wire.make_aggregator()
            aggregator.absorb_batch(batch)
        meter.add_server_time(ingest_timer.elapsed)

        with Timer() as finalize_timer:
            result = aggregator.finalize(meter=meter)
        meter.add_server_time(finalize_timer.elapsed)
        return result
