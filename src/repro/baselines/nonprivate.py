"""Non-private streaming heavy-hitter algorithms.

These serve three purposes in the reproduction:

1. ground truth and an error floor for the benchmarks (how well can one do
   with no privacy at all, in comparable space);
2. the algorithmic context of Larsen et al. [22], whose expander sketch is a
   (non-private) streaming heavy-hitters algorithm — Misra-Gries, SpaceSaving,
   CountMin and CountSketch are the standard points of comparison there;
3. reusable substrates (CountSketch in particular shares its hashing/sign
   structure with Hashtogram).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.hashing.kwise import KWiseHashFamily, sign_hash
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int


class ExactCounter:
    """Exact frequency counting (the ground truth every benchmark scores against)."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def update(self, values: Iterable[int]) -> "ExactCounter":
        self._counts.update(int(v) for v in values)
        return self

    def estimate(self, x: int) -> float:
        return float(self._counts.get(int(x), 0))

    def heavy_hitters(self, threshold: float) -> Dict[int, int]:
        return {x: c for x, c in self._counts.items() if c >= threshold}

    def top(self, count: int) -> Dict[int, int]:
        return dict(self._counts.most_common(count))

    @property
    def total(self) -> int:
        return int(sum(self._counts.values()))


class MisraGries:
    """Misra-Gries deterministic heavy hitters with k counters.

    Guarantees: every element with frequency > n/(k+1) is retained, and each
    retained estimate undercounts by at most n/(k+1).
    """

    def __init__(self, num_counters: int) -> None:
        self.num_counters = check_positive_int(num_counters, "num_counters")
        self._counters: Dict[int, int] = {}
        self._processed = 0

    def update(self, values: Iterable[int]) -> "MisraGries":
        for value in values:
            value = int(value)
            self._processed += 1
            if value in self._counters:
                self._counters[value] += 1
            elif len(self._counters) < self.num_counters:
                self._counters[value] = 1
            else:
                for key in list(self._counters):
                    self._counters[key] -= 1
                    if self._counters[key] == 0:
                        del self._counters[key]
        return self

    def estimate(self, x: int) -> float:
        return float(self._counters.get(int(x), 0))

    def candidates(self) -> Dict[int, int]:
        return dict(self._counters)

    @property
    def max_undercount(self) -> float:
        return self._processed / (self.num_counters + 1)


class SpaceSaving:
    """SpaceSaving heavy hitters with k counters (overestimates, never misses)."""

    def __init__(self, num_counters: int) -> None:
        self.num_counters = check_positive_int(num_counters, "num_counters")
        self._counts: Dict[int, int] = {}
        self._overestimate: Dict[int, int] = {}

    def update(self, values: Iterable[int]) -> "SpaceSaving":
        for value in values:
            value = int(value)
            if value in self._counts:
                self._counts[value] += 1
            elif len(self._counts) < self.num_counters:
                self._counts[value] = 1
                self._overestimate[value] = 0
            else:
                victim = min(self._counts, key=self._counts.get)
                victim_count = self._counts.pop(victim)
                self._overestimate.pop(victim)
                self._counts[value] = victim_count + 1
                self._overestimate[value] = victim_count
        return self

    def estimate(self, x: int) -> float:
        return float(self._counts.get(int(x), 0))

    def guaranteed_count(self, x: int) -> float:
        """Lower bound on the true count (estimate minus its overestimation)."""
        x = int(x)
        if x not in self._counts:
            return 0.0
        return float(self._counts[x] - self._overestimate[x])

    def candidates(self) -> Dict[int, int]:
        return dict(self._counts)


class CountMinSketch:
    """CountMin sketch: biased-up frequency estimates in sublinear space."""

    def __init__(self, domain_size: int, width: int, depth: int,
                 rng: RandomState = None) -> None:
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.width = check_positive_int(width, "width")
        self.depth = check_positive_int(depth, "depth")
        gen = as_generator(rng)
        family = KWiseHashFamily.create(domain_size, width, independence=2)
        self._hashes = family.sample_many(depth, gen)
        self._table = np.zeros((depth, width), dtype=np.int64)

    def update(self, values: Sequence[int]) -> "CountMinSketch":
        values = np.asarray(values, dtype=np.int64)
        for row, h in enumerate(self._hashes):
            buckets = np.asarray(h(values))
            np.add.at(self._table[row], buckets, 1)
        return self

    def estimate(self, x: int) -> float:
        x = int(x)
        return float(min(self._table[row, int(h(x))]
                         for row, h in enumerate(self._hashes)))


class CountSketch:
    """CountSketch: unbiased frequency estimates via sign hashes and medians.

    This is the non-private ancestor of Hashtogram's bucket/sign structure.
    """

    def __init__(self, domain_size: int, width: int, depth: int,
                 rng: RandomState = None) -> None:
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.width = check_positive_int(width, "width")
        self.depth = check_positive_int(depth, "depth")
        gen = as_generator(rng)
        family = KWiseHashFamily.create(domain_size, width, independence=2)
        self._hashes = family.sample_many(depth, gen)
        self._signs = [sign_hash(domain_size, gen) for _ in range(depth)]
        self._table = np.zeros((depth, width), dtype=np.int64)

    def update(self, values: Sequence[int]) -> "CountSketch":
        values = np.asarray(values, dtype=np.int64)
        for row, (h, s) in enumerate(zip(self._hashes, self._signs, strict=True)):
            buckets = np.asarray(h(values))
            signs = np.asarray(s(values))
            np.add.at(self._table[row], buckets, signs)
        return self

    def estimate(self, x: int) -> float:
        x = int(x)
        per_row = [self._table[row, int(h(x))] * int(s(x))
                   for row, (h, s) in enumerate(
                       zip(self._hashes, self._signs, strict=True))]
        return float(np.median(per_row))
