"""Wire protocols for the heavy-hitters constructions.

**Paper reference.** :class:`ExpanderSketchParams` is the wire form of
Algorithm PrivateExpanderSketch (Section 3.3) — the paper's main result,
worst-case-optimal error ``O((1/ε) sqrt(n log(|X|/β)))`` simultaneously in
every parameter;  :class:`SingleHashParams` is the single-hash reduction of
Bassily et al. [3] (Section 3.1.1), the baseline it improves on.

**Report size.** Both protocols ship one stage-1 small-domain report at
privacy ε/2 plus one stage-2 Hashtogram report at ε/2 — ``O(log n)`` bits
total with the default Hadamard randomizers (the exact width is
``params.report_bits``).

**Server cost.** One small-domain integer accumulator per coordinate /
(repetition, symbol) group plus the final Hashtogram state; the incremental
aggregators below hold all of them simultaneously (mergeable, snapshotable),
while the one-shot simulation path in :mod:`repro.core.heavy_hitters`
streams one coordinate at a time to keep the paper's peak-memory profile.

Both the paper's :class:`PrivateExpanderSketch` (Section 3.3) and the
single-hash baseline of Bassily et al. [3] decompose into the same wire
shape: every user sends one stage-1 report (a small-domain report on a
derived cell, privacy ε/2) concatenated with one stage-2 report (a Hashtogram
report on the original value, privacy ε/2).  The server's aggregate is a
collection of exact integer small-domain accumulators — one per coordinate or
per (repetition, symbol) group — plus the final Hashtogram accumulator, so
shard aggregators merge bit-exactly.

Coordinate/group assignment is a published pairwise-independent hash of the
public user index — the stateless counterpart of the paper's random user
partition.  Unlike plain round-robin it is not a function of input *order*,
so group membership stays value-independent even when record order correlates
with the held values; the reports themselves carry only the randomized
payloads.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.codes.list_recoverable import (
    ListRecoveryParameters,
    UniqueListRecoverableCode,
)
from repro.core.params import ProtocolParameters
from repro.core.results import HeavyHitterResult
from repro.hashing.kwise import KWiseHash, KWiseHashFamily
from repro.protocol.explicit import ExplicitHistogramParams
from repro.protocol.hashtogram import HashtogramParams
from repro.protocol.wire import (
    ClientEncoder,
    PublicParams,
    ReportBatch,
    ServerAggregator,
    child_state,
    kwise_hash_from_dict,
    kwise_hash_to_dict,
    load_child_state,
    register_protocol,
)
from repro.utils.rng import RandomState, as_generator
from repro.utils.timer import ResourceMeter

_STAGE1_PREFIX = "s1_"
_FINAL_PREFIX = "fin_"

#: domain of the user-index assignment hash (indices are arbitrary client ids)
_ASSIGNMENT_DOMAIN = 1 << 31


def _sample_assignment_hash(num_groups: int, gen) -> KWiseHash:
    """Pairwise-independent hash mapping user indices to groups.

    This is the stateless stand-in for the paper's random partition of [n]:
    each client derives her group from her own (arbitrary) index, and the
    grouping is independent of both the held values and the record order.
    """
    family = KWiseHashFamily.create(_ASSIGNMENT_DOMAIN, num_groups,
                                    independence=2)
    return family.sample(gen)


# --------------------------------------------------------------------------------------
# shared helpers (also used by the streaming simulation paths in core/ and baselines/)
# --------------------------------------------------------------------------------------

def stage1_subbatch(batch: ReportBatch, mask: np.ndarray,
                    stage1_protocol: str) -> ReportBatch:
    """Extract the stage-1 report columns of the masked users."""
    return ReportBatch(stage1_protocol,
                       {key[len(_STAGE1_PREFIX):]: col[mask]
                        for key, col in batch.columns.items()
                        if key.startswith(_STAGE1_PREFIX)})


def final_subbatch(batch: ReportBatch, final_protocol: str) -> ReportBatch:
    """Extract the stage-2 (final-oracle) report columns of every user."""
    return ReportBatch(final_protocol,
                       {key[len(_FINAL_PREFIX):]: col
                        for key, col in batch.columns.items()
                        if key.startswith(_FINAL_PREFIX)})


def append_coordinate_lists(oracle, group_size: int, coordinate: int,
                            code: UniqueListRecoverableCode,
                            params: ProtocolParameters,
                            lists: List[List[List[tuple]]]) -> None:
    """Steps 2-3 of PrivateExpanderSketch for one coordinate.

    For every (b, y) the arg-max over z is taken (step 3a); the pair is kept
    if its estimate clears the detection threshold, largest estimates first,
    up to the list budget ℓ (step 3b).  Fills ``lists[b][coordinate]``.
    """
    num_buckets = params.num_buckets
    hash_range = params.hash_range
    z_size = code.z_alphabet_size
    cell_std = math.sqrt(max(group_size, 1) * oracle.estimator_variance_per_user)
    threshold = params.threshold_std * cell_std
    histogram = oracle.histogram().reshape(num_buckets, hash_range, z_size)
    best_z = histogram.argmax(axis=2)
    best_value = np.take_along_axis(histogram, best_z[:, :, None], axis=2)[:, :, 0]
    # One batched rank over every bucket at once (argsort of a row equals
    # argsort along axis=1, so tie order is unchanged).  The descending sort
    # makes the entries clearing the threshold a prefix of each row, so the
    # old walk-until-below-threshold loop reduces to a per-bucket count.
    order = np.argsort(-best_value, axis=1)
    ranked_value = np.take_along_axis(best_value, order, axis=1)
    ranked_z = np.take_along_axis(best_z, order, axis=1)
    keep = np.minimum((ranked_value >= threshold).sum(axis=1),
                      params.list_size)
    for bucket in range(num_buckets):
        count = int(keep[bucket])
        lists[bucket][coordinate] = [
            (int(y), int(z)) for y, z in zip(order[bucket, :count],
                                             ranked_z[bucket, :count], strict=True)]


def derive_expander_cells(values: np.ndarray, buckets: np.ndarray,
                          chunks: np.ndarray, coordinate: int,
                          code: UniqueListRecoverableCode,
                          params: ProtocolParameters) -> np.ndarray:
    """Map each member's value to its oracle cell ((b, y, z) flattened)."""
    if values.size == 0:
        return values
    hash_range = params.hash_range
    y_values = np.asarray(code.hashes[coordinate](values))
    # Packed z = chunk + prime * (neighbour hashes in base Y), matching
    # UniqueListRecoverableCode._pack_z.
    neighbor_part = np.zeros(values.size, dtype=np.int64)
    for neighbor in reversed(code.expander.neighbors(coordinate)):
        neighbor_part = (neighbor_part * hash_range
                         + np.asarray(code.hashes[neighbor](values)))
    z_values = neighbor_part * code.outer_code.prime + chunks
    cells = (buckets * hash_range + y_values) * code.z_alphabet_size + z_values
    return cells.astype(np.int64)


def decode_candidate_lists(code: UniqueListRecoverableCode,
                           lists: List[List[List[tuple]]],
                           num_buckets: int) -> List[int]:
    """Step 4: decode every partition bucket and union the candidate sets."""
    candidates: List[int] = []
    seen = set()
    for bucket in range(num_buckets):
        for candidate in code.decode(lists[bucket]):
            if candidate not in seen:
                seen.add(candidate)
                candidates.append(candidate)
    return candidates


def _default_final_buckets(num_users: int) -> int:
    return max(16, int(math.ceil(math.sqrt(max(num_users, 1)))))


# --------------------------------------------------------------------------------------
# PrivateExpanderSketch wire protocol
# --------------------------------------------------------------------------------------

@register_protocol
class ExpanderSketchParams(PublicParams):
    """Public randomness and configuration of one PrivateExpanderSketch run.

    Carries the random user partition policy (round-robin on the public user
    index), the partition hash g, the per-coordinate hashes h_m, the
    list-recoverable code (reconstructible from ``code_seed``), and the
    final-stage Hashtogram parameters.
    """

    protocol = "expander_sketch"

    def __init__(self, domain_size: int, epsilon: float,
                 params: ProtocolParameters, partition_hash: KWiseHash,
                 coordinate_hashes: Sequence[KWiseHash], code_seed: int,
                 final: HashtogramParams,
                 assignment_hash: KWiseHash) -> None:
        self.domain_size = int(domain_size)
        self.epsilon = float(epsilon)
        self.params = params
        self.partition_hash = partition_hash
        self.coordinate_hashes = list(coordinate_hashes)
        self.code_seed = int(code_seed)
        self.final = final
        self.assignment_hash = assignment_hash
        self.code = UniqueListRecoverableCode(
            ListRecoveryParameters(
                domain_size=domain_size,
                num_coordinates=params.num_coordinates,
                hash_range=params.hash_range,
                list_size=params.list_size,
                alpha=params.alpha,
                expander_degree=params.expander_degree,
                max_output_size=4 * params.list_size,
            ),
            self.coordinate_hashes,
            rng=np.random.default_rng(self.code_seed),
            rate=params.code_rate,
        )
        self.stage1 = ExplicitHistogramParams(self.num_cells,
                                              params.epsilon_per_stage,
                                              params.oracle_randomizer)
        self._public_randomness_bits = int(
            self.partition_hash.description_bits
            + sum(h.description_bits for h in self.coordinate_hashes)
            + self.assignment_hash.description_bits
            + self.final.public_randomness_bits)

    @classmethod
    def create(cls, num_users: int, domain_size: int, epsilon: float,
               params: ProtocolParameters, rng: RandomState = None
               ) -> "ExpanderSketchParams":
        """Sample all public randomness for a run with ``num_users`` users."""
        gen = as_generator(rng)
        partition_family = KWiseHashFamily.create(
            domain_size, params.num_buckets,
            independence=params.partition_independence)
        partition_hash = partition_family.sample(gen)
        coordinate_family = KWiseHashFamily.create(
            domain_size, params.hash_range, independence=2)
        coordinate_hashes = coordinate_family.sample_many(params.num_coordinates,
                                                          gen)
        code_seed = int(gen.integers(0, 2**63 - 1))
        assignment_hash = _sample_assignment_hash(params.num_coordinates, gen)
        final = HashtogramParams.create(
            domain_size, params.epsilon_per_stage,
            num_repetitions=params.final_oracle_repetitions,
            num_buckets=(params.final_oracle_buckets
                         or _default_final_buckets(num_users)),
            rng=gen)
        return cls(domain_size, epsilon, params, partition_hash,
                   coordinate_hashes, code_seed, final, assignment_hash)

    # ----- serialization ---------------------------------------------------------

    def _payload_dict(self) -> Dict[str, object]:
        return {"domain_size": self.domain_size,
                "epsilon": self.epsilon,
                "parameters": dataclasses.asdict(self.params),
                "partition_hash": kwise_hash_to_dict(self.partition_hash),
                "coordinate_hashes": [kwise_hash_to_dict(h)
                                      for h in self.coordinate_hashes],
                "code_seed": self.code_seed,
                "final": self.final.to_dict(),
                "assignment_hash": kwise_hash_to_dict(self.assignment_hash)}

    @classmethod
    def _from_payload(cls, payload: Dict[str, object]) -> "ExpanderSketchParams":
        return cls(int(payload["domain_size"]), float(payload["epsilon"]),
                   ProtocolParameters(**payload["parameters"]),
                   kwise_hash_from_dict(payload["partition_hash"]),
                   [kwise_hash_from_dict(h)
                    for h in payload["coordinate_hashes"]],
                   int(payload["code_seed"]),
                   HashtogramParams.from_dict(payload["final"]),
                   kwise_hash_from_dict(payload["assignment_hash"]))

    # ----- factories -------------------------------------------------------------

    def make_encoder(self) -> "ExpanderSketchEncoder":
        return ExpanderSketchEncoder(self)

    def make_aggregator(self) -> "ExpanderSketchAggregator":
        return ExpanderSketchAggregator(self)

    # ----- accounting / geometry -------------------------------------------------

    @property
    def num_cells(self) -> int:
        """Per-coordinate oracle domain size B * Y * Z."""
        return (self.params.num_buckets * self.params.hash_range
                * self.code.z_alphabet_size)

    @property
    def report_bits(self) -> float:
        """Stage-1 small-domain report plus stage-2 Hashtogram report."""
        return self.stage1.report_bits + self.final.report_bits

    @property
    def public_randomness_bits(self) -> int:
        """Cached at construction; see the hashtogram note."""
        return self._public_randomness_bits


class ExpanderSketchEncoder(ClientEncoder):
    """Stateless PrivateExpanderSketch client.

    User i (hashed coordinate ``a(i)``, with ``a`` the published assignment
    hash) derives her cell ``(g(x), h_m(x), E~nc(x)_m)``, randomizes it
    through the stage-1 small-domain protocol at ε/2, and additionally
    randomizes her original value through the final-stage Hashtogram at ε/2.
    """

    params: ExpanderSketchParams

    def _draw_user_index(self, gen: np.random.Generator) -> int:
        return int(gen.integers(0, _ASSIGNMENT_DOMAIN))

    def encode_batch(self, values: Sequence[int], rng: RandomState = None,
                     first_user_index: int = 0) -> ReportBatch:
        gen = as_generator(rng)
        params = self.params
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= params.domain_size):
            raise ValueError("values outside the declared domain")
        n = values.size
        indices = (first_user_index + np.arange(n)) % _ASSIGNMENT_DOMAIN
        assignment = np.asarray(params.assignment_hash(indices))
        num_coordinates = params.params.num_coordinates
        partition_values = np.asarray(params.partition_hash(values))
        chunks = params.code.outer_code.encode_batch(values)  # (n, M)
        cells = np.zeros(n, dtype=np.int64)
        for m in range(num_coordinates):
            mask = assignment == m
            if mask.any():
                cells[mask] = derive_expander_cells(
                    values[mask], partition_values[mask], chunks[mask, m], m,
                    params.code, params.params)
        stage1 = params.stage1.make_encoder().encode_batch(cells, gen)
        final = params.final.make_encoder().encode_batch(
            values, gen, first_user_index=first_user_index)
        columns: Dict[str, np.ndarray] = {"coordinate": assignment.astype(np.int64)}
        columns.update({_STAGE1_PREFIX + key: col
                        for key, col in stage1.columns.items()})
        columns.update({_FINAL_PREFIX + key: col
                        for key, col in final.columns.items()})
        return ReportBatch(params.protocol, columns)


class ExpanderSketchAggregator(ServerAggregator):
    """Mergeable server state: M stage-1 accumulators + the final Hashtogram.

    Holding every coordinate accumulator at once is what buys incremental,
    shardable ingestion; the one-shot simulation path in
    :meth:`repro.core.heavy_hitters.PrivateExpanderSketch.run` instead streams
    one coordinate at a time to keep the paper's peak-memory profile.
    """

    params: ExpanderSketchParams

    def __init__(self, params: ExpanderSketchParams) -> None:
        super().__init__(params)
        self._stage1 = [params.stage1.make_aggregator()
                        for _ in range(params.params.num_coordinates)]
        self._final = params.final.make_aggregator()

    def _absorb_columns(self, batch: ReportBatch) -> None:
        coordinates = np.asarray(batch.columns["coordinate"], dtype=np.int64)
        for m in range(self.params.params.num_coordinates):
            mask = coordinates == m
            if mask.any():
                self._stage1[m].absorb_batch(
                    stage1_subbatch(batch, mask, self.params.stage1.protocol))
        self._final.absorb_batch(
            final_subbatch(batch, self.params.final.protocol))

    def _merge_impl(self, other: "ExpanderSketchAggregator"
                    ) -> "ExpanderSketchAggregator":
        merged = ExpanderSketchAggregator(self.params)
        merged._stage1 = [mine.merge(theirs)
                          for mine, theirs
                          in zip(self._stage1, other._stage1, strict=True)]
        merged._final = self._final.merge(other._final)
        return merged

    # ----- snapshots ----------------------------------------------------------------

    def _state_dict(self):
        return {"stage1": [child_state(agg) for agg in self._stage1],
                "final": child_state(self._final)}

    def _load_state(self, state) -> None:
        stage1 = list(state["stage1"])
        if len(stage1) != len(self._stage1):
            raise ValueError(f"snapshot has {len(stage1)} coordinate "
                             f"accumulators, expected {len(self._stage1)}")
        for aggregator, payload in zip(self._stage1, stage1, strict=True):
            load_child_state(aggregator, payload)
        load_child_state(self._final, dict(state["final"]))

    # ----- finalization -------------------------------------------------------------

    def finalize(self, meter: Optional[ResourceMeter] = None,
                 protocol_name: str = "private_expander_sketch"
                 ) -> HeavyHitterResult:
        """Steps 2-5: build the lists, decode every bucket, estimate candidates."""
        params = self.params
        pp = params.params
        meter = meter if meter is not None else ResourceMeter()
        lists: List[List[List[tuple]]] = [
            [[] for _ in range(pp.num_coordinates)]
            for _ in range(pp.num_buckets)]
        group_sizes: List[int] = []
        for m, aggregator in enumerate(self._stage1):
            oracle = aggregator.finalize()
            group_sizes.append(aggregator.num_reports)
            append_coordinate_lists(oracle, aggregator.num_reports, m,
                                    params.code, pp, lists)
        candidates = decode_candidate_lists(params.code, lists, pp.num_buckets)
        final_oracle = self._final.finalize()
        estimates: Dict[int, float] = {}
        if candidates:
            estimated = final_oracle.estimate_many(candidates)
            estimates = {int(x): float(a)
                         for x, a in zip(candidates, estimated, strict=True)}
        meter.observe_server_memory(self.state_size)
        return HeavyHitterResult(
            estimates=estimates,
            protocol=protocol_name,
            num_users=self.num_reports,
            epsilon=params.epsilon,
            meter=meter,
            candidates=candidates,
            oracle=final_oracle,
            metadata={"parameters": pp.describe(),
                      "group_sizes": group_sizes,
                      "num_cells": params.num_cells,
                      "report_bits": params.report_bits,
                      "server_state_size": self.state_size,
                      "list_sizes": [len(per_coord)
                                     for per_bucket in lists
                                     for per_coord in per_bucket]},
        )

    @property
    def state_size(self) -> int:
        return int(sum(agg.state_size for agg in self._stage1)
                   + self._final.state_size)


# --------------------------------------------------------------------------------------
# Single-hash (Bassily et al. [3]) wire protocol
# --------------------------------------------------------------------------------------

@register_protocol
class SingleHashParams(PublicParams):
    """Public parameters of the single-hash baseline of Section 3.1.1.

    One shared hash per repetition, symbol-by-symbol reconstruction; users are
    partitioned over the (repetition, symbol) groups by a published
    pairwise-independent hash of their index.
    """

    protocol = "single_hash_bnst"

    def __init__(self, domain_size: int, epsilon: float, repetitions: int,
                 num_symbols: int, symbol_bits: int, hash_range: int,
                 threshold_std: float, hashes: Sequence[KWiseHash],
                 final: HashtogramParams,
                 assignment_hash: KWiseHash) -> None:
        self.domain_size = int(domain_size)
        self.epsilon = float(epsilon)
        self.repetitions = int(repetitions)
        self.num_symbols = int(num_symbols)
        self.symbol_bits = int(symbol_bits)
        self.hash_range = int(hash_range)
        self.threshold_std = float(threshold_std)
        if len(hashes) != repetitions:
            raise ValueError("need exactly one shared hash per repetition")
        self.hashes = list(hashes)
        self.final = final
        self.assignment_hash = assignment_hash
        self.stage1 = ExplicitHistogramParams(hash_range * self.alphabet_size,
                                              epsilon / 2.0, "hadamard")
        self._public_randomness_bits = int(
            sum(h.description_bits for h in self.hashes)
            + self.assignment_hash.description_bits
            + self.final.public_randomness_bits)

    @property
    def alphabet_size(self) -> int:
        return 1 << self.symbol_bits

    @property
    def num_groups(self) -> int:
        return self.repetitions * self.num_symbols

    @classmethod
    def create(cls, num_users: int, domain_size: int, epsilon: float,
               repetitions: int, num_symbols: int, symbol_bits: int,
               hash_range: int, threshold_std: float = 2.0,
               rng: RandomState = None) -> "SingleHashParams":
        """Sample the shared hashes and the final-oracle randomness."""
        gen = as_generator(rng)
        family = KWiseHashFamily.create(domain_size, hash_range, independence=2)
        hashes = family.sample_many(repetitions, gen)
        assignment_hash = _sample_assignment_hash(repetitions * num_symbols, gen)
        final = HashtogramParams.create(
            domain_size, epsilon / 2.0,
            num_buckets=_default_final_buckets(num_users), rng=gen)
        return cls(domain_size, epsilon, repetitions, num_symbols, symbol_bits,
                   hash_range, threshold_std, hashes, final, assignment_hash)

    # ----- serialization ---------------------------------------------------------

    def _payload_dict(self) -> Dict[str, object]:
        return {"domain_size": self.domain_size,
                "epsilon": self.epsilon,
                "repetitions": self.repetitions,
                "num_symbols": self.num_symbols,
                "symbol_bits": self.symbol_bits,
                "hash_range": self.hash_range,
                "threshold_std": self.threshold_std,
                "hashes": [kwise_hash_to_dict(h) for h in self.hashes],
                "final": self.final.to_dict(),
                "assignment_hash": kwise_hash_to_dict(self.assignment_hash)}

    @classmethod
    def _from_payload(cls, payload: Dict[str, object]) -> "SingleHashParams":
        return cls(int(payload["domain_size"]), float(payload["epsilon"]),
                   int(payload["repetitions"]), int(payload["num_symbols"]),
                   int(payload["symbol_bits"]), int(payload["hash_range"]),
                   float(payload["threshold_std"]),
                   [kwise_hash_from_dict(h) for h in payload["hashes"]],
                   HashtogramParams.from_dict(payload["final"]),
                   kwise_hash_from_dict(payload["assignment_hash"]))

    # ----- factories -------------------------------------------------------------

    def make_encoder(self) -> "SingleHashEncoder":
        return SingleHashEncoder(self)

    def make_aggregator(self) -> "SingleHashAggregator":
        return SingleHashAggregator(self)

    # ----- accounting ------------------------------------------------------------

    @property
    def report_bits(self) -> float:
        return self.stage1.report_bits + self.final.report_bits

    @property
    def public_randomness_bits(self) -> int:
        """Cached at construction; see the hashtogram note."""
        return self._public_randomness_bits

    # ----- helpers ---------------------------------------------------------------

    def symbols_of(self, values: np.ndarray) -> np.ndarray:
        """Decompose every value into its ``num_symbols`` base-W symbols."""
        symbols = np.empty((values.size, self.num_symbols), dtype=np.int64)
        remaining = values.copy()
        for m in range(self.num_symbols):
            symbols[:, m] = remaining & (self.alphabet_size - 1)
            remaining >>= self.symbol_bits
        return symbols


class SingleHashEncoder(ClientEncoder):
    """Stateless single-hash client: hash, pick your symbol, randomize."""

    params: SingleHashParams

    def _draw_user_index(self, gen: np.random.Generator) -> int:
        return int(gen.integers(0, _ASSIGNMENT_DOMAIN))

    def encode_batch(self, values: Sequence[int], rng: RandomState = None,
                     first_user_index: int = 0) -> ReportBatch:
        gen = as_generator(rng)
        params = self.params
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= params.domain_size):
            raise ValueError("values outside the declared domain")
        n = values.size
        indices = (first_user_index + np.arange(n)) % _ASSIGNMENT_DOMAIN
        groups = np.asarray(params.assignment_hash(indices))
        repetition = groups // params.num_symbols
        symbol_index = groups % params.num_symbols
        symbols = params.symbols_of(values)
        cells = np.zeros(n, dtype=np.int64)
        for r in range(params.repetitions):
            mask = repetition == r
            if mask.any():
                hash_values = np.asarray(params.hashes[r](values[mask]))
                cells[mask] = (hash_values * params.alphabet_size
                               + symbols[mask, symbol_index[mask]])
        stage1 = params.stage1.make_encoder().encode_batch(cells, gen)
        final = params.final.make_encoder().encode_batch(
            values, gen, first_user_index=first_user_index)
        columns: Dict[str, np.ndarray] = {"group": groups.astype(np.int64)}
        columns.update({_STAGE1_PREFIX + key: col
                        for key, col in stage1.columns.items()})
        columns.update({_FINAL_PREFIX + key: col
                        for key, col in final.columns.items()})
        return ReportBatch(params.protocol, columns)


class SingleHashAggregator(ServerAggregator):
    """One stage-1 accumulator per (repetition, symbol) group + final oracle."""

    params: SingleHashParams

    def __init__(self, params: SingleHashParams) -> None:
        super().__init__(params)
        self._stage1 = [params.stage1.make_aggregator()
                        for _ in range(params.num_groups)]
        self._final = params.final.make_aggregator()

    def _absorb_columns(self, batch: ReportBatch) -> None:
        groups = np.asarray(batch.columns["group"], dtype=np.int64)
        for g in range(self.params.num_groups):
            mask = groups == g
            if mask.any():
                self._stage1[g].absorb_batch(
                    stage1_subbatch(batch, mask, self.params.stage1.protocol))
        self._final.absorb_batch(
            final_subbatch(batch, self.params.final.protocol))

    def _merge_impl(self, other: "SingleHashAggregator") -> "SingleHashAggregator":
        merged = SingleHashAggregator(self.params)
        merged._stage1 = [mine.merge(theirs)
                          for mine, theirs
                          in zip(self._stage1, other._stage1, strict=True)]
        merged._final = self._final.merge(other._final)
        return merged

    # ----- snapshots ----------------------------------------------------------------

    def _state_dict(self):
        return {"stage1": [child_state(agg) for agg in self._stage1],
                "final": child_state(self._final)}

    def _load_state(self, state) -> None:
        stage1 = list(state["stage1"])
        if len(stage1) != len(self._stage1):
            raise ValueError(f"snapshot has {len(stage1)} group accumulators, "
                             f"expected {len(self._stage1)}")
        for aggregator, payload in zip(self._stage1, stage1, strict=True):
            load_child_state(aggregator, payload)
        load_child_state(self._final, dict(state["final"]))

    # ----- finalization -------------------------------------------------------------

    def reconstruct_candidates(self) -> List[int]:
        """Stage 2: per repetition, rebuild one candidate per hash value."""
        params = self.params
        candidates: List[int] = []
        seen = set()
        for r in range(params.repetitions):
            reconstructed = np.zeros(params.hash_range, dtype=np.int64)
            passes_threshold = np.ones(params.hash_range, dtype=bool)
            for m in range(params.num_symbols):
                aggregator = self._stage1[r * params.num_symbols + m]
                oracle = aggregator.finalize()
                size = aggregator.num_reports
                cell_std = math.sqrt(max(size, 1)
                                     * oracle.estimator_variance_per_user)
                table = oracle.histogram().reshape(params.hash_range,
                                                   params.alphabet_size)
                best_symbol = table.argmax(axis=1)
                best_value = table.max(axis=1)
                passes_threshold &= best_value >= params.threshold_std * cell_std
                reconstructed |= best_symbol << (m * params.symbol_bits)
            # Batched filter over all hash values at once; the survivors are
            # walked in hash-value order, matching the old scalar loop.
            valid = passes_threshold & (reconstructed < params.domain_size)
            for candidate in reconstructed[valid].tolist():
                if candidate not in seen:
                    seen.add(candidate)
                    candidates.append(candidate)
        return candidates

    def finalize(self, meter: Optional[ResourceMeter] = None
                 ) -> HeavyHitterResult:
        params = self.params
        meter = meter if meter is not None else ResourceMeter()
        candidates = self.reconstruct_candidates()
        final_oracle = self._final.finalize()
        estimates: Dict[int, float] = {}
        if candidates:
            estimated = final_oracle.estimate_many(candidates)
            estimates = {int(x): float(a)
                         for x, a in zip(candidates, estimated, strict=True)}
        meter.observe_server_memory(self.state_size)
        return HeavyHitterResult(
            estimates=estimates,
            protocol=params.protocol,
            num_users=self.num_reports,
            epsilon=params.epsilon,
            meter=meter,
            candidates=candidates,
            oracle=final_oracle,
            metadata={"repetitions": params.repetitions,
                      "hash_range": params.hash_range,
                      "num_symbols": params.num_symbols,
                      "alphabet_size": params.alphabet_size,
                      "report_bits": params.report_bits,
                      "server_state_size": self.state_size},
        )

    @property
    def state_size(self) -> int:
        return int(sum(agg.state_size for agg in self._stage1)
                   + self._final.state_size)


__all__ = [
    "ExpanderSketchParams",
    "ExpanderSketchEncoder",
    "ExpanderSketchAggregator",
    "SingleHashParams",
    "SingleHashEncoder",
    "SingleHashAggregator",
    "append_coordinate_lists",
    "derive_expander_cells",
    "decode_candidate_lists",
    "stage1_subbatch",
    "final_subbatch",
]
