"""Zero-copy binary columnar codec for report batches and aggregator state.

The JSON wire form of :class:`~repro.protocol.wire.ReportBatch`
(``to_dict("b64")``) pays three taxes per batch: a ``json.dumps`` pass, a
base64 inflation of 4/3 on every column, and a ``json.loads`` + base64 pass
on the server before a single report is absorbed.  At 1M hashtogram reports
that is ~22.7 MB on the wire and the dominant cost of sustained ingest
(``BENCH_server.json``), while ``absorb_batch`` itself runs an order of
magnitude faster.  This module removes the serialization layer entirely:

* **Encoding** writes each column as ``(name, dtype, shape, raw
  little-endian bytes)`` behind a fixed ``struct`` header — no JSON, no
  base64.  Integer columns are first narrowed to the smallest integer dtype
  that holds their value range (a hashtogram report shrinks from 17 raw
  bytes to 4), which is what buys the ≥3× wire reduction over b64-JSON.
* **Decoding** is a handful of ``struct.unpack_from`` calls plus one
  ``np.frombuffer`` per column: every decoded column is a **read-only
  zero-copy view** over the received buffer.  Aggregators absorb these
  views directly (they only ever read report columns), so server-side
  ingest is decode-free.
* The same container (``pack_state`` / ``unpack_state``) ships **aggregator
  state**: a JSON skeleton in which every integer array is replaced by a
  reference into the binary column table.  The multiprocess engine uses it
  for the worker→parent result channel (avoiding a public-parameter
  round-trip per worker) and :class:`~repro.server.snapshot.SnapshotStore`
  for binary snapshot files.

Frame layout (normative; also specified in ``docs/wire-protocol.md`` §8)::

    payload := header body
    header  := magic=0xB1 (u8) version=1 (u8) kind (u8) flags (u8)

    kind=1 (reports) body:
        epoch (i64) num_reports (u64) proto_len (u16) num_columns (u16)
        route (i64, present iff flags & FLAG_ROUTED)
        seq (u64, present iff flags & FLAG_SEQUENCED)
        protocol (utf-8)
        column table: { name_len (u16) name (utf-8)
                        dtype_len (u8) dtype (ascii, numpy form e.g. "<i8")
                        ndim (u8) shape (u64 * ndim)
                        offset (u64) nbytes (u64) } * num_columns
        data region: one blob per column at its announced offset,
                     8-byte aligned, little-endian C order

    kind=2 (state) body:
        skeleton_len (u32) num_columns (u32)
        skeleton (utf-8 JSON; arrays replaced by {"__repro_column__": i})
        column table (as above, without names)
        data region (as above)

All multi-byte header fields are little-endian.  The magic byte ``0xB1``
can never open a JSON frame payload (those start with ``{`` = 0x7B), which
is how :mod:`repro.server.framing` tells the two frame classes apart
without negotiation state.

The write side validates the *announced* total frame size against the
caller's limit **before serializing anything** (the legacy JSON path could
only discover an oversized frame after materializing the full payload);
the read side validates every announced offset, length, and shape before
touching column data, so truncated or corrupted frames fail loudly with
:class:`BinaryFormatError` rather than decoding garbage.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.protocol.wire import ReportBatch

__all__ = [
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "BinaryFormatError",
    "FLAG_ROUTED",
    "FLAG_SEQUENCED",
    "KIND_REPORTS",
    "KIND_STATE",
    "decode_reports_payload",
    "encode_reports_payload",
    "is_binary_payload",
    "pack_state",
    "peek_reports_header",
    "stamp_sequence",
    "unpack_state",
]

#: first byte of every binary payload; JSON frame payloads start with ``{``
BINARY_MAGIC = 0xB1
#: layout version; bumped on any breaking change to the frame layout
BINARY_VERSION = 1
#: payload kind: a ReportBatch frame
KIND_REPORTS = 1
#: payload kind: a packed state container (snapshots, engine results)
KIND_STATE = 2
#: header flag (kind=1 only): a shard-routing key (i64) follows the fixed
#: reports header — see ``docs/wire-protocol.md`` §8.1
FLAG_ROUTED = 0x01
#: header flag (kind=1 only): a delivery sequence number (u64) follows the
#: fixed reports header (after the route field when both flags are set) —
#: see ``docs/wire-protocol.md`` §7.1
FLAG_SEQUENCED = 0x02

_HEADER = struct.Struct("<BBBB")
_REPORTS_FIXED = struct.Struct("<qQHH")
_ROUTE_FIELD = struct.Struct("<q")
_SEQ_FIELD = struct.Struct("<Q")
_STATE_FIXED = struct.Struct("<II")
_ALIGNMENT = 8
_KNOWN_FLAGS = {KIND_REPORTS: FLAG_ROUTED | FLAG_SEQUENCED, KIND_STATE: 0}

#: value-preserving narrowing ladder, smallest first; unsigned wins ties
_NARROW_CANDIDATES = tuple(np.dtype(code) for code in
                           ("u1", "i1", "<u2", "<i2", "<u4", "<i4"))


class BinaryFormatError(ValueError):
    """A malformed binary payload: bad magic/version, an announced offset or
    shape that does not fit the buffer, or a frame exceeding the size limit."""


def is_binary_payload(payload: bytes) -> bool:
    """True when ``payload`` opens with the binary magic byte."""
    return len(payload) >= 1 and payload[0] == BINARY_MAGIC


# --------------------------------------------------------------------------------------
# column helpers
# --------------------------------------------------------------------------------------

def _wire_dtype(col: np.ndarray) -> np.dtype:
    """Smallest little-endian dtype that holds the column's values.

    The choice depends only on the values, so re-encoding a decoded batch
    reproduces the original bytes exactly.  Non-integer and empty columns
    keep their dtype (byte-swapped to little-endian if necessary).
    """
    dtype = col.dtype
    if dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
        dtype = dtype.newbyteorder("<")
    if dtype.kind not in "iu" or col.size == 0:
        return dtype
    lo, hi = int(col.min()), int(col.max())
    for candidate in _NARROW_CANDIDATES:
        if candidate.itemsize >= dtype.itemsize:
            break
        info = np.iinfo(candidate)
        if info.min <= lo and hi <= info.max:
            return candidate
    return dtype


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


class _ColumnSpec:
    """One column's announced layout, computed before any serialization."""

    __slots__ = ("name", "array", "dtype", "shape", "offset", "nbytes")

    def __init__(self, name: str, array: np.ndarray) -> None:
        self.name = name
        self.array = array
        self.dtype = _wire_dtype(array)
        self.shape = tuple(int(s) for s in array.shape)
        self.nbytes = int(self.dtype.itemsize * array.size)
        self.offset = 0  # assigned once the table size is known

    @property
    def dtype_bytes(self) -> bytes:
        return self.dtype.str.encode("ascii")

    def table_size(self, named: bool) -> int:
        size = 1 + len(self.dtype_bytes) + 1 + 8 * len(self.shape) + 16
        if named:
            size += 2 + len(self.name.encode("utf-8"))
        return size


def _layout(specs: Sequence[_ColumnSpec], table_start: int,
            named: bool) -> int:
    """Assign aligned data offsets; returns the total payload size."""
    offset = table_start + sum(spec.table_size(named) for spec in specs)
    for spec in specs:
        offset = _align(offset)
        spec.offset = offset
        offset += spec.nbytes
    return offset


def _write_columns(out: bytearray, pos: int, specs: Sequence[_ColumnSpec],
                   named: bool) -> None:
    for spec in specs:
        if named:
            name = spec.name.encode("utf-8")
            struct.pack_into("<H", out, pos, len(name))
            pos += 2
            out[pos:pos + len(name)] = name
            pos += len(name)
        dtype_bytes = spec.dtype_bytes
        struct.pack_into("<B", out, pos, len(dtype_bytes))
        pos += 1
        out[pos:pos + len(dtype_bytes)] = dtype_bytes
        pos += len(dtype_bytes)
        struct.pack_into("<B", out, pos, len(spec.shape))
        pos += 1
        for dim in spec.shape:
            struct.pack_into("<Q", out, pos, dim)
            pos += 8
        struct.pack_into("<QQ", out, pos, spec.offset, spec.nbytes)
        pos += 16
        data = np.ascontiguousarray(spec.array, dtype=spec.dtype)
        out[spec.offset:spec.offset + spec.nbytes] = data.tobytes()


class _Reader:
    """Bounds-checked cursor over a received payload."""

    def __init__(self, payload: bytes) -> None:
        self.payload = payload
        self.pos = 0

    def unpack(self, fmt: struct.Struct) -> tuple:
        if self.pos + fmt.size > len(self.payload):
            raise BinaryFormatError("truncated binary payload: header ends "
                                    "past the frame")
        values = fmt.unpack_from(self.payload, self.pos)
        self.pos += fmt.size
        return values

    def take(self, count: int, what: str) -> bytes:
        if count < 0 or self.pos + count > len(self.payload):
            raise BinaryFormatError(f"truncated binary payload: {what} ends "
                                    f"past the frame")
        data = bytes(self.payload[self.pos:self.pos + count])
        self.pos += count
        return data


def _read_column(reader: _Reader, named: bool) -> Tuple[str, np.ndarray]:
    name = ""
    if named:
        (name_len,) = reader.unpack(struct.Struct("<H"))
        name = reader.take(name_len, "column name").decode("utf-8")
    (dtype_len,) = reader.unpack(struct.Struct("<B"))
    dtype_str = reader.take(dtype_len, "column dtype").decode("ascii")
    try:
        dtype = np.dtype(dtype_str)
    except TypeError as exc:
        raise BinaryFormatError(f"invalid column dtype {dtype_str!r}") from exc
    if dtype.hasobject or dtype.kind not in "iufb":
        raise BinaryFormatError(f"unsupported column dtype {dtype_str!r}")
    (ndim,) = reader.unpack(struct.Struct("<B"))
    shape = tuple(reader.unpack(struct.Struct("<Q"))[0] for _ in range(ndim))
    offset, nbytes = reader.unpack(struct.Struct("<QQ"))
    count = 1
    for dim in shape:  # exact Python ints: announced dims cannot overflow
        count *= dim
    if count * dtype.itemsize != nbytes:
        raise BinaryFormatError(
            f"column {name or dtype_str!r}: announced {nbytes} bytes do not "
            f"match shape {shape} of dtype {dtype_str}")
    if offset + nbytes > len(reader.payload):
        raise BinaryFormatError(
            f"column {name or dtype_str!r}: announced data "
            f"[{offset}, {offset + nbytes}) lies past the frame")
    column = np.frombuffer(reader.payload, dtype=dtype, count=count,
                           offset=offset).reshape(shape)
    if column.flags.writeable:  # pragma: no cover - bytearray-backed buffers
        column.flags.writeable = False
    return name, column


# --------------------------------------------------------------------------------------
# report batches (kind = 1)
# --------------------------------------------------------------------------------------

def encode_reports_payload(batch: ReportBatch, epoch: int = 0,
                           max_bytes: Optional[int] = None,
                           route: Optional[int] = None,
                           seq: Optional[int] = None) -> bytes:
    """Serialize one batch (plus its epoch tag) to a binary frame payload.

    ``max_bytes`` is enforced against the *announced* size before any
    column bytes are written, so an oversized batch costs a header
    computation, not a full serialization pass.  A non-``None`` ``route``
    sets :data:`FLAG_ROUTED` and appends the shard-routing key (i64) to the
    fixed header — a cluster router reads it with
    :func:`peek_reports_header` and forwards the payload verbatim, without
    decoding a single column.  A non-``None`` ``seq`` sets
    :data:`FLAG_SEQUENCED` and appends the delivery sequence number (u64)
    the router uses for exact redelivery detection after journal replay;
    normal senders leave it unset and let the router stamp forwarded frames
    (:func:`stamp_sequence`).
    """
    specs = [_ColumnSpec(name, col) for name, col in batch.columns.items()]
    proto = batch.protocol.encode("utf-8")
    if len(proto) > 0xFFFF or len(specs) > 0xFFFF:
        raise BinaryFormatError("protocol tag or column count exceeds the "
                                "binary frame limits")
    if seq is not None and not 0 <= int(seq) < 1 << 64:
        raise BinaryFormatError(f"sequence number {seq} does not fit u64")
    flags = ((0 if route is None else FLAG_ROUTED)
             | (0 if seq is None else FLAG_SEQUENCED))
    route_size = 0 if route is None else _ROUTE_FIELD.size
    seq_size = 0 if seq is None else _SEQ_FIELD.size
    table_start = (_HEADER.size + _REPORTS_FIXED.size + route_size + seq_size
                   + len(proto))
    total = _layout(specs, table_start, named=True)
    if max_bytes is not None and total > max_bytes:
        raise BinaryFormatError(
            f"announced binary frame payload of {total} bytes exceeds the "
            f"{max_bytes}-byte limit")
    out = bytearray(total)
    _HEADER.pack_into(out, 0, BINARY_MAGIC, BINARY_VERSION, KIND_REPORTS,
                      flags)
    _REPORTS_FIXED.pack_into(out, _HEADER.size, int(epoch), len(batch),
                             len(proto), len(specs))
    pos = _HEADER.size + _REPORTS_FIXED.size
    if route is not None:
        _ROUTE_FIELD.pack_into(out, pos, int(route))
        pos += _ROUTE_FIELD.size
    if seq is not None:
        _SEQ_FIELD.pack_into(out, pos, int(seq))
        pos += _SEQ_FIELD.size
    out[pos:pos + len(proto)] = proto
    _write_columns(out, table_start, specs, named=True)
    return bytes(out)


def _check_header(reader: _Reader, expected_kind: int) -> int:
    """Validate magic/version/kind; returns the (validated) flags byte."""
    magic, version, kind, flags = reader.unpack(_HEADER)
    if magic != BINARY_MAGIC:
        raise BinaryFormatError(f"not a binary payload (magic 0x{magic:02x})")
    if version != BINARY_VERSION:
        raise BinaryFormatError(f"unsupported binary format version {version} "
                                f"(expected {BINARY_VERSION})")
    if kind != expected_kind:
        raise BinaryFormatError(f"unexpected binary payload kind {kind} "
                                f"(expected {expected_kind})")
    if flags & ~_KNOWN_FLAGS[expected_kind]:
        raise BinaryFormatError(f"unknown header flags 0x{flags:02x} for "
                                f"payload kind {kind}")
    return flags


def _read_reports_fixed(reader: _Reader) -> Tuple[int, Optional[int],
                                                  Optional[int], int,
                                                  int, int]:
    """Header + fixed fields of a reports payload: ``(epoch, route, seq,
    num_reports, proto_len, num_columns)``."""
    flags = _check_header(reader, KIND_REPORTS)
    epoch, num_reports, proto_len, num_columns = reader.unpack(_REPORTS_FIXED)
    route: Optional[int] = None
    if flags & FLAG_ROUTED:
        (route,) = reader.unpack(_ROUTE_FIELD)
        route = int(route)
    seq: Optional[int] = None
    if flags & FLAG_SEQUENCED:
        (seq,) = reader.unpack(_SEQ_FIELD)
        seq = int(seq)
    return int(epoch), route, seq, int(num_reports), proto_len, num_columns


def peek_reports_header(payload: bytes) -> Dict[str, object]:
    """Read only the fixed header of a binary reports payload.

    Returns ``{"epoch", "route", "seq", "num_reports", "protocol"}`` without
    touching the column table or the data region — this is the routing fast
    path: a cluster router peeks a few dozen bytes, picks a shard, and
    forwards the payload bytes untouched.
    """
    try:
        reader = _Reader(payload)
        epoch, route, seq, num_reports, proto_len, _ = \
            _read_reports_fixed(reader)
        protocol = reader.take(proto_len, "protocol tag").decode("utf-8")
    except (struct.error, UnicodeDecodeError) as exc:
        raise BinaryFormatError(f"malformed binary payload: {exc}") from exc
    return {"epoch": epoch, "route": route, "seq": seq,
            "num_reports": num_reports, "protocol": protocol}


def stamp_sequence(payload: bytes, seq: int) -> bytes:
    """Return a copy of a kind-1 payload carrying delivery sequence ``seq``.

    This is the router's redelivery-detection primitive: a forwarded
    ``reports`` payload is stamped once, journaled *stamped*, and any
    journal replay redelivers byte-identical frames, so a shard can drop
    already-absorbed duplicates exactly (``docs/wire-protocol.md`` §7.1).
    Stamping an unsequenced payload inserts the 8-byte seq field after the
    fixed fields (and the route field, when present) and shifts every
    column-table offset by 8 — offsets stay 8-byte aligned because the
    field width equals the alignment unit.  Stamping an already-sequenced
    payload overwrites the field in place (same length, same offsets).
    """
    if not 0 <= int(seq) < 1 << 64:
        raise BinaryFormatError(f"sequence number {seq} does not fit u64")
    reader = _Reader(payload)
    flags = _check_header(reader, KIND_REPORTS)
    _, _, proto_len, num_columns = reader.unpack(_REPORTS_FIXED)
    if flags & FLAG_ROUTED:
        reader.unpack(_ROUTE_FIELD)
    pos = reader.pos  # where the seq field lives (or is inserted)
    if flags & FLAG_SEQUENCED:
        out = bytearray(payload)
        if pos + _SEQ_FIELD.size > len(out):
            raise BinaryFormatError("truncated binary payload: seq field "
                                    "ends past the frame")
        _SEQ_FIELD.pack_into(out, pos, int(seq))
        return bytes(out)
    out = bytearray(len(payload) + _SEQ_FIELD.size)
    out[:pos] = payload[:pos]
    out[3] = flags | FLAG_SEQUENCED
    _SEQ_FIELD.pack_into(out, pos, int(seq))
    out[pos + _SEQ_FIELD.size:] = payload[pos:]
    # Column offsets are absolute; walk the (shifted) table and move each
    # one past the inserted field.
    cursor = pos + _SEQ_FIELD.size + proto_len
    try:
        for _ in range(num_columns):
            (name_len,) = struct.unpack_from("<H", out, cursor)
            cursor += 2 + name_len
            (dtype_len,) = struct.unpack_from("<B", out, cursor)
            cursor += 1 + dtype_len
            (ndim,) = struct.unpack_from("<B", out, cursor)
            cursor += 1 + 8 * ndim
            (offset,) = struct.unpack_from("<Q", out, cursor)
            struct.pack_into("<Q", out, cursor, offset + _SEQ_FIELD.size)
            cursor += 16
    except struct.error as exc:
        raise BinaryFormatError(
            f"malformed binary payload: column table ends past the frame "
            f"({exc})") from exc
    return bytes(out)


def decode_reports_payload(payload: bytes) -> Tuple[int, ReportBatch]:
    """Rebuild ``(epoch, batch)`` from :func:`encode_reports_payload` output.

    Every decoded column is a read-only zero-copy ``np.frombuffer`` view
    over ``payload``; the caller must keep the buffer alive for as long as
    the batch (aggregators copy into their own state on absorb, so the
    normal ingest path never extends the buffer's lifetime).  A routed or
    sequenced payload (:data:`FLAG_ROUTED` / :data:`FLAG_SEQUENCED`)
    decodes identically — routing keys and sequence numbers are addressed
    to routers and dedup logic, not aggregators; read them with
    :func:`peek_reports_header`.
    """
    try:
        reader = _Reader(payload)
        epoch, _route, _seq, num_reports, proto_len, num_columns = \
            _read_reports_fixed(reader)
        protocol = reader.take(proto_len, "protocol tag").decode("utf-8")
        columns: Dict[str, np.ndarray] = {}
        for _ in range(num_columns):
            name, column = _read_column(reader, named=True)
            if name in columns:
                raise BinaryFormatError(f"duplicate column {name!r}")
            columns[name] = column
    except struct.error as exc:  # pragma: no cover - guarded by _Reader
        raise BinaryFormatError(f"malformed binary payload: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise BinaryFormatError(f"malformed binary payload: {exc}") from exc
    batch = ReportBatch(protocol, columns)
    if len(batch) != num_reports:
        raise BinaryFormatError(f"declared num_reports={num_reports} does "
                                f"not match the column length {len(batch)}")
    return int(epoch), batch


# --------------------------------------------------------------------------------------
# packed state (kind = 2)
# --------------------------------------------------------------------------------------

_COLUMN_KEY = "__repro_column__"
_INT64_MAX = np.iinfo(np.int64).max


def _fits_int64(arr: np.ndarray) -> bool:
    """True when every value survives the int64 round trip exactly.

    Unpacked columns come back as int64, so values in [2^63, 2^64) — which
    numpy infers as uint64 — must stay in the JSON skeleton rather than
    wrap silently; aggregator states never contain them, but ``pack_state``
    accepts arbitrary JSON-ready payloads.
    """
    if arr.dtype.kind == "i":
        return True
    return arr.size == 0 or int(arr.max()) <= _INT64_MAX


def _extract_arrays(obj, columns: List[np.ndarray]):
    """Replace every integer array (or int list) with a column reference."""
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind in "iu" and _fits_int64(obj):
            columns.append(np.ascontiguousarray(obj))
            return {_COLUMN_KEY: len(columns) - 1}
        return obj.tolist()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        if _COLUMN_KEY in obj:
            raise ValueError(f"state payloads must not use the reserved key "
                             f"{_COLUMN_KEY!r}")
        return {str(key): _extract_arrays(value, columns)
                for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        items = list(obj)
        if items:
            try:
                arr = np.asarray(items)
            except (ValueError, OverflowError):  # ragged / oversized ints
                arr = None
            if arr is not None and arr.dtype.kind in "iu" \
                    and _fits_int64(arr):
                columns.append(np.ascontiguousarray(arr.astype(np.int64,
                                                               copy=False)))
                return {_COLUMN_KEY: len(columns) - 1}
        return [_extract_arrays(item, columns) for item in items]
    raise TypeError(f"cannot pack {type(obj).__name__} into a state payload")


def pack_state(payload) -> bytes:
    """Serialize a (nested) state payload into one binary container.

    The payload is any JSON-ready structure — the output of
    ``ServerAggregator.snapshot()`` / ``WindowedAggregator.snapshot()`` or
    a ``child_state`` record.  Integer arrays and integer lists are pulled
    out into the binary column table (narrowed to their value range); the
    remaining skeleton ships as compact JSON.  :func:`unpack_state`
    restores the structure with ``int64`` arrays in place of the extracted
    lists — every consumer (``restore``, ``_load_state``) normalizes
    through ``np.asarray``, so the round trip is bit-exact.
    """
    columns: List[np.ndarray] = []
    skeleton = json.dumps(_extract_arrays(payload, columns),
                          separators=(",", ":")).encode("utf-8")
    specs = [_ColumnSpec("", arr) for arr in columns]
    table_start = _HEADER.size + _STATE_FIXED.size + len(skeleton)
    total = _layout(specs, table_start, named=False)
    out = bytearray(total)
    _HEADER.pack_into(out, 0, BINARY_MAGIC, BINARY_VERSION, KIND_STATE, 0)
    _STATE_FIXED.pack_into(out, _HEADER.size, len(skeleton), len(specs))
    pos = _HEADER.size + _STATE_FIXED.size
    out[pos:pos + len(skeleton)] = skeleton
    _write_columns(out, table_start, specs, named=False)
    return bytes(out)


def unpack_state(payload: bytes):
    """Rebuild a state payload from :func:`pack_state` output.

    Extracted columns come back as *writable* ``int64`` arrays (state
    loading mutates aggregator accumulators in place, so zero-copy
    read-only views would be a trap here; state blobs are small next to
    report traffic).
    """
    try:
        reader = _Reader(payload)
        _check_header(reader, KIND_STATE)
        skeleton_len, num_columns = reader.unpack(_STATE_FIXED)
        skeleton = reader.take(skeleton_len, "state skeleton").decode("utf-8")
        columns = [np.array(_read_column(reader, named=False)[1],
                            dtype=np.int64)
                   for _ in range(num_columns)]
    except struct.error as exc:  # pragma: no cover - guarded by _Reader
        raise BinaryFormatError(f"malformed binary payload: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise BinaryFormatError(f"malformed binary payload: {exc}") from exc

    def _hook(obj: dict):
        if len(obj) == 1 and _COLUMN_KEY in obj:
            index = obj[_COLUMN_KEY]
            if not isinstance(index, int) or not 0 <= index < len(columns):
                raise BinaryFormatError(f"state skeleton references unknown "
                                        f"column {index!r}")
            return columns[index]
        return obj

    try:
        return json.loads(skeleton, object_hook=_hook)
    except json.JSONDecodeError as exc:
        raise BinaryFormatError(f"invalid JSON state skeleton: {exc}") from exc
