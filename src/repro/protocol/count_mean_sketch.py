"""Wire protocol for the Apple-style Count-Mean-Sketch oracle [33].

**Paper reference.** Reference [33] of the paper (Apple's deployed LDP
sketch), reproduced here as the industrial point of comparison for the
Theorem 3.7 Hashtogram: same hash-then-randomize shape, but unary-encoded
rows instead of the Hadamard inner protocol and mean- instead of
median/signed-combination across rows.

**Report size.** ``m + log2 k`` bits: the m-bit noisy one-hot row plus the
row tag (k hash rows, m buckets).

**Server cost.** A ``k × m`` integer table plus k per-row report counts;
O(m) integer additions per report, O(k) work per query after finalization.

The server publishes k independent bucket hashes ``h_1..h_k : X -> [m]``.
Each user samples one hash row locally, one-hot encodes ``h_j(x)`` over the m
buckets, flips every bit with the symmetric unary-encoding probabilities at
budget ε, and ships ``(j, noisy bits)`` — ``log2 k + m`` bits on the wire.

The aggregator keeps exact integer per-(row, bucket) one-counts plus per-row
report counts; debiasing and the collision correction happen in
``finalize()``.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.hashing.kwise import KWiseHash, KWiseHashFamily
from repro.protocol.wire import (
    ClientEncoder,
    PublicParams,
    ReportBatch,
    ServerAggregator,
    kwise_hash_from_dict,
    kwise_hash_to_dict,
    register_protocol,
)
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_epsilon, check_positive_int


@register_protocol
class CountMeanSketchParams(PublicParams):
    """Public parameters of the Count-Mean-Sketch oracle."""

    protocol = "count_mean_sketch"

    def __init__(self, domain_size: int, epsilon: float, num_hashes: int,
                 num_buckets: int, hashes: Sequence[KWiseHash]) -> None:
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.epsilon = check_epsilon(epsilon)
        self.num_hashes = check_positive_int(num_hashes, "num_hashes")
        self.num_buckets = check_positive_int(num_buckets, "num_buckets")
        if len(hashes) != num_hashes:
            raise ValueError("need exactly one hash per row")
        self.hashes = list(hashes)
        # Symmetric unary-encoding bit probabilities at budget epsilon.
        half = math.exp(epsilon / 2.0)
        self.p = half / (half + 1.0)
        self.q = 1.0 / (half + 1.0)
        self._public_randomness_bits = int(sum(h.description_bits
                                               for h in self.hashes))

    @classmethod
    def create(cls, domain_size: int, epsilon: float, num_hashes: int = 16,
               num_buckets: int = 16, rng: RandomState = None
               ) -> "CountMeanSketchParams":
        """Sample fresh public randomness (the published hash rows)."""
        gen = as_generator(rng)
        family = KWiseHashFamily.create(domain_size, num_buckets, independence=2)
        return cls(domain_size, epsilon, num_hashes, num_buckets,
                   family.sample_many(num_hashes, gen))

    # ----- serialization ---------------------------------------------------------

    def _payload_dict(self) -> Dict[str, object]:
        return {"domain_size": self.domain_size,
                "epsilon": self.epsilon,
                "num_hashes": self.num_hashes,
                "num_buckets": self.num_buckets,
                "hashes": [kwise_hash_to_dict(h) for h in self.hashes]}

    @classmethod
    def _from_payload(cls, payload: Dict[str, object]) -> "CountMeanSketchParams":
        return cls(int(payload["domain_size"]), float(payload["epsilon"]),
                   int(payload["num_hashes"]), int(payload["num_buckets"]),
                   [kwise_hash_from_dict(h) for h in payload["hashes"]])

    # ----- factories -------------------------------------------------------------

    def make_encoder(self) -> "CountMeanSketchEncoder":
        return CountMeanSketchEncoder(self)

    def make_aggregator(self) -> "CountMeanSketchAggregator":
        return CountMeanSketchAggregator(self)

    # ----- accounting ------------------------------------------------------------

    @property
    def report_bits(self) -> float:
        """Row tag plus the m-bit noisy one-hot vector."""
        return float(self.num_buckets) + math.log2(max(self.num_hashes, 2))

    @property
    def public_randomness_bits(self) -> int:
        """Cached at construction; see the hashtogram note."""
        return self._public_randomness_bits


class CountMeanSketchEncoder(ClientEncoder):
    """Stateless CMS client: pick a row, hash, flip every bucket bit."""

    params: CountMeanSketchParams

    def encode_batch(self, values: Sequence[int], rng: RandomState = None,
                     first_user_index: int = 0) -> ReportBatch:
        gen = as_generator(rng)
        params = self.params
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= params.domain_size):
            raise ValueError("values outside the declared domain")
        n = values.size
        rows = gen.integers(0, params.num_hashes, size=n)
        buckets = np.zeros(n, dtype=np.int64)
        for j in range(params.num_hashes):
            mask = rows == j
            if mask.any():
                buckets[mask] = np.asarray(params.hashes[j](values[mask]))
        onehot = buckets[:, None] == np.arange(params.num_buckets)[None, :]
        uniform = gen.random((n, params.num_buckets))
        bits = np.where(onehot, uniform < params.p,
                        uniform < params.q).astype(np.uint8)
        return ReportBatch(params.protocol,
                           {"row": rows.astype(np.int64), "bits": bits})


class CountMeanSketchAggregator(ServerAggregator):
    """Exact integer (row, bucket) one-counts plus per-row report counts."""

    params: CountMeanSketchParams

    def __init__(self, params: CountMeanSketchParams) -> None:
        super().__init__(params)
        self._ones = np.zeros((params.num_hashes, params.num_buckets),
                              dtype=np.int64)
        self._row_counts = np.zeros(params.num_hashes, dtype=np.int64)

    def _absorb_columns(self, batch: ReportBatch) -> None:
        rows = np.asarray(batch.columns["row"], dtype=np.int64)
        bits = np.asarray(batch.columns["bits"], dtype=np.int64)
        np.add.at(self._ones, rows, bits)
        self._row_counts += np.bincount(rows, minlength=self.params.num_hashes)

    def _merge_impl(self, other: "CountMeanSketchAggregator"
                    ) -> "CountMeanSketchAggregator":
        merged = CountMeanSketchAggregator(self.params)
        merged._ones = self._ones + other._ones
        merged._row_counts = self._row_counts + other._row_counts
        return merged

    # ----- snapshots ----------------------------------------------------------------

    def _state_dict(self):
        return {"ones": self._ones.tolist(),
                "row_counts": self._row_counts.tolist()}

    def _load_state(self, state) -> None:
        ones = np.asarray(state["ones"], dtype=np.int64)
        row_counts = np.asarray(state["row_counts"], dtype=np.int64)
        if ones.shape != self._ones.shape or \
                row_counts.shape != self._row_counts.shape:
            raise ValueError("snapshot table shape does not match the "
                             "configured (num_hashes, num_buckets)")
        self._ones = ones
        self._row_counts = row_counts

    # ----- estimation ---------------------------------------------------------------

    def debiased(self) -> np.ndarray:
        """Per-row debiased bucket counts (the CMS table before row averaging)."""
        params = self.params
        return ((self._ones - self._row_counts[:, None] * params.q)
                / (params.p - params.q))

    def finalize(self):
        """Fitted :class:`~repro.frequency.count_mean_sketch.CountMeanSketchOracle`."""
        from repro.frequency.count_mean_sketch import CountMeanSketchOracle
        oracle = CountMeanSketchOracle(self.params.domain_size,
                                       self.params.epsilon,
                                       num_hashes=self.params.num_hashes,
                                       num_buckets=self.params.num_buckets)
        oracle._load_wire_aggregate(self)
        return oracle

    @property
    def state_size(self) -> int:
        # The sketch table dominates; the k per-row counts are bookkeeping.
        return int(self._ones.size)
