"""Wire protocol for the small-domain explicit histogram oracle (Theorem 3.8).

**Paper reference.** Theorem 3.8: for domain size k ≲ n, an ε-LDP frequency
oracle with worst-case error ``O((1/ε) sqrt(n log(k/β)))`` — the
"explicit histogram" building block every larger construction (Hashtogram,
the heavy-hitters stage-1 oracles) instantiates on a derived small domain.

**Report size.** Three interchangeable local randomizers share one
parameter/report format:

* ``"hadamard"`` — a uniformly random Hadamard row index plus one (possibly
  flipped) ±1 entry: ``log2(padded) + 1`` bits on the wire (the
  communication-optimal choice, and the default);
* ``"oue"`` — the full k-bit noisy one-hot vector: ``k`` bits;
* ``"krr"`` — a single (possibly lied-about) domain element: ``log2 k`` bits.

**Server cost.** One integer accumulator of ``padded`` (hadamard) or ``k``
(oue/krr) scalars regardless of n; ingestion is O(1) integer additions per
report, and ``finalize()`` pays one FWHT / debias pass of O(k log k) or
O(k).  Aggregation is exact integer accumulation (signed counts per
Hadamard row, per-column one counts, or a value histogram); debiasing
happens only in ``finalize()``, so shard merges and snapshot/restore are
bit-exact.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.protocol.wire import (
    ClientEncoder,
    PublicParams,
    Report,
    ReportBatch,
    ServerAggregator,
    register_protocol,
)
from repro.utils.bits import next_power_of_two
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_epsilon, check_positive_int


@register_protocol
class ExplicitHistogramParams(PublicParams):
    """Public parameters of the small-domain oracle.

    The small-domain protocol needs no public randomness beyond the
    configuration itself (the Hadamard row choice is each user's *local*
    randomness), so serialization is just the three scalars.
    """

    protocol = "explicit_histogram"

    def __init__(self, domain_size: int, epsilon: float,
                 randomizer: str = "hadamard") -> None:
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.epsilon = check_epsilon(epsilon)
        if randomizer not in ("hadamard", "oue", "krr"):
            raise ValueError("randomizer must be 'hadamard', 'oue' or 'krr'")
        self.randomizer = randomizer

        exp_eps = math.exp(epsilon)
        if randomizer == "hadamard":
            self.padded = next_power_of_two(domain_size + 1)
            self.keep_prob = exp_eps / (exp_eps + 1.0)
            self.attenuation = (exp_eps - 1.0) / (exp_eps + 1.0)
        elif randomizer == "oue":
            self.p = 0.5
            self.q = 1.0 / (exp_eps + 1.0)
        else:  # krr
            self.p = exp_eps / (exp_eps + domain_size - 1.0)
            self.q = 1.0 / (exp_eps + domain_size - 1.0)

    # ----- serialization ---------------------------------------------------------

    def _payload_dict(self) -> Dict[str, object]:
        return {"domain_size": self.domain_size,
                "epsilon": self.epsilon,
                "randomizer": self.randomizer}

    @classmethod
    def _from_payload(cls, payload: Dict[str, object]) -> "ExplicitHistogramParams":
        return cls(int(payload["domain_size"]), float(payload["epsilon"]),
                   str(payload["randomizer"]))

    # ----- factories -------------------------------------------------------------

    def make_encoder(self) -> "ExplicitHistogramEncoder":
        return ExplicitHistogramEncoder(self)

    def make_aggregator(self) -> "ExplicitHistogramAggregator":
        return ExplicitHistogramAggregator(self)

    # ----- accounting ------------------------------------------------------------

    @property
    def report_bits(self) -> float:
        """Wire size of one report: the serialized payload width in bits."""
        if self.randomizer == "hadamard":
            return math.log2(self.padded) + 1.0          # row index + sign bit
        if self.randomizer == "oue":
            return float(self.domain_size)               # one bit per column
        return max(math.log2(self.domain_size), 1.0)     # the reported value

    @property
    def state_size(self) -> int:
        """Number of scalars a server retains for these parameters."""
        return self.padded if self.randomizer == "hadamard" else self.domain_size


class ExplicitHistogramEncoder(ClientEncoder):
    """Stateless per-user randomizer of the small-domain oracle."""

    params: ExplicitHistogramParams

    def encode_batch(self, values: Sequence[int], rng: RandomState = None,
                     first_user_index: int = 0) -> ReportBatch:
        gen = as_generator(rng)
        params = self.params
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= params.domain_size):
            raise ValueError("values outside the declared domain")
        n = values.size
        if params.randomizer == "hadamard":
            # Column 0 of the Hadamard matrix carries no signal, shift by one.
            rows = gen.integers(0, params.padded, size=n)
            parity = np.bitwise_count(np.bitwise_and(rows, values + 1)) & 1
            true_bits = (1 - 2 * parity.astype(np.int64)).astype(np.int8)
            keep = gen.random(n) < params.keep_prob
            bits = np.where(keep, true_bits, -true_bits).astype(np.int8)
            return ReportBatch(params.protocol, {"row": rows, "bit": bits})
        if params.randomizer == "oue":
            onehot = values[:, None] == np.arange(params.domain_size)[None, :]
            uniform = gen.random((n, params.domain_size))
            bits = np.where(onehot, uniform < params.p,
                            uniform < params.q).astype(np.uint8)
            return ReportBatch(params.protocol, {"bits": bits})
        # krr: report the truth w.p. p, otherwise one of the k-1 other values
        # uniformly (each specific lie has probability q).
        k = params.domain_size
        if k == 1:
            reported = np.zeros(n, dtype=np.int64)
        else:
            keep = gen.random(n) < params.p
            lies = gen.integers(0, k - 1, size=n)
            lies += (lies >= values).astype(np.int64)
            reported = np.where(keep, values, lies)
        return ReportBatch(params.protocol, {"value": reported})


class ExplicitHistogramAggregator(ServerAggregator):
    """Exact integer accumulation of small-domain reports."""

    params: ExplicitHistogramParams

    def __init__(self, params: ExplicitHistogramParams) -> None:
        super().__init__(params)
        if params.randomizer == "hadamard":
            self._accumulator = np.zeros(params.padded, dtype=np.int64)
        elif params.randomizer == "oue":
            self._accumulator = np.zeros(params.domain_size, dtype=np.int64)
        else:
            self._accumulator = np.zeros(params.domain_size, dtype=np.int64)

    def _absorb_columns(self, batch: ReportBatch) -> None:
        if self.params.randomizer == "hadamard":
            np.add.at(self._accumulator,
                      np.asarray(batch.columns["row"], dtype=np.int64),
                      np.asarray(batch.columns["bit"], dtype=np.int64))
        elif self.params.randomizer == "oue":
            self._accumulator += batch.columns["bits"].sum(axis=0, dtype=np.int64)
        else:
            self._accumulator += np.bincount(
                np.asarray(batch.columns["value"], dtype=np.int64),
                minlength=self.params.domain_size)

    def _merge_impl(self, other: "ExplicitHistogramAggregator"
                    ) -> "ExplicitHistogramAggregator":
        merged = ExplicitHistogramAggregator(self.params)
        merged._accumulator = self._accumulator + other._accumulator
        return merged

    # ----- snapshots ----------------------------------------------------------------

    def _state_dict(self):
        return {"accumulator": self._accumulator.tolist()}

    def _load_state(self, state) -> None:
        accumulator = np.asarray(state["accumulator"], dtype=np.int64)
        if accumulator.shape != self._accumulator.shape:
            raise ValueError(f"snapshot accumulator has shape "
                             f"{accumulator.shape}, expected "
                             f"{self._accumulator.shape}")
        self._accumulator = accumulator

    # ----- estimation ---------------------------------------------------------------

    def histogram(self) -> np.ndarray:
        """Debiased frequency estimates for the whole domain."""
        params = self.params
        n = self.num_reports
        if params.randomizer == "hadamard":
            from repro.frequency.explicit import fast_walsh_hadamard_transform
            transformed = fast_walsh_hadamard_transform(
                self._accumulator.astype(float))
            estimates = transformed / params.attenuation
            return estimates[1: params.domain_size + 1]
        return (self._accumulator - n * params.q) / (params.p - params.q)

    def finalize(self):
        """Fitted :class:`~repro.frequency.explicit.ExplicitHistogramOracle`."""
        from repro.frequency.explicit import ExplicitHistogramOracle
        oracle = ExplicitHistogramOracle(self.params.domain_size,
                                         self.params.epsilon,
                                         randomizer=self.params.randomizer)
        oracle._load_wire_aggregate(self.histogram(), self.num_reports,
                                    self.state_size)
        return oracle

    @property
    def state_size(self) -> int:
        return int(self._accumulator.size)
