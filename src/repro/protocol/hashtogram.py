"""Wire protocol for the general-domain Hashtogram oracle (Theorem 3.7).

**Paper reference.** Theorem 3.7: an ε-LDP frequency oracle for *arbitrary*
domain size |X| with worst-case error ``O((1/ε) sqrt(n log(|X|/β)))`` —
the count-sketch-style reduction from a huge domain to R independent
(bucket, sign) small domains, and the final estimation stage of the paper's
heavy-hitters protocol.

**Report size.** One inner small-domain report over ``2 * num_buckets``
cells — ``log2(2B) + O(1)`` bits with the default Hadamard inner randomizer
— i.e. O(log n) bits total with the standard ``B ≈ sqrt(n)``; under
``"uniform"`` assignment the report additionally carries its
``log2 R``-bit repetition tag.

**Server cost.** ``R * 2B`` integer scalars (``O~(sqrt(n))`` with the
default B — the Table 1 row); each query costs O(R) after finalization.

The server publishes, per repetition t, a pairwise independent bucket hash
``h_t`` and a 4-wise independent sign hash ``s_t``; a user assigned to
repetition t encodes the (bucket, sign) cell of her value through the
small-domain protocol over ``2 * num_buckets`` cells.

Repetition assignment is part of the public parameters: the default
``"round_robin"`` policy derives the repetition from the user's index, so the
report itself carries only the inner small-domain payload (the repetition is
implied by who sent it); the ``"uniform"`` policy has each user draw her
repetition locally and ship it alongside the report.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.hashing.kwise import KWiseHash, KWiseHashFamily, SignHash, sign_hash
from repro.protocol.explicit import ExplicitHistogramParams
from repro.protocol.wire import (
    ClientEncoder,
    PublicParams,
    ReportBatch,
    ServerAggregator,
    child_state,
    kwise_hash_from_dict,
    kwise_hash_to_dict,
    load_child_state,
    register_protocol,
    sign_hash_from_dict,
    sign_hash_to_dict,
)
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_epsilon, check_positive_int

_ASSIGNMENTS = ("round_robin", "uniform")


@register_protocol
class HashtogramParams(PublicParams):
    """Public parameters of the Hashtogram oracle: hashes + configuration."""

    protocol = "hashtogram"

    def __init__(self, domain_size: int, epsilon: float, num_repetitions: int,
                 num_buckets: int, bucket_hashes: Sequence[KWiseHash],
                 sign_hashes: Sequence[SignHash],
                 inner_randomizer: str = "hadamard",
                 assignment: str = "round_robin") -> None:
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.epsilon = check_epsilon(epsilon)
        self.num_repetitions = check_positive_int(num_repetitions, "num_repetitions")
        self.num_buckets = check_positive_int(num_buckets, "num_buckets")
        if len(bucket_hashes) != num_repetitions or len(sign_hashes) != num_repetitions:
            raise ValueError("need one bucket hash and one sign hash per repetition")
        self.bucket_hashes = list(bucket_hashes)
        self.sign_hashes = list(sign_hashes)
        if assignment not in _ASSIGNMENTS:
            raise ValueError(f"assignment must be one of {_ASSIGNMENTS}")
        self.assignment = assignment
        self.inner = ExplicitHistogramParams(2 * num_buckets, epsilon,
                                             inner_randomizer)
        # Cached once: summing description_bits over the hash objects on every
        # accounting call is O(num_repetitions) per lookup and showed up in
        # profiles of report-cost accounting loops.
        self._public_randomness_bits = int(
            sum(h.description_bits for h in self.bucket_hashes)
            + sum(s.description_bits for s in self.sign_hashes))

    @property
    def inner_randomizer(self) -> str:
        return self.inner.randomizer

    @classmethod
    def create(cls, domain_size: int, epsilon: float, num_repetitions: int = 5,
               num_buckets: int = 16, inner_randomizer: str = "hadamard",
               assignment: str = "round_robin",
               rng: RandomState = None) -> "HashtogramParams":
        """Sample fresh public randomness (the published hash functions)."""
        gen = as_generator(rng)
        bucket_family = KWiseHashFamily.create(domain_size, num_buckets,
                                               independence=2)
        bucket_hashes = bucket_family.sample_many(num_repetitions, gen)
        sign_hashes = [sign_hash(domain_size, gen) for _ in range(num_repetitions)]
        return cls(domain_size, epsilon, num_repetitions, num_buckets,
                   bucket_hashes, sign_hashes, inner_randomizer, assignment)

    # ----- serialization ---------------------------------------------------------

    def _payload_dict(self) -> Dict[str, object]:
        return {"domain_size": self.domain_size,
                "epsilon": self.epsilon,
                "num_repetitions": self.num_repetitions,
                "num_buckets": self.num_buckets,
                "inner_randomizer": self.inner_randomizer,
                "assignment": self.assignment,
                "bucket_hashes": [kwise_hash_to_dict(h) for h in self.bucket_hashes],
                "sign_hashes": [sign_hash_to_dict(s) for s in self.sign_hashes]}

    @classmethod
    def _from_payload(cls, payload: Dict[str, object]) -> "HashtogramParams":
        return cls(int(payload["domain_size"]), float(payload["epsilon"]),
                   int(payload["num_repetitions"]), int(payload["num_buckets"]),
                   [kwise_hash_from_dict(h) for h in payload["bucket_hashes"]],
                   [sign_hash_from_dict(s) for s in payload["sign_hashes"]],
                   str(payload["inner_randomizer"]), str(payload["assignment"]))

    # ----- factories -------------------------------------------------------------

    def make_encoder(self) -> "HashtogramEncoder":
        return HashtogramEncoder(self)

    def make_aggregator(self) -> "HashtogramAggregator":
        return HashtogramAggregator(self)

    # ----- accounting ------------------------------------------------------------

    @property
    def report_bits(self) -> float:
        """Wire size of one report.

        Under round-robin assignment the repetition is a public function of
        the user's index, so only the inner payload travels; under uniform
        assignment the report also carries the repetition tag.
        """
        bits = self.inner.report_bits
        if self.assignment == "uniform":
            bits += math.log2(max(self.num_repetitions, 2))
        return bits

    @property
    def public_randomness_bits(self) -> int:
        """Bits of public randomness consumed by the published hashes
        (computed once at construction)."""
        return self._public_randomness_bits

    # ----- helpers ---------------------------------------------------------------

    def cells_for(self, values: np.ndarray, repetition: int) -> np.ndarray:
        """Map values to their (bucket, sign) cell index in one repetition."""
        if values.size == 0:
            return values
        buckets = np.asarray(self.bucket_hashes[repetition](values))
        signs = np.asarray(self.sign_hashes[repetition](values))
        return (2 * buckets + (signs > 0).astype(np.int64)).astype(np.int64)


class HashtogramEncoder(ClientEncoder):
    """Stateless Hashtogram client: pick a repetition, hash, run the inner
    small-domain randomizer on the resulting cell."""

    params: HashtogramParams

    def _draw_user_index(self, gen: np.random.Generator) -> int:
        if self.params.assignment == "round_robin":
            return int(gen.integers(0, self.params.num_repetitions))
        return 0

    def encode_batch(self, values: Sequence[int], rng: RandomState = None,
                     first_user_index: int = 0) -> ReportBatch:
        gen = as_generator(rng)
        params = self.params
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= params.domain_size):
            raise ValueError("values outside the declared domain")
        n = values.size
        reps = params.num_repetitions
        if params.assignment == "round_robin":
            assignment = (first_user_index + np.arange(n)) % reps
        else:
            assignment = gen.integers(0, reps, size=n)
        cells = np.zeros(n, dtype=np.int64)
        for t in range(reps):
            mask = assignment == t
            if mask.any():
                cells[mask] = params.cells_for(values[mask], t)
        inner = params.inner.make_encoder().encode_batch(cells, gen)
        columns = {"repetition": assignment.astype(np.int64)}
        columns.update(inner.columns)
        return ReportBatch(params.protocol, columns)


class HashtogramAggregator(ServerAggregator):
    """One inner small-domain aggregator per repetition."""

    params: HashtogramParams

    def __init__(self, params: HashtogramParams) -> None:
        super().__init__(params)
        self._inner = [params.inner.make_aggregator()
                       for _ in range(params.num_repetitions)]

    def _absorb_columns(self, batch: ReportBatch) -> None:
        reps = np.asarray(batch.columns["repetition"], dtype=np.int64)
        inner_columns = {key: col for key, col in batch.columns.items()
                         if key != "repetition"}
        for t in range(self.params.num_repetitions):
            mask = reps == t
            if mask.any():
                sub = ReportBatch(self.params.inner.protocol,
                                  {key: col[mask]
                                   for key, col in inner_columns.items()})
                self._inner[t].absorb_batch(sub)

    def _merge_impl(self, other: "HashtogramAggregator") -> "HashtogramAggregator":
        merged = HashtogramAggregator(self.params)
        merged._inner = [mine.merge(theirs)
                         for mine, theirs
                         in zip(self._inner, other._inner, strict=True)]
        return merged

    # ----- snapshots ----------------------------------------------------------------

    def _state_dict(self):
        return {"inner": [child_state(agg) for agg in self._inner]}

    def _load_state(self, state) -> None:
        inner = list(state["inner"])
        if len(inner) != len(self._inner):
            raise ValueError(f"snapshot has {len(inner)} repetitions, "
                             f"expected {len(self._inner)}")
        for aggregator, payload in zip(self._inner, inner, strict=True):
            load_child_state(aggregator, payload)

    # ----- estimation ---------------------------------------------------------------

    @property
    def repetition_sizes(self) -> List[int]:
        """Number of reports absorbed into each repetition."""
        return [agg.num_reports for agg in self._inner]

    def finalize(self):
        """Fitted :class:`~repro.frequency.hashtogram.HashtogramOracle`."""
        from repro.frequency.hashtogram import HashtogramOracle
        oracle = HashtogramOracle(self.params.domain_size, self.params.epsilon,
                                  num_repetitions=self.params.num_repetitions,
                                  num_buckets=self.params.num_buckets,
                                  inner_randomizer=self.params.inner_randomizer)
        oracle._load_wire_aggregate(self)
        return oracle

    @property
    def state_size(self) -> int:
        return int(sum(agg.state_size for agg in self._inner))
