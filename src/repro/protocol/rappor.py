"""Wire protocol for basic RAPPOR reports (the Chrome baseline [12]).

**Paper reference.** Reference [12] (Erlingsson-Pihur-Korolova), the
deployed Google Chrome mechanism the paper's introduction benchmarks
against: its error scales like the *candidate-set* decoder allows, not the
worst-case-optimal Theorem 3.7/3.8 rates.

**Report size.** ``num_bits`` bits — the full noisy Bloom filter (128 by
default); independent of both |X| and n.

**Server cost.** ``num_bits`` integer one-counts; decoding requires a known
candidate set and one least-squares solve over it in ``finalize()`` (there
is no per-element oracle, which is exactly the baseline's limitation).

The server publishes the Bloom-filter hash functions; each user Bloom-encodes
her value, applies permanent randomized response to every bit, and ships the
``num_bits``-wide noisy vector.  The aggregator keeps exact integer per-bit
one-counts; candidate-set regression decoding happens in ``finalize()``.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.protocol.wire import (
    ClientEncoder,
    PublicParams,
    ReportBatch,
    ServerAggregator,
    kwise_hash_from_dict,
    kwise_hash_to_dict,
    register_protocol,
)
from repro.randomizers.rappor import BasicRappor
from repro.utils.rng import RandomState, as_generator


@register_protocol
class RapporParams(PublicParams):
    """Public parameters of basic RAPPOR: the Bloom hashes + configuration."""

    protocol = "rappor"

    def __init__(self, randomizer: BasicRappor) -> None:
        self.randomizer = randomizer
        self.domain_size = randomizer.domain_size
        self.epsilon = randomizer.epsilon
        self.num_bits = randomizer.num_bits
        self.num_hashes = randomizer.num_hashes
        self._public_randomness_bits = int(
            sum(h.description_bits for h in randomizer._hashes))

    @classmethod
    def create(cls, domain_size: int, epsilon: float, num_bits: int = 128,
               num_hashes: int = 2, rng: RandomState = None) -> "RapporParams":
        """Sample fresh public randomness (the Bloom hash functions)."""
        return cls(BasicRappor(epsilon, domain_size, num_bits=num_bits,
                               num_hashes=num_hashes, rng=as_generator(rng)))

    # ----- serialization ---------------------------------------------------------

    def _payload_dict(self) -> Dict[str, object]:
        return {"domain_size": self.domain_size,
                "epsilon": self.epsilon,
                "num_bits": self.num_bits,
                "num_hashes": self.num_hashes,
                "bloom_hashes": [kwise_hash_to_dict(h)
                                 for h in self.randomizer._hashes]}

    @classmethod
    def _from_payload(cls, payload: Dict[str, object]) -> "RapporParams":
        return cls(BasicRappor(
            float(payload["epsilon"]), int(payload["domain_size"]),
            num_bits=int(payload["num_bits"]),
            num_hashes=int(payload["num_hashes"]),
            hashes=[kwise_hash_from_dict(h)
                    for h in payload["bloom_hashes"]]))

    # ----- factories -------------------------------------------------------------

    def make_encoder(self) -> "RapporEncoder":
        return RapporEncoder(self)

    def make_aggregator(self) -> "RapporAggregator":
        return RapporAggregator(self)

    # ----- accounting ------------------------------------------------------------

    @property
    def report_bits(self) -> float:
        return float(self.num_bits)

    @property
    def public_randomness_bits(self) -> int:
        """Cached at construction; see the hashtogram note."""
        return self._public_randomness_bits


class RapporEncoder(ClientEncoder):
    """Stateless RAPPOR client: Bloom-encode, flip every bit."""

    params: RapporParams

    def encode_batch(self, values: Sequence[int], rng: RandomState = None,
                     first_user_index: int = 0) -> ReportBatch:
        gen = as_generator(rng)
        params = self.params
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= params.domain_size):
            raise ValueError("values outside the declared domain")
        randomizer = params.randomizer
        if values.size == 0:
            bits = np.zeros((0, params.num_bits), dtype=np.uint8)
            return ReportBatch(params.protocol, {"bits": bits})
        # Users sharing a value share a Bloom pattern; vectorize by value.
        unique_values, inverse = np.unique(values, return_inverse=True)
        blooms = np.stack([randomizer.bloom_bits(int(v)) for v in unique_values])
        f = randomizer.flip_probability
        prob_one = np.where(blooms[inverse] == 1, 1.0 - f / 2.0, f / 2.0)
        bits = (gen.random((values.size, params.num_bits)) < prob_one
                ).astype(np.uint8)
        return ReportBatch(params.protocol, {"bits": bits})


class RapporAggregator(ServerAggregator):
    """Exact integer per-bit one-counts of the noisy Bloom reports."""

    params: RapporParams

    def __init__(self, params: RapporParams) -> None:
        super().__init__(params)
        self._bit_counts = np.zeros(params.num_bits, dtype=np.int64)

    def _absorb_columns(self, batch: ReportBatch) -> None:
        self._bit_counts += batch.columns["bits"].sum(axis=0, dtype=np.int64)

    def _merge_impl(self, other: "RapporAggregator") -> "RapporAggregator":
        merged = RapporAggregator(self.params)
        merged._bit_counts = self._bit_counts + other._bit_counts
        return merged

    # ----- snapshots ----------------------------------------------------------------

    def _state_dict(self):
        return {"bit_counts": self._bit_counts.tolist()}

    def _load_state(self, state) -> None:
        bit_counts = np.asarray(state["bit_counts"], dtype=np.int64)
        if bit_counts.shape != self._bit_counts.shape:
            raise ValueError(f"snapshot has {bit_counts.size} bit counts, "
                             f"expected {self._bit_counts.size}")
        self._bit_counts = bit_counts

    # ----- estimation ---------------------------------------------------------------

    def estimate_candidates(self, candidates: Sequence[int]) -> np.ndarray:
        """Regression-decode the aggregate against a known candidate set."""
        return self.params.randomizer.estimate_candidate_frequencies_from_counts(
            self._bit_counts, self.num_reports, candidates)

    def finalize(self) -> "RapporAggregate":
        """RAPPOR has no per-element oracle: decoding needs a candidate set.

        ``finalize`` therefore returns a :class:`RapporAggregate`, a small
        frozen view exposing ``estimate_candidates``.
        """
        return RapporAggregate(self.params, self._bit_counts.copy(),
                               self.num_reports)

    @property
    def state_size(self) -> int:
        return int(self._bit_counts.size)


class RapporAggregate:
    """Finalized RAPPOR aggregate: debiased candidate-set estimation only."""

    def __init__(self, params: RapporParams, bit_counts: np.ndarray,
                 num_users: int) -> None:
        self.params = params
        self.bit_counts = bit_counts
        self.num_users = int(num_users)

    def estimate_candidates(self, candidates: Sequence[int]) -> np.ndarray:
        return self.params.randomizer.estimate_candidate_frequencies_from_counts(
            self.bit_counts, self.num_users, candidates)
