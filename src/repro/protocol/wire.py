"""Wire-level client/server abstractions for every LDP protocol.

The paper's local model is inherently distributed: each user runs a local
randomizer on her own device and ships one short report to a server that only
ever sees the aggregate.  This module makes that boundary explicit:

* :class:`PublicParams` — the serializable public randomness and configuration
  a server publishes before collection starts (hash seeds, bucket counts, ε,
  repetition-assignment policy).  ``to_dict()`` / ``from_dict()`` round-trip
  through plain JSON-safe dictionaries so the parameters can be shipped to
  clients over any transport.
* :class:`ClientEncoder` — a stateless per-user object built from the public
  parameters.  ``encode(value, rng)`` produces one small serializable
  :class:`Report`; ``encode_batch`` is the vectorized path used by
  simulations.
* :class:`ServerAggregator` — incremental ingestion (``absorb`` /
  ``absorb_batch``) into a compact integer state, plus a commutative and
  associative ``merge`` so aggregation can be sharded across workers, and
  ``finalize()`` which turns the aggregate into a fitted estimator
  (a :class:`~repro.frequency.base.FrequencyOracle` or a heavy-hitters
  result).

All aggregator states are kept in exact integer arithmetic until
``finalize()``, so splitting a report stream across K shards and merging the
shard aggregators reproduces single-server aggregation *bit for bit*.  The
same exact-integer state powers **durable snapshots**: ``snapshot()`` emits
a JSON-safe checkpoint (parameters + report count + state) and
``from_snapshot()`` rebuilds an aggregator that finalizes bit-identically —
the crash-recovery primitive of :mod:`repro.server`.

The legacy one-shot ``FrequencyOracle.collect(values)`` /
``HeavyHitterProtocol.run(values)`` entry points are retained as thin
simulation conveniences implemented exactly as
``encode_batch → absorb_batch → finalize``.
"""

from __future__ import annotations

import abc
import base64
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

import numpy as np

from repro.hashing.kwise import KWiseHash, SignHash
from repro.utils.rng import RandomState, as_generator

__all__ = [
    "Report",
    "ReportBatch",
    "PublicParams",
    "ClientEncoder",
    "ServerAggregator",
    "merge_aggregators",
    "register_protocol",
    "kwise_hash_to_dict",
    "kwise_hash_from_dict",
    "sign_hash_to_dict",
    "sign_hash_from_dict",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
]

#: identifying tag of an aggregator snapshot payload (see ``ServerAggregator.snapshot``)
SNAPSHOT_FORMAT = "repro-aggregator-snapshot"
#: snapshot payload version; bumped on any breaking change to the state layout
SNAPSHOT_VERSION = 1


# --------------------------------------------------------------------------------------
# hash (de)serialization helpers — PublicParams ship hash functions as coefficients
# --------------------------------------------------------------------------------------

def kwise_hash_to_dict(h: KWiseHash) -> Dict[str, object]:
    """JSON-safe description of a k-wise independent hash function."""
    return {"coefficients": [int(c) for c in h.coefficients],
            "prime": int(h.prime),
            "range_size": int(h.range_size)}


def kwise_hash_from_dict(data: Dict[str, object]) -> KWiseHash:
    """Rebuild a :class:`KWiseHash` from :func:`kwise_hash_to_dict` output."""
    return KWiseHash(coefficients=tuple(int(c) for c in data["coefficients"]),
                     prime=int(data["prime"]),
                     range_size=int(data["range_size"]))


def sign_hash_to_dict(s: SignHash) -> Dict[str, object]:
    """JSON-safe description of a ±1-valued hash function."""
    return kwise_hash_to_dict(s.base)


def sign_hash_from_dict(data: Dict[str, object]) -> SignHash:
    """Rebuild a :class:`SignHash` from :func:`sign_hash_to_dict` output."""
    return SignHash(kwise_hash_from_dict(data))


# --------------------------------------------------------------------------------------
# reports
# --------------------------------------------------------------------------------------

class Report:
    """One user's wire message: a protocol tag plus a small payload.

    Payload entries are integers or small integer vectors; :meth:`to_dict`
    yields a JSON-safe dictionary, so a report can be shipped over any
    transport and re-hydrated with :meth:`from_dict`.
    """

    __slots__ = ("protocol", "payload")

    def __init__(self, protocol: str, payload: Dict[str, object]) -> None:
        self.protocol = protocol
        self.payload = payload

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {}
        for key, value in self.payload.items():
            arr = np.asarray(value)
            if arr.ndim == 0:
                payload[key] = int(arr)
            else:
                payload[key] = [int(v) for v in arr.tolist()]
        return {"protocol": self.protocol, "payload": payload}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Report":
        payload = {key: (np.asarray(value, dtype=np.int64)
                         if isinstance(value, (list, tuple)) else int(value))
                   for key, value in dict(data["payload"]).items()}
        return cls(str(data["protocol"]), payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        keys = ", ".join(sorted(self.payload))
        return f"Report(protocol={self.protocol!r}, fields=[{keys}])"


class ReportBatch:
    """A columnar batch of reports (one row per user).

    Columns are numpy arrays whose first axis indexes users; scalar payload
    fields become 1-D columns and vector fields become 2-D columns.  The
    columnar layout is what makes ``absorb_batch`` ingestion as fast as the
    legacy one-shot simulation while every row remains an honest standalone
    :class:`Report`.
    """

    __slots__ = ("protocol", "columns", "_num_reports")

    def __init__(self, protocol: str, columns: Dict[str, np.ndarray]) -> None:
        self.protocol = protocol
        self.columns = {key: np.asarray(value) for key, value in columns.items()}
        sizes = {int(col.shape[0]) for col in self.columns.values()}
        if len(sizes) > 1:
            raise ValueError(f"inconsistent column lengths: {sorted(sizes)}")
        self._num_reports = sizes.pop() if sizes else 0

    # ----- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self._num_reports

    def __iter__(self) -> Iterator[Report]:
        for i in range(self._num_reports):
            yield Report(self.protocol,
                         {key: col[i] for key, col in self.columns.items()})

    def to_reports(self) -> List[Report]:
        """Materialize the batch as individual :class:`Report` objects."""
        return list(self)

    # ----- slicing / sharding ------------------------------------------------------

    def select(self, index: Union[slice, Sequence[int],
                                  np.ndarray]) -> "ReportBatch":
        """Row subset (boolean mask, slice, or integer index array)."""
        return ReportBatch(self.protocol,
                           {key: col[index] for key, col in self.columns.items()})

    def split(self, num_shards: int) -> List["ReportBatch"]:
        """Partition the batch into ``num_shards`` contiguous shards."""
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        indices = np.array_split(np.arange(self._num_reports), num_shards)
        return [self.select(ix) for ix in indices]

    @classmethod
    def concat(cls, batches: Sequence["ReportBatch"],
               consume: bool = False) -> "ReportBatch":
        """Concatenate batches of the same protocol.

        With ``consume=True`` each source column is released as soon as it
        has been copied, so peak memory stays one full batch plus one column
        instead of two full copies (the source batches are left empty).
        """
        if not batches:
            raise ValueError("need at least one batch")
        protocol = batches[0].protocol
        if any(b.protocol != protocol for b in batches):
            raise ValueError("cannot concatenate batches of different protocols")
        if consume:
            columns = {key: np.concatenate([b.columns.pop(key) for b in batches])
                       for key in list(batches[0].columns)}
        else:
            columns = {key: np.concatenate([b.columns[key] for b in batches])
                       for key in batches[0].columns}
        return cls(protocol, columns)

    @classmethod
    def from_reports(cls, reports: Iterable[Report]) -> "ReportBatch":
        """Stack individual reports back into a columnar batch."""
        reports = list(reports)
        if not reports:
            raise ValueError("need at least one report")
        protocol = reports[0].protocol
        if any(r.protocol != protocol for r in reports):
            raise ValueError("cannot stack reports of different protocols")
        columns = {key: np.stack([np.asarray(r.payload[key]) for r in reports])
                   for key in reports[0].payload}
        return cls(protocol, columns)

    # ----- wire serialization -------------------------------------------------------

    def to_dict(self, encoding: str = "b64") -> Dict[str, object]:
        """JSON-safe columnar description of the batch.

        Two column encodings are supported (both JSON-safe, see
        ``docs/wire-protocol.md`` §3.1):

        * ``"b64"`` (default) — each column ships its dtype, shape, and the
          base64 of its little-endian C-order bytes.  This is the ingestion
          fast path: decoding is one ``base64`` pass plus ``np.frombuffer``.
        * ``"json"`` — each column ships its values as (nested) integer
          lists; slower but human-readable and diff-friendly.

        Either encoding round-trips through :meth:`from_dict` to a batch
        whose columns compare equal element for element and dtype for dtype.
        """
        if encoding not in ("b64", "json"):
            raise ValueError("encoding must be 'b64' or 'json'")
        columns: Dict[str, object] = {}
        for key, col in self.columns.items():
            if encoding == "b64":
                data = np.ascontiguousarray(col)
                if data.dtype.byteorder == ">":  # pragma: no cover - BE hosts
                    data = data.astype(data.dtype.newbyteorder("<"))
                payload: object = base64.b64encode(data.tobytes()).decode("ascii")
                dtype = data.dtype.str
            else:
                payload = col.tolist()
                dtype = col.dtype.str
            columns[key] = {"dtype": dtype,
                            "shape": [int(s) for s in col.shape],
                            "data": payload}
        return {"protocol": self.protocol,
                "encoding": encoding,
                "num_reports": int(self._num_reports),
                "columns": columns}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReportBatch":
        """Rebuild a batch from :meth:`to_dict` output (either encoding)."""
        encoding = str(data.get("encoding", "json"))
        if encoding not in ("b64", "json"):
            raise ValueError(f"unknown batch encoding {encoding!r}; "
                             f"expected 'b64' or 'json'")
        columns: Dict[str, np.ndarray] = {}
        for key, spec in dict(data["columns"]).items():
            dtype = np.dtype(str(spec["dtype"]))
            shape = tuple(int(s) for s in spec["shape"])
            if encoding == "b64":
                raw = base64.b64decode(str(spec["data"]))
                col = np.frombuffer(raw, dtype=dtype).reshape(shape)
            else:
                col = np.asarray(spec["data"], dtype=dtype).reshape(shape)
            columns[key] = col
        batch = cls(str(data["protocol"]), columns)
        declared = int(data.get("num_reports", len(batch)))
        if declared != len(batch):
            raise ValueError(f"declared num_reports={declared} does not match "
                             f"the column length {len(batch)}")
        return batch

    # ----- accounting ---------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """In-memory size of the columnar representation."""
        return int(sum(col.nbytes for col in self.columns.values()))


# --------------------------------------------------------------------------------------
# public parameters + registry
# --------------------------------------------------------------------------------------

_PROTOCOL_REGISTRY: Dict[str, Type["PublicParams"]] = {}


def _unpickle_params(data: Dict[str, object]) -> "PublicParams":
    """Pickle hook: rebuild parameters from their ``to_dict()`` payload.

    Importing :mod:`repro.protocol` populates the registry with every
    built-in protocol, so parameter objects can be unpickled in a worker
    process that never imported the concrete protocol module.  (Third-party
    protocols must be importable from their defining module as usual.)
    """
    import repro.protocol  # noqa: F401 — registers the built-in protocols
    return PublicParams.from_dict(data)


def register_protocol(cls: Type["PublicParams"]) -> Type["PublicParams"]:
    """Class decorator registering a :class:`PublicParams` subclass for
    :meth:`PublicParams.from_dict` dispatch."""
    if not cls.protocol or cls.protocol == "abstract":
        raise ValueError("protocol classes must define a unique `protocol` name")
    _PROTOCOL_REGISTRY[cls.protocol] = cls
    return cls


class PublicParams(abc.ABC):
    """Serializable public randomness/configuration published by the server.

    Everything a client needs to encode (hash coefficients, bucket counts, ε,
    the repetition-assignment policy) and everything a shard worker needs to
    aggregate lives here.  Two parameter objects that serialize identically
    are interchangeable, which is what makes shard aggregators mergeable.
    """

    #: registry key; subclasses override
    protocol: str = "abstract"

    # ----- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary describing these parameters."""
        data = {"protocol": self.protocol}
        data.update(self._payload_dict())
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PublicParams":
        """Rebuild parameters from :meth:`to_dict` output.

        Called on the base class this dispatches on ``data["protocol"]``;
        called on a subclass it checks the tag and rebuilds directly.
        """
        name = str(data.get("protocol", ""))
        if cls is PublicParams:
            try:
                target = _PROTOCOL_REGISTRY[name]
            except KeyError:
                raise ValueError(f"unknown protocol {name!r}; registered: "
                                 f"{sorted(_PROTOCOL_REGISTRY)}") from None
            return target.from_dict(data)
        if name != cls.protocol:
            raise ValueError(f"cannot load {name!r} parameters as {cls.protocol!r}")
        return cls._from_payload({k: v for k, v in data.items() if k != "protocol"})

    @abc.abstractmethod
    def _payload_dict(self) -> Dict[str, object]:
        """Subclass hook: JSON-safe payload (everything except the tag)."""

    @classmethod
    @abc.abstractmethod
    def _from_payload(cls, payload: Dict[str, object]) -> "PublicParams":
        """Subclass hook: rebuild from :meth:`_payload_dict` output."""

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, PublicParams)
                and other.protocol == self.protocol
                and other.to_dict() == self.to_dict())

    def __hash__(self) -> int:  # pragma: no cover - dict-keyed use is rare
        return hash(self.protocol)

    def __reduce__(self) -> Tuple[Callable[[Dict[str, object]],
                                           "PublicParams"],
                                  Tuple[Dict[str, object]]]:
        """Pickle through the JSON payload: the wire format *is* the state.

        This keeps pickling stable across refactors of derived attributes
        (rebuilt in ``__init__``) and guarantees that a parameter object
        shipped to an engine worker process compares equal (``__eq__`` is
        ``to_dict()`` equality) to the original — the precondition for
        merging the worker's aggregator back into the parent's.
        """
        return (_unpickle_params, (self.to_dict(),))

    # ----- factories -------------------------------------------------------------

    @abc.abstractmethod
    def make_encoder(self) -> "ClientEncoder":
        """Build the stateless client-side encoder for these parameters."""

    @abc.abstractmethod
    def make_aggregator(self) -> "ServerAggregator":
        """Build an empty server-side aggregator for these parameters."""

    # ----- accounting ------------------------------------------------------------

    @property
    @abc.abstractmethod
    def report_bits(self) -> float:
        """Exact wire size of one encoded report, in bits."""


class ClientEncoder(abc.ABC):
    """Stateless per-user encoder built from :class:`PublicParams`.

    Encoders hold no mutable state: the same parameters always build an
    equivalent encoder, and every call draws only from the ``rng`` argument,
    mirroring randomization on the user's own device.
    """

    def __init__(self, params: PublicParams) -> None:
        self.params = params

    @property
    def report_bits(self) -> float:
        """Wire size of one report produced by this encoder, in bits."""
        return self.params.report_bits

    def encode(self, value: int, rng: RandomState = None,
               user_index: Optional[int] = None) -> Report:
        """Encode a single user's value into one wire report.

        ``user_index`` feeds deterministic assignment policies (round-robin or
        hashed repetition/coordinate assignment); when omitted, an anonymous
        index is drawn uniformly from ``rng`` so assignments stay uniform
        across clients that never learned an index.
        """
        gen = as_generator(rng)
        if user_index is None:
            user_index = self._draw_user_index(gen)
        batch = self.encode_batch(np.asarray([value], dtype=np.int64), gen,
                                  first_user_index=int(user_index))
        return next(iter(batch))

    def _draw_user_index(self, gen: np.random.Generator) -> int:
        """Subclass hook: random index for anonymous clients.

        Protocols whose assignment policy is a deterministic function of the
        user index must override this, otherwise every anonymous client would
        collapse into assignment slot 0.
        """
        return 0

    @abc.abstractmethod
    def encode_batch(self, values: Sequence[int], rng: RandomState = None,
                     first_user_index: int = 0) -> ReportBatch:
        """Vectorized encoding of ``values[i]`` for users ``first_user_index + i``."""


class ServerAggregator(abc.ABC):
    """Incremental, mergeable server-side aggregation of wire reports.

    Aggregators keep exact integer state, so ``merge`` is commutative and
    associative *bit for bit*: sharding a report stream across K workers and
    merging their aggregators reproduces single-server ingestion exactly.
    """

    def __init__(self, params: PublicParams) -> None:
        self.params = params
        self.num_reports = 0

    # ----- ingestion ----------------------------------------------------------------

    def absorb(self, report: Report) -> "ServerAggregator":
        """Ingest a single report (streaming path).  Returns ``self``."""
        self.absorb_batch(ReportBatch.from_reports([report]))
        return self

    def absorb_batch(self, reports: Union[ReportBatch, Iterable[Report]]
                     ) -> "ServerAggregator":
        """Ingest a batch of reports (columnar fast path).  Returns ``self``."""
        if not isinstance(reports, ReportBatch):
            reports = list(reports)
            if not reports:
                return self
            reports = ReportBatch.from_reports(reports)
        if reports.protocol != self.params.protocol:
            raise ValueError(f"cannot absorb {reports.protocol!r} reports into a "
                             f"{self.params.protocol!r} aggregator")
        if len(reports) == 0:
            return self
        self._absorb_columns(reports)
        self.num_reports += len(reports)
        return self

    @abc.abstractmethod
    def _absorb_columns(self, batch: ReportBatch) -> None:
        """Subclass hook: fold a non-empty columnar batch into the state."""

    # ----- merging ------------------------------------------------------------------

    def merge(self, other: "ServerAggregator") -> "ServerAggregator":
        """Combine two shard aggregators into a new one (state is summed).

        The operation is commutative and associative; both operands are left
        untouched.  Aggregators must have been built from equal public
        parameters.
        """
        if type(other) is not type(self):
            raise TypeError(f"cannot merge {type(other).__name__} into "
                            f"{type(self).__name__}")
        if other.params != self.params:
            raise ValueError("cannot merge aggregators with different public "
                             "parameters")
        merged = self._merge_impl(other)
        merged.num_reports = self.num_reports + other.num_reports
        return merged

    @abc.abstractmethod
    def _merge_impl(self, other: "ServerAggregator") -> "ServerAggregator":
        """Subclass hook: new aggregator whose state is the sum of both."""

    # ----- durable snapshots --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe checkpoint of the full aggregator state.

        The payload carries the public parameters (``to_dict``), the report
        count, and the exact integer state (``_state_dict``), so a server
        can write it to disk, crash, and rebuild an aggregator that
        finalizes **bit-identically** via :meth:`from_snapshot` — integers
        survive JSON exactly, and no floating-point value is ever part of
        the state.
        """
        return {"format": SNAPSHOT_FORMAT,
                "version": SNAPSHOT_VERSION,
                "params": self.params.to_dict(),
                "num_reports": int(self.num_reports),
                "state": self._state_dict()}

    @staticmethod
    def from_snapshot(data: Dict[str, object]) -> "ServerAggregator":
        """Rebuild an aggregator from :meth:`snapshot` output.

        Dispatches on the embedded parameters' ``protocol`` tag, so any
        registered protocol restores through this one entry point.
        """
        if data.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(f"not an aggregator snapshot: "
                             f"format={data.get('format')!r}")
        version = int(data.get("version", 0))
        if version != SNAPSHOT_VERSION:
            raise ValueError(f"unsupported snapshot version {version} "
                             f"(expected {SNAPSHOT_VERSION})")
        params = PublicParams.from_dict(dict(data["params"]))
        aggregator = params.make_aggregator()
        aggregator.restore(data)
        return aggregator

    def restore(self, data: Dict[str, object]) -> "ServerAggregator":
        """Load a snapshot into this (freshly built) aggregator in place.

        The snapshot's parameters must equal this aggregator's — restoring
        state produced under different public randomness would silently
        decode garbage.  Returns ``self``.
        """
        if data.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(f"not an aggregator snapshot: "
                             f"format={data.get('format')!r}")
        snapshot_params = PublicParams.from_dict(dict(data["params"]))
        if snapshot_params != self.params:
            raise ValueError("cannot restore a snapshot taken under different "
                             "public parameters")
        self._load_state(dict(data["state"]))
        self.num_reports = int(data["num_reports"])
        return self

    @abc.abstractmethod
    def _state_dict(self) -> Dict[str, object]:
        """Subclass hook: JSON-safe dictionary of the exact integer state."""

    @abc.abstractmethod
    def _load_state(self, state: Dict[str, object]) -> None:
        """Subclass hook: overwrite the state with :meth:`_state_dict` output."""

    # ----- finalization -------------------------------------------------------------

    @abc.abstractmethod
    def finalize(self) -> Any:
        """Debias the aggregate into a fitted estimator.

        Frequency-oracle aggregators return a ready-to-query
        :class:`~repro.frequency.base.FrequencyOracle`; heavy-hitters
        aggregators return a :class:`~repro.core.results.HeavyHitterResult`.
        """

    # ----- accounting ---------------------------------------------------------------

    @property
    @abc.abstractmethod
    def state_size(self) -> int:
        """Number of scalars retained by this aggregator."""


def merge_aggregators(aggregators: Sequence[ServerAggregator]) -> ServerAggregator:
    """Fold a non-empty sequence of shard aggregators into one."""
    if not aggregators:
        raise ValueError("need at least one aggregator")
    merged = aggregators[0]
    for aggregator in aggregators[1:]:
        merged = merged.merge(aggregator)
    return merged


def child_state(aggregator: ServerAggregator) -> Dict[str, object]:
    """Snapshot payload of a *nested* aggregator (state + count, no params).

    Composite aggregators (Hashtogram's per-repetition inner accumulators,
    the heavy-hitters stage-1 arrays) embed their children with this helper:
    the children's parameters are derivable from the parent's, so only the
    integer state and the report count are stored.
    """
    return {"num_reports": int(aggregator.num_reports),
            "state": aggregator._state_dict()}


def load_child_state(aggregator: ServerAggregator,
                     data: Dict[str, object]) -> ServerAggregator:
    """Inverse of :func:`child_state`: load a nested payload in place."""
    aggregator._load_state(dict(data["state"]))
    aggregator.num_reports = int(data["num_reports"])
    return aggregator
