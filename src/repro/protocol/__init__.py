"""Client/server wire API for every LDP protocol in the library.

The local model's deployment shape — millions of clients each shipping one
short randomized report to an untrusted server — is made explicit by three
abstractions (see :mod:`repro.protocol.wire`):

* :class:`PublicParams` — serializable public randomness/configuration the
  server publishes (``to_dict``/``from_dict`` round-trip);
* :class:`ClientEncoder` — stateless per-user encoding:
  ``encode(value, rng) -> Report`` and the vectorized ``encode_batch``;
* :class:`ServerAggregator` — incremental ``absorb``/``absorb_batch``
  ingestion into exact integer state, commutative/associative ``merge`` for
  sharded aggregation, JSON-safe ``snapshot()``/``from_snapshot()``
  checkpoints that restore bit-identically, and ``finalize()`` into a
  fitted estimator.

Report batches and aggregator state have two interchangeable wire forms:
the JSON-safe dictionaries above (debug-friendly, the compatibility
default) and the zero-copy binary columnar codec of
:mod:`repro.protocol.binary` (raw little-endian columns behind a struct
header; several times smaller and decode-free on ingest).  Both round-trip
to bit-identical aggregates.

The layers above: :mod:`repro.engine` runs this API across a process pool
for simulation; :mod:`repro.server` serves it over TCP as a long-lived
ingestion service (see ``docs/architecture.md``).

Concrete wire protocols::

    ExplicitHistogramParams   small-domain oracle (Theorem 3.8)
    HashtogramParams          general-domain oracle (Theorem 3.7)
    CountMeanSketchParams     Apple-style Count-Mean-Sketch [33]
    RapporParams              basic RAPPOR reports [12]
    ExpanderSketchParams      PrivateExpanderSketch heavy hitters (Section 3.3)
    SingleHashParams          single-hash baseline of Bassily et al. [3]

Typical sharded deployment::

    from repro.protocol import HashtogramParams, merge_aggregators

    params = HashtogramParams.create(domain_size=1 << 20, epsilon=1.0,
                                     num_buckets=256, rng=0)
    payload = params.to_dict()                      # ship to clients

    encoder = HashtogramParams.from_dict(payload).make_encoder()
    batch = encoder.encode_batch(values, rng=1)     # clients randomize

    shards = [params.make_aggregator() for _ in range(4)]
    for shard, part in zip(shards, batch.split(4)):
        shard.absorb_batch(part)                    # workers ingest
    oracle = merge_aggregators(shards).finalize()   # bit-exact vs 1 server
    oracle.estimate(x)
"""

from repro.protocol.binary import (
    BinaryFormatError,
    decode_reports_payload,
    encode_reports_payload,
    is_binary_payload,
    pack_state,
    unpack_state,
)
from repro.protocol.count_mean_sketch import (
    CountMeanSketchAggregator,
    CountMeanSketchEncoder,
    CountMeanSketchParams,
)
from repro.protocol.explicit import (
    ExplicitHistogramAggregator,
    ExplicitHistogramEncoder,
    ExplicitHistogramParams,
)
from repro.protocol.hashtogram import (
    HashtogramAggregator,
    HashtogramEncoder,
    HashtogramParams,
)
from repro.protocol.heavy_hitters import (
    ExpanderSketchAggregator,
    ExpanderSketchEncoder,
    ExpanderSketchParams,
    SingleHashAggregator,
    SingleHashEncoder,
    SingleHashParams,
)
from repro.protocol.rappor import (
    RapporAggregate,
    RapporAggregator,
    RapporEncoder,
    RapporParams,
)
from repro.protocol.wire import (
    ClientEncoder,
    PublicParams,
    Report,
    ReportBatch,
    ServerAggregator,
    merge_aggregators,
    register_protocol,
)

__all__ = [
    "Report",
    "ReportBatch",
    "PublicParams",
    "ClientEncoder",
    "ServerAggregator",
    "merge_aggregators",
    "register_protocol",
    "BinaryFormatError",
    "decode_reports_payload",
    "encode_reports_payload",
    "is_binary_payload",
    "pack_state",
    "unpack_state",
    "ExplicitHistogramParams",
    "ExplicitHistogramEncoder",
    "ExplicitHistogramAggregator",
    "HashtogramParams",
    "HashtogramEncoder",
    "HashtogramAggregator",
    "CountMeanSketchParams",
    "CountMeanSketchEncoder",
    "CountMeanSketchAggregator",
    "RapporParams",
    "RapporEncoder",
    "RapporAggregator",
    "RapporAggregate",
    "ExpanderSketchParams",
    "ExpanderSketchEncoder",
    "ExpanderSketchAggregator",
    "SingleHashParams",
    "SingleHashEncoder",
    "SingleHashAggregator",
]
