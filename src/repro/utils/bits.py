"""Bit and symbol manipulation helpers.

The heavy-hitters protocol represents domain elements ``x`` in ``[0, |X|)`` as
``M`` symbols over an alphabet ``[W]`` (Section 3.1.1 of the paper) and the
Reed-Solomon outer code works with fixed-width field symbols.  These helpers
convert between integers, bit vectors, and symbol vectors deterministically.
"""

from __future__ import annotations

from typing import List, Sequence


def bits_needed(value: int) -> int:
    """Number of bits needed to represent values in ``[0, value)`` (at least 1)."""
    if value <= 0:
        raise ValueError("value must be positive")
    return max((value - 1).bit_length(), 1)


def int_to_bits(value: int, width: int) -> List[int]:
    """Little-endian bit decomposition of ``value`` padded to ``width`` bits."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits` (little-endian)."""
    value = 0
    for i, b in enumerate(bits):
        if b not in (0, 1):
            raise ValueError("bits must be 0/1")
        value |= (int(b) & 1) << i
    return value


def int_to_symbols(value: int, num_symbols: int, alphabet_size: int) -> List[int]:
    """Decompose ``value`` into ``num_symbols`` base-``alphabet_size`` digits.

    Little-endian: the first symbol is the least-significant digit.  Raises if
    ``value`` does not fit.
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if alphabet_size < 2:
        raise ValueError("alphabet_size must be at least 2")
    if num_symbols < 1:
        raise ValueError("num_symbols must be at least 1")
    symbols = []
    remaining = value
    for _ in range(num_symbols):
        symbols.append(remaining % alphabet_size)
        remaining //= alphabet_size
    if remaining != 0:
        raise ValueError(
            f"value {value} does not fit in {num_symbols} symbols over "
            f"alphabet of size {alphabet_size}"
        )
    return symbols


def symbols_to_int(symbols: Sequence[int], alphabet_size: int) -> int:
    """Inverse of :func:`int_to_symbols`."""
    value = 0
    for i, s in enumerate(symbols):
        s = int(s)
        if not 0 <= s < alphabet_size:
            raise ValueError(f"symbol {s} outside alphabet [0, {alphabet_size})")
        value += s * (alphabet_size**i)
    return value


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of coordinates on which two equal-length sequences disagree."""
    if len(a) != len(b):
        raise ValueError("sequences must have equal length")
    return sum(1 for x, y in zip(a, b, strict=True) if x != y)


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= value (value must be positive)."""
    if value <= 0:
        raise ValueError("value must be positive")
    return 1 << (value - 1).bit_length()
