"""Shared utilities: random number handling, bit manipulation, validation, timing.

These helpers are deliberately small and dependency-free so that every other
subpackage (hashing, codes, randomizers, frequency oracles, the heavy-hitters
protocol itself) can rely on them without import cycles.
"""

from repro.utils.bits import (
    bits_needed,
    bits_to_int,
    int_to_bits,
    int_to_symbols,
    symbols_to_int,
)
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.timer import ResourceMeter, Timer
from repro.utils.validation import (
    check_delta,
    check_epsilon,
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "RandomState",
    "as_generator",
    "spawn_generators",
    "bits_needed",
    "int_to_symbols",
    "symbols_to_int",
    "int_to_bits",
    "bits_to_int",
    "check_probability",
    "check_positive",
    "check_positive_int",
    "check_epsilon",
    "check_delta",
    "check_in_range",
    "Timer",
    "ResourceMeter",
]
