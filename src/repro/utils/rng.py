"""Random number generation helpers.

Every randomized component in the library accepts an optional ``rng`` argument
that may be ``None`` (fresh entropy), an integer seed, or a
``numpy.random.Generator``.  Centralising the coercion here keeps protocol code
reproducible: an experiment seeds a single generator and spawns independent
child generators for users, hash functions, and the server.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

# Anything we accept where randomness is required.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(rng: RandomState = None) -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    Parameters
    ----------
    rng:
        ``None`` for fresh OS entropy, an ``int`` seed, a ``SeedSequence``, or
        an existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"Cannot interpret {type(rng)!r} as a random generator")


def spawn_generators(rng: RandomState, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators from ``rng``.

    Used to give each simulated user (and each hash function) its own stream so
    that per-user randomization is independent, mirroring the local model where
    each user randomizes on her own device.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def random_odd_integer(rng: RandomState, bits: int) -> int:
    """Return a uniformly random odd integer with at most ``bits`` bits."""
    gen = as_generator(rng)
    value = int(gen.integers(0, 1 << max(bits - 1, 1)))
    return (value << 1) | 1


def sample_distinct(rng: RandomState, low: int, high: int, count: int) -> np.ndarray:
    """Sample ``count`` distinct integers uniformly from ``[low, high)``."""
    if high - low < count:
        raise ValueError("range too small to sample distinct values")
    gen = as_generator(rng)
    return gen.choice(np.arange(low, high), size=count, replace=False)


def bernoulli(rng: RandomState, p: float, size: Optional[int] = None):
    """Sample Bernoulli(p) variates as ``int`` (scalar) or ``np.ndarray``."""
    gen = as_generator(rng)
    if size is None:
        return int(gen.random() < p)
    return (gen.random(size) < p).astype(np.int64)


def choice_weighted(rng: RandomState, items: Iterable, weights: Iterable[float]):
    """Pick one item with the given (unnormalised) weights."""
    gen = as_generator(rng)
    items = list(items)
    w = np.asarray(list(weights), dtype=float)
    if w.sum() <= 0:
        raise ValueError("weights must have positive sum")
    w = w / w.sum()
    idx = gen.choice(len(items), p=w)
    return items[idx]
