"""Lightweight timing and resource metering.

Table 1 of the paper compares protocols on server time, user time, server
memory, and communication per user.  :class:`ResourceMeter` accumulates these
quantities while a protocol runs so that the Table 1 benchmark can report the
same rows the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict


class Timer:
    """Context manager measuring wall-clock time in seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class ResourceMeter:
    """Accumulates the resource columns of Table 1 for a protocol execution.

    Attributes
    ----------
    server_time_s:
        Total wall-clock time spent in server-side aggregation and decoding.
    user_time_s:
        Total wall-clock time spent across all simulated users; divide by the
        number of users for the per-user figure.
    communication_bits:
        Total number of bits sent from users to the server.
    public_randomness_bits:
        Number of public random bits the protocol consumed (hash seeds etc.).
    server_memory_items:
        Peak number of scalar values retained by the server-side data
        structures (a machine-independent proxy for memory).
    counters:
        Free-form named counters for protocol-specific accounting.
    """

    server_time_s: float = 0.0
    user_time_s: float = 0.0
    communication_bits: int = 0
    public_randomness_bits: int = 0
    server_memory_items: int = 0
    counters: Dict[str, float] = field(default_factory=dict)

    def add_server_time(self, seconds: float) -> None:
        self.server_time_s += float(seconds)

    def add_user_time(self, seconds: float) -> None:
        self.user_time_s += float(seconds)

    def add_communication(self, bits: int) -> None:
        self.communication_bits += int(bits)

    def add_public_randomness(self, bits: int) -> None:
        self.public_randomness_bits += int(bits)

    def observe_server_memory(self, items: int) -> None:
        self.server_memory_items = max(self.server_memory_items, int(items))

    def bump(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def per_user_communication_bits(self, num_users: int) -> float:
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        return self.communication_bits / num_users

    def per_user_time_s(self, num_users: int) -> float:
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        return self.user_time_s / num_users

    def as_dict(self) -> Dict[str, float]:
        """Flatten into a plain dictionary (used by benchmark reporting)."""
        out = {
            "server_time_s": self.server_time_s,
            "user_time_s": self.user_time_s,
            "communication_bits": float(self.communication_bits),
            "public_randomness_bits": float(self.public_randomness_bits),
            "server_memory_items": float(self.server_memory_items),
        }
        out.update(self.counters)
        return out
