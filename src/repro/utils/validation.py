"""Argument validation helpers shared across the library.

All public constructors validate their parameters eagerly so that protocol
misconfiguration (e.g. a negative privacy budget) fails loudly at setup time
rather than corrupting an experiment silently.
"""

from __future__ import annotations

import math
from typing import Optional


def check_probability(value: float, name: str = "probability", *, allow_zero: bool = True,
                      allow_one: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (optionally excluding endpoints)."""
    value = float(value)
    if math.isnan(value):
        raise ValueError(f"{name} must not be NaN")
    low_ok = value > 0 or (allow_zero and value == 0)
    high_ok = value < 1 or (allow_one and value == 1)
    if not (low_ok and high_ok):
        raise ValueError(f"{name} must lie in the unit interval, got {value}")
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is a finite, strictly positive float."""
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def check_positive_int(value: int, name: str = "value") -> int:
    """Validate that ``value`` is a strictly positive integer."""
    if int(value) != value or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return int(value)


def check_nonnegative_int(value: int, name: str = "value") -> int:
    """Validate that ``value`` is a non-negative integer."""
    if int(value) != value or value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value}")
    return int(value)


def check_epsilon(epsilon: float, name: str = "epsilon") -> float:
    """Validate a (pure) differential-privacy parameter ε > 0."""
    return check_positive(epsilon, name)


def check_delta(delta: float, name: str = "delta") -> float:
    """Validate an approximate-DP parameter δ in [0, 1)."""
    delta = float(delta)
    if math.isnan(delta) or delta < 0 or delta >= 1:
        raise ValueError(f"{name} must lie in [0, 1), got {delta}")
    return delta


def check_in_range(value: float, low: float, high: float, name: str = "value") -> float:
    """Validate low <= value <= high."""
    value = float(value)
    if not low <= value <= high:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")
    return value


def check_domain_element(x: int, domain_size: int, name: str = "x") -> int:
    """Validate that ``x`` is an integer in ``[0, domain_size)``."""
    if int(x) != x:
        raise ValueError(f"{name} must be an integer, got {x!r}")
    x = int(x)
    if not 0 <= x < domain_size:
        raise ValueError(f"{name}={x} outside domain [0, {domain_size})")
    return x


def check_same_length(a, b, name_a: str = "a", name_b: str = "b") -> None:
    """Validate that two sequences have the same length."""
    if len(a) != len(b):
        raise ValueError(f"{name_a} and {name_b} must have the same length "
                         f"({len(a)} != {len(b)})")


def coalesce(value, default):
    """Return ``value`` if it is not None, otherwise ``default``."""
    return default if value is None else value


def check_optional_positive_int(value: Optional[int], name: str) -> Optional[int]:
    """Validate that ``value`` is None or a positive integer."""
    if value is None:
        return None
    return check_positive_int(value, name)
