"""Cluster-preserving clustering for the list-recovery decoder (Theorem B.3).

The decoder of Appendix B builds a layered graph G on vertex set [M]×[Y]: each
heavy hitter x contributes an (almost intact) copy of the expander F on the
vertices {(m, h_m(x))}, plus a bounded amount of noise edges.  The clustering
task is: find vertex sets that match every η-spectral cluster up to O(η)
volume.  Larsen et al. [22] give a bespoke linear-space algorithm; here we use
the practical equivalent for laptop-scale parameters:

1. connected components of G (clusters from different heavy hitters are almost
   always already disconnected because the hash range Y is much larger than
   the number of heavy items per bucket), then
2. recursive spectral bisection (Fiedler-vector sweep cut) of any component
   whose size is much larger than one expander copy, accepting a cut only when
   its conductance is low — exactly the situation in which two clusters were
   merged by a few spurious edges.

This preserves the property the decoder needs — each spectral cluster is
returned approximately intact — which is what Theorem B.3 guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

import numpy as np


Vertex = Hashable


@dataclass(frozen=True)
class Cluster:
    """A recovered cluster: a set of vertices of the layered graph."""

    vertices: Tuple[Vertex, ...]

    def __len__(self) -> int:
        return len(self.vertices)

    def __iter__(self):
        return iter(self.vertices)


class SpectralClusterer:
    """Find cluster-preserving vertex sets in an undirected graph.

    Parameters
    ----------
    expected_cluster_size:
        The size of one intact cluster (M, the number of coordinates).
        Components up to ``oversize_factor * expected_cluster_size`` are kept
        whole; larger ones are recursively split.
    min_cluster_size:
        Components smaller than this are discarded as noise (they cannot
        contain enough chunks to decode the outer code anyway).
    conductance_threshold:
        A spectral sweep cut is applied only if its conductance is below this
        value; otherwise the component is kept whole (splitting a genuine
        expander would destroy a cluster, and expanders have high conductance).
    oversize_factor:
        How much larger than ``expected_cluster_size`` a component may be
        before we attempt to split it.
    """

    def __init__(self, expected_cluster_size: int, min_cluster_size: int = 2,
                 conductance_threshold: float = 0.15,
                 oversize_factor: float = 1.5,
                 max_recursion_depth: int = 12) -> None:
        if expected_cluster_size < 1:
            raise ValueError("expected_cluster_size must be positive")
        self.expected_cluster_size = int(expected_cluster_size)
        self.min_cluster_size = int(min_cluster_size)
        self.conductance_threshold = float(conductance_threshold)
        self.oversize_factor = float(oversize_factor)
        self.max_recursion_depth = int(max_recursion_depth)

    # ----- public API ---------------------------------------------------------

    def find_clusters(self, adjacency: Dict[Vertex, Set[Vertex]]) -> List[Cluster]:
        """Return the recovered clusters of the graph given as an adjacency dict."""
        clusters: List[Cluster] = []
        for component in self._connected_components(adjacency):
            if len(component) < self.min_cluster_size:
                continue
            for piece in self._split_recursively(component, adjacency, depth=0):
                if len(piece) >= self.min_cluster_size:
                    clusters.append(Cluster(vertices=tuple(sorted(piece, key=repr))))
        return clusters

    # ----- connected components -----------------------------------------------

    @staticmethod
    def _connected_components(adjacency: Dict[Vertex, Set[Vertex]]) -> List[List[Vertex]]:
        seen: Set[Vertex] = set()
        components: List[List[Vertex]] = []
        for start in adjacency:
            if start in seen:
                continue
            stack = [start]
            seen.add(start)
            component = []
            while stack:
                v = stack.pop()
                component.append(v)
                for u in adjacency.get(v, ()):  # pragma: no branch
                    if u not in seen:
                        seen.add(u)
                        stack.append(u)
            components.append(component)
        return components

    # ----- recursive spectral splitting ----------------------------------------

    def _split_recursively(self, vertices: List[Vertex],
                           adjacency: Dict[Vertex, Set[Vertex]],
                           depth: int) -> List[List[Vertex]]:
        limit = self.oversize_factor * self.expected_cluster_size
        if len(vertices) <= limit or depth >= self.max_recursion_depth:
            return [vertices]
        cut = self._sweep_cut(vertices, adjacency)
        if cut is None:
            return [vertices]
        side_a, side_b, conductance = cut
        if conductance > self.conductance_threshold:
            return [vertices]
        out: List[List[Vertex]] = []
        out.extend(self._split_recursively(side_a, adjacency, depth + 1))
        out.extend(self._split_recursively(side_b, adjacency, depth + 1))
        return out

    def _sweep_cut(self, vertices: List[Vertex],
                   adjacency: Dict[Vertex, Set[Vertex]]
                   ) -> Tuple[List[Vertex], List[Vertex], float] | None:
        """Best sweep cut along the Fiedler vector of the induced subgraph.

        Returns (side_a, side_b, conductance) or None when the subgraph is too
        small or numerically degenerate.
        """
        n = len(vertices)
        if n < 4:
            return None
        index = {v: i for i, v in enumerate(vertices)}
        inside = set(vertices)
        # Build the induced adjacency matrix.
        adj = np.zeros((n, n))
        for v in vertices:
            i = index[v]
            for u in adjacency.get(v, ()):  # pragma: no branch
                if u in inside:
                    adj[i, index[u]] = 1.0
        degrees = adj.sum(axis=1)
        if degrees.sum() == 0:
            return None
        laplacian = np.diag(degrees) - adj
        try:
            eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
        except np.linalg.LinAlgError:  # pragma: no cover - defensive
            return None
        # The Fiedler vector is the eigenvector of the second smallest eigenvalue.
        fiedler = eigenvectors[:, 1] if eigenvalues.shape[0] > 1 else None
        if fiedler is None:
            return None
        order = np.argsort(fiedler)
        total_volume = degrees.sum()

        best = None
        prefix: Set[int] = set()
        volume_prefix = 0.0
        boundary = 0.0
        for rank in range(n - 1):
            i = int(order[rank])
            prefix.add(i)
            volume_prefix += degrees[i]
            # Update boundary incrementally: edges from i to outside minus
            # edges from i to inside (which were previously boundary edges).
            for j in range(n):
                if adj[i, j]:
                    if j in prefix:
                        boundary -= 1.0
                    else:
                        boundary += 1.0
            denom = min(volume_prefix, total_volume - volume_prefix)
            if denom <= 0:
                continue
            conductance = boundary / denom
            if best is None or conductance < best[0]:
                best = (conductance, set(prefix))
        if best is None:
            return None
        conductance, side_set = best
        side_a = [vertices[i] for i in range(n) if i in side_set]
        side_b = [vertices[i] for i in range(n) if i not in side_set]
        if not side_a or not side_b:
            return None
        return side_a, side_b, float(conductance)


def adjacency_from_edges(edges: Iterable[Tuple[Vertex, Vertex]]) -> Dict[Vertex, Set[Vertex]]:
    """Build an adjacency dictionary from an edge list (ignoring self-loops)."""
    adjacency: Dict[Vertex, Set[Vertex]] = {}
    for u, v in edges:
        if u == v:
            continue
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    return adjacency


def volume(vertices: Sequence[Vertex], adjacency: Dict[Vertex, Set[Vertex]]) -> int:
    """Sum of degrees of ``vertices`` in the graph (the paper's vol(W))."""
    return int(sum(len(adjacency.get(v, ())) for v in vertices))
