"""Construction and verification of d-regular spectral expanders.

Appendix B of the paper uses a d-regular λ0-spectral expander F on M vertices
with λ0 = α·d for a small constant α.  Footnote 7 observes that because
spectral expansion is efficiently verifiable and random regular graphs are
expanders with high probability, a Las-Vegas construction (sample, verify,
retry) suffices.  That is exactly what :func:`random_regular_expander` does,
using networkx to sample random regular graphs and numpy to compute the second
adjacency eigenvalue.

For very small vertex counts (M <= d + 1) the complete graph is returned; it
is the best possible expander on those sizes and keeps the decoder working for
toy parameters used in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int


def second_eigenvalue(graph: nx.Graph) -> float:
    """Second largest eigenvalue (in magnitude) of the unnormalised adjacency matrix."""
    if graph.number_of_nodes() < 2:
        return 0.0
    adjacency = nx.to_numpy_array(graph)
    eigenvalues = np.linalg.eigvalsh(adjacency)
    magnitudes = np.sort(np.abs(eigenvalues))[::-1]
    return float(magnitudes[1])


@dataclass(frozen=True)
class ExpanderGraph:
    """A d-regular graph on vertices ``0..num_vertices-1`` with a verified spectral bound.

    Attributes
    ----------
    neighbor_lists:
        ``neighbor_lists[m]`` is the ordered tuple of the d neighbours of m,
        i.e. ``Γ(m)_1, ..., Γ(m)_d`` in the paper's notation.  The ordering is
        fixed so that encoders and decoders agree on which neighbour index a
        hash value refers to.
    degree:
        The regular degree d.
    lambda2:
        The verified second adjacency eigenvalue (in magnitude).
    """

    neighbor_lists: Tuple[Tuple[int, ...], ...]
    degree: int
    lambda2: float

    @property
    def num_vertices(self) -> int:
        return len(self.neighbor_lists)

    @property
    def spectral_ratio(self) -> float:
        """λ2 / d — the α of an α·d-spectral expander."""
        return self.lambda2 / self.degree if self.degree else 0.0

    def neighbors(self, vertex: int) -> Tuple[int, ...]:
        """The ordered neighbours Γ(vertex)."""
        return self.neighbor_lists[vertex]

    def neighbor_index(self, vertex: int, neighbor: int) -> int:
        """Position of ``neighbor`` within Γ(vertex); raises ValueError if absent."""
        return self.neighbor_lists[vertex].index(neighbor)

    def to_networkx(self) -> nx.Graph:
        """Rebuild a networkx graph (mostly for inspection and tests)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_vertices))
        for u, nbrs in enumerate(self.neighbor_lists):
            for v in nbrs:
                graph.add_edge(u, v)
        return graph

    def edge_boundary_size(self, subset: Sequence[int]) -> int:
        """Number of edges with exactly one endpoint in ``subset``."""
        inside = set(int(v) for v in subset)
        count = 0
        for u in inside:
            for v in self.neighbor_lists[u]:
                if v not in inside:
                    count += 1
        return count


def expander_mixing_lower_bound(degree: int, lambda2: float, subset_size: int,
                                num_vertices: int) -> float:
    """Lemma B.1: for any S with |S| = r|V|, ``|∂S| >= (d - λ)(1 - r)|S|``."""
    check_positive_int(degree, "degree")
    check_positive_int(num_vertices, "num_vertices")
    if not 0 <= subset_size <= num_vertices:
        raise ValueError("subset_size must lie in [0, num_vertices]")
    if subset_size == 0:
        return 0.0
    r = subset_size / num_vertices
    return (degree - lambda2) * (1.0 - r) * subset_size


def _complete_graph_expander(num_vertices: int) -> ExpanderGraph:
    """The complete graph K_M as an expander (used for tiny M)."""
    neighbor_lists = tuple(
        tuple(v for v in range(num_vertices) if v != u) for u in range(num_vertices)
    )
    graph = nx.complete_graph(num_vertices)
    lam = second_eigenvalue(graph)
    return ExpanderGraph(neighbor_lists=neighbor_lists, degree=num_vertices - 1,
                         lambda2=lam)


def random_regular_expander(num_vertices: int, degree: int,
                            spectral_ratio: float = 0.5,
                            rng: RandomState = None,
                            max_attempts: int = 50) -> ExpanderGraph:
    """Sample a d-regular graph and verify it is a ``spectral_ratio * d``-expander.

    Parameters
    ----------
    num_vertices:
        Number of vertices M.
    degree:
        Regular degree d; ``num_vertices * degree`` must be even (networkx
        requirement).  If ``num_vertices <= degree + 1`` the complete graph is
        returned instead.
    spectral_ratio:
        Acceptance threshold α: the graph is accepted when λ2 <= α·d.  Random
        regular graphs have λ2 ≈ 2·sqrt(d-1) with high probability, so α = 0.5
        is comfortably achievable for d >= 16 and still fine for d = 8.
    rng, max_attempts:
        Las-Vegas retry control.  If no accepted graph is found within the
        attempt budget the best candidate seen is returned (its λ2 is recorded,
        so callers can still reason about the actual expansion).
    """
    check_positive_int(num_vertices, "num_vertices")
    check_positive_int(degree, "degree")
    if num_vertices <= degree + 1:
        return _complete_graph_expander(num_vertices)
    gen = as_generator(rng)

    best: ExpanderGraph | None = None
    actual_degree = degree
    if (num_vertices * degree) % 2 != 0:
        actual_degree = degree + 1
        if num_vertices <= actual_degree + 1:
            return _complete_graph_expander(num_vertices)

    for _ in range(max_attempts):
        seed = int(gen.integers(0, 2**31 - 1))
        graph = nx.random_regular_graph(actual_degree, num_vertices, seed=seed)
        lam = second_eigenvalue(graph)
        candidate = ExpanderGraph(
            neighbor_lists=tuple(tuple(sorted(graph.neighbors(u)))
                                 for u in range(num_vertices)),
            degree=actual_degree,
            lambda2=lam,
        )
        if best is None or candidate.lambda2 < best.lambda2:
            best = candidate
        if lam <= spectral_ratio * actual_degree and nx.is_connected(graph):
            return candidate
    assert best is not None
    return best


def neighbor_map(expander: ExpanderGraph) -> Dict[int, List[int]]:
    """Convenience: neighbour lists as a plain dictionary."""
    return {u: list(nbrs) for u, nbrs in enumerate(expander.neighbor_lists)}
