"""Expander graphs and cluster-preserving clustering.

* :mod:`repro.graphs.expanders` constructs d-regular λ-spectral expanders on M
  vertices (Appendix B item 2) as verified random regular graphs — the paper's
  own footnote 7 notes this Las-Vegas construction suffices because spectral
  expansion can be checked efficiently — and provides the expander mixing lemma
  (Lemma B.1) as an evaluable bound.
* :mod:`repro.graphs.spectral_cluster` finds the spectral clusters of the
  layered decoding graph (the role played by Theorem B.3's cluster-preserving
  clustering): connected components refined by low-conductance spectral sweeps.
"""

from repro.graphs.expanders import (
    ExpanderGraph,
    random_regular_expander,
    second_eigenvalue,
    expander_mixing_lower_bound,
)
from repro.graphs.spectral_cluster import SpectralClusterer, Cluster

__all__ = [
    "ExpanderGraph",
    "random_regular_expander",
    "second_eigenvalue",
    "expander_mixing_lower_bound",
    "SpectralClusterer",
    "Cluster",
]
