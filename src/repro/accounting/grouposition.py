"""Advanced grouposition (Theorems 4.2 and 4.3).

In the local model, an ε-LDP protocol applied to two databases differing in k
entries has privacy loss at most

    ``ε' = kε²/2 + ε sqrt(2k ln(1/δ))``     except with probability δ,

i.e. group privacy degrades like ≈ sqrt(k)·ε rather than the central model's
kε.  The proof is the advanced-composition argument applied across the k
changed coordinates: each local randomizer's loss has mean at most ε²/2 and is
bounded by ε, so Hoeffding concentrates the sum.

Besides the analytic bounds, :class:`GroupPrivacyAnalyzer` measures the actual
group privacy loss of a concrete product of local randomizers by Monte-Carlo
sampling (or exact enumeration per coordinate), which is what the Section 4
benchmark plots against the kε and sqrt(k)ε curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.accounting.privacy_loss import exact_privacy_loss_distribution
from repro.randomizers.base import LocalRandomizer
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_epsilon, check_positive_int, check_probability


def advanced_grouposition(k: int, epsilon: float, delta: float) -> float:
    """Theorem 4.2: group privacy parameter ``kε²/2 + ε sqrt(2k ln(1/δ))``.

    The returned ε' satisfies: for any ε-LDP protocol A and databases x, x'
    differing in at most k entries, ``Pr[A(x) ∈ T] <= e^{ε'} Pr[A(x') ∈ T] + δ``.
    """
    check_positive_int(k, "k")
    check_epsilon(epsilon)
    check_probability(delta, "delta", allow_zero=False, allow_one=False)
    return k * epsilon**2 / 2.0 + epsilon * math.sqrt(2.0 * k * math.log(1.0 / delta))


def advanced_grouposition_approximate(k: int, epsilon: float, delta: float,
                                      delta_prime: float) -> Tuple[float, float]:
    """Theorem 4.3: for (ε, δ)-LDP protocols, groups of size k satisfy
    ``(kε²/2 + ε sqrt(2k ln(1/δ')), δ + kδ')``-indistinguishability."""
    check_delta = delta  # noqa: F841 - documented below
    if delta < 0 or delta >= 1:
        raise ValueError("delta must lie in [0, 1)")
    epsilon_prime = advanced_grouposition(k, epsilon, delta_prime)
    return epsilon_prime, delta + k * delta_prime


def grouposition_advantage(k: int, epsilon: float, delta: float) -> float:
    """Ratio between the central-model kε bound and the local-model bound.

    Values above 1 quantify how much stronger group privacy is in the local
    model; the ratio grows like sqrt(k) for small ε.
    """
    return (k * epsilon) / advanced_grouposition(k, epsilon, delta)


@dataclass(frozen=True)
class GroupLossEstimate:
    """Empirical group privacy loss for one group size.

    ``quantile`` is the (1-δ)-quantile of the sampled cumulative loss — the
    empirical analogue of the ε' in Theorem 4.2.
    """

    group_size: int
    quantile: float
    mean: float
    maximum: float
    delta: float
    num_samples: int


class GroupPrivacyAnalyzer:
    """Measures the group privacy loss of a product of local randomizers.

    Parameters
    ----------
    randomizers:
        The per-user local randomizers ``R_1, ..., R_n`` (one per user).  A
        single randomizer may be passed and is reused for every user.
    """

    def __init__(self, randomizers: Sequence[LocalRandomizer] | LocalRandomizer) -> None:
        if isinstance(randomizers, LocalRandomizer):
            randomizers = [randomizers]
        if not randomizers:
            raise ValueError("need at least one randomizer")
        self.randomizers: List[LocalRandomizer] = list(randomizers)

    def _randomizer_for(self, index: int) -> LocalRandomizer:
        if len(self.randomizers) == 1:
            return self.randomizers[0]
        return self.randomizers[index % len(self.randomizers)]

    # ----- sampling the cumulative loss ------------------------------------------------

    def sample_group_losses(self, x: Sequence, x_prime: Sequence, num_samples: int,
                            rng: RandomState = None) -> np.ndarray:
        """Monte-Carlo samples of L_{A(x),A(x')} for the product protocol.

        Only coordinates where x and x' differ contribute (identical
        coordinates have zero loss), exactly as in the proof of Theorem 4.2.
        Randomizers with an enumerable report space use an exact vectorised
        sampler (draw the loss value directly from its per-coordinate
        distribution); others fall back to sampling reports one by one.
        """
        if len(x) != len(x_prime):
            raise ValueError("databases must have the same length")
        check_positive_int(num_samples, "num_samples")
        gen = as_generator(rng)
        differing = [i for i, (a, b) in enumerate(zip(x, x_prime, strict=True))
                     if a != b]
        totals = np.zeros(num_samples)
        for index in differing:
            randomizer = self._randomizer_for(index)
            if randomizer.report_space() is not None:
                losses, probabilities = exact_privacy_loss_distribution(
                    randomizer, x[index], x_prime[index])
                weights = probabilities / probabilities.sum()
                totals += gen.choice(losses, size=num_samples, p=weights)
            else:
                totals += randomizer.sample_privacy_losses(x[index], x_prime[index],
                                                           num_samples, gen)
        return totals

    def empirical_group_epsilon(self, x: Sequence, x_prime: Sequence, delta: float,
                                num_samples: int = 20_000,
                                rng: RandomState = None) -> GroupLossEstimate:
        """The empirical (1-δ)-quantile of the cumulative privacy loss."""
        check_probability(delta, "delta", allow_zero=False, allow_one=False)
        losses = self.sample_group_losses(x, x_prime, num_samples, rng)
        group_size = sum(1 for a, b in zip(x, x_prime, strict=True) if a != b)
        return GroupLossEstimate(
            group_size=group_size,
            quantile=float(np.quantile(losses, 1.0 - delta)),
            mean=float(losses.mean()),
            maximum=float(losses.max()),
            delta=delta,
            num_samples=num_samples,
        )

    # ----- exact computation (per-coordinate enumeration + convolution sampling) --------

    def exact_loss_moments(self, x: Sequence, x_prime: Sequence) -> Tuple[float, float]:
        """Exact mean and variance of the cumulative privacy loss.

        Requires every differing coordinate's randomizer to have an enumerable
        report space.  Coordinate losses are independent, so moments add.
        """
        mean = 0.0
        variance = 0.0
        for index, (a, b) in enumerate(zip(x, x_prime, strict=True)):
            if a == b:
                continue
            randomizer = self._randomizer_for(index)
            losses, probabilities = exact_privacy_loss_distribution(randomizer, a, b)
            coordinate_mean = float(np.dot(losses, probabilities))
            coordinate_second = float(np.dot(losses**2, probabilities))
            mean += coordinate_mean
            variance += coordinate_second - coordinate_mean**2
        return mean, variance

    # ----- sweeps ---------------------------------------------------------------------------

    def sweep_group_sizes(self, group_sizes: Sequence[int], delta: float,
                          input_pair: Tuple = (0, 1), num_samples: int = 20_000,
                          rng: RandomState = None) -> List[GroupLossEstimate]:
        """Empirical group-ε for several group sizes (the Section 4 experiment).

        For each k, databases x and x' differ in exactly k coordinates, each
        set to ``input_pair[0]`` in x and ``input_pair[1]`` in x'.
        """
        gen = as_generator(rng)
        estimates = []
        for k in group_sizes:
            check_positive_int(k, "group size")
            x = [input_pair[0]] * k
            x_prime = [input_pair[1]] * k
            estimates.append(self.empirical_group_epsilon(x, x_prime, delta,
                                                          num_samples, gen))
        return estimates
