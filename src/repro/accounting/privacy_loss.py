"""The privacy loss random variable (Definition 4.1) and its moments.

The advanced grouposition proof (Theorem 4.2) rests on two facts about the
privacy loss ``L_{A(x),A(x')} = ln(Pr[A(x)=y]/Pr[A(x')=y])`` of an ε-DP local
randomizer:

* ``E[L] <= ε²/2``   (Proposition 3.3 of Bun-Steinke [5]),
* ``|L| <= ε``        (immediate from the DP definition),

after which Hoeffding's inequality concentrates the sum over the k changed
coordinates.  This module provides those bounds and Monte-Carlo estimation of
the loss distribution for concrete randomizers, so tests and benchmarks can
check the bounds against measured losses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.randomizers.base import LocalRandomizer
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_epsilon, check_positive_int


def expected_privacy_loss_bound(epsilon: float) -> float:
    """Upper bound ε²/2 on the expected privacy loss of an ε-DP mechanism.

    (Bun-Steinke, Proposition 3.3 — the "ε² expected loss" fact quoted before
    Theorem 4.2.)
    """
    check_epsilon(epsilon)
    return epsilon**2 / 2.0


def worst_case_privacy_loss_bound(epsilon: float) -> float:
    """The trivial bound |L| <= ε for a pure ε-DP mechanism."""
    check_epsilon(epsilon)
    return epsilon


@dataclass(frozen=True)
class PrivacyLossSummary:
    """Summary statistics of sampled privacy losses between two inputs."""

    mean: float
    std: float
    max_abs: float
    quantile_95: float
    quantile_99: float
    num_samples: int

    def exceeds_pure_bound(self, epsilon: float, tolerance: float = 1e-9) -> bool:
        """Whether any sampled loss exceeded the pure-DP bound ε."""
        return self.max_abs > epsilon + tolerance


def privacy_loss_samples(randomizer: LocalRandomizer, x, x_prime, num_samples: int,
                         rng: RandomState = None) -> np.ndarray:
    """Monte-Carlo samples of the privacy loss of one randomizer between x and x'."""
    check_positive_int(num_samples, "num_samples")
    gen = as_generator(rng)
    return randomizer.sample_privacy_losses(x, x_prime, num_samples, gen)


def summarize_losses(losses: Sequence[float]) -> PrivacyLossSummary:
    """Summarise a sample of privacy losses."""
    arr = np.asarray(losses, dtype=float)
    if arr.size == 0:
        raise ValueError("losses must be non-empty")
    return PrivacyLossSummary(
        mean=float(arr.mean()),
        std=float(arr.std()),
        max_abs=float(np.abs(arr).max()),
        quantile_95=float(np.quantile(arr, 0.95)),
        quantile_99=float(np.quantile(arr, 0.99)),
        num_samples=int(arr.size),
    )


def exact_privacy_loss_distribution(randomizer: LocalRandomizer, x, x_prime):
    """Exact distribution of the privacy loss for enumerable report spaces.

    Returns (losses, probabilities) arrays where losses[i] is the privacy loss
    at report i and probabilities[i] = Pr[A(x) = report i].
    """
    space = randomizer.report_space()
    if space is None:
        raise ValueError("report space is not enumerable")
    losses = []
    probabilities = []
    for report in space:
        p = randomizer.prob(x, report)
        q = randomizer.prob(x_prime, report)
        if p == 0.0:
            continue
        losses.append(math.log(p / q))
        probabilities.append(p)
    return np.asarray(losses), np.asarray(probabilities)


def exact_expected_privacy_loss(randomizer: LocalRandomizer, x, x_prime) -> float:
    """Exact expected privacy loss (KL divergence) between A(x) and A(x')."""
    losses, probabilities = exact_privacy_loss_distribution(randomizer, x, x_prime)
    return float(np.dot(losses, probabilities))
