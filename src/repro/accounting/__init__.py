"""Privacy accounting: composition, group privacy, and max-information.

This subpackage turns the structural results of Section 4 (and the standard
central-model facts they are contrasted with) into evaluable bounds and
empirical estimators:

* :mod:`repro.accounting.composition` — basic and advanced composition, plus
  central-model group privacy (the ``kε`` baseline).
* :mod:`repro.accounting.grouposition` — Theorems 4.2 and 4.3: advanced
  grouposition for pure and approximate LDP, together with a Monte-Carlo
  privacy-loss sampler that measures the actual group privacy loss of a
  product of local randomizers.
* :mod:`repro.accounting.max_information` — Definition 4.4 and Theorem 4.5.
* :mod:`repro.accounting.privacy_loss` — the privacy loss random variable
  (Definition 4.1) and the moment facts used in the grouposition proof.
"""

from repro.accounting.composition import (
    basic_composition,
    advanced_composition,
    central_group_privacy,
)
from repro.accounting.grouposition import (
    advanced_grouposition,
    advanced_grouposition_approximate,
    GroupPrivacyAnalyzer,
)
from repro.accounting.max_information import (
    ldp_max_information,
    central_max_information,
    max_information_from_losses,
)
from repro.accounting.privacy_loss import (
    expected_privacy_loss_bound,
    privacy_loss_samples,
    PrivacyLossSummary,
)

__all__ = [
    "basic_composition",
    "advanced_composition",
    "central_group_privacy",
    "advanced_grouposition",
    "advanced_grouposition_approximate",
    "GroupPrivacyAnalyzer",
    "ldp_max_information",
    "central_max_information",
    "max_information_from_losses",
    "expected_privacy_loss_bound",
    "privacy_loss_samples",
    "PrivacyLossSummary",
]
