"""Max-information bounds for LDP protocols (Definition 4.4, Theorem 4.5).

Theorem 4.5: an ε-LDP protocol on n users has β-approximate max-information at
most ``nε²/2 + ε sqrt(2n ln(1/β))`` — even for *non-product* input
distributions, which is where local privacy genuinely beats the central model
(Dwork et al. [8] only obtain the analogous bound for product distributions,
and Rogers et al. [29] show the restriction is necessary centrally).

Besides the analytic bounds, :func:`max_information_from_losses` implements
the reduction used in the proof of Theorem 4.5: a (1-β)-quantile bound on the
privacy loss implies the same bound on β-approximate max-information.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.utils.validation import check_epsilon, check_positive_int, check_probability


def ldp_max_information(num_users: int, epsilon: float, beta: float) -> float:
    """Theorem 4.5 bound (in nats): ``nε²/2 + ε sqrt(2n ln(1/β))``.

    Holds for every input distribution, product or not.
    """
    check_positive_int(num_users, "num_users")
    check_epsilon(epsilon)
    check_probability(beta, "beta", allow_zero=False, allow_one=False)
    return (num_users * epsilon**2 / 2.0
            + epsilon * math.sqrt(2.0 * num_users * math.log(1.0 / beta)))


def central_max_information(num_users: int, epsilon: float) -> float:
    """Dwork et al. [8] central-model bound (nats): εn, for arbitrary distributions."""
    check_positive_int(num_users, "num_users")
    check_epsilon(epsilon)
    return epsilon * num_users


def central_max_information_product(num_users: int, epsilon: float, beta: float) -> float:
    """Dwork et al. [8] bound for *product* distributions only:
    ``O(nε² + ε sqrt(n log(1/β)))`` (unit constants)."""
    check_positive_int(num_users, "num_users")
    check_epsilon(epsilon)
    check_probability(beta, "beta", allow_zero=False, allow_one=False)
    return num_users * epsilon**2 + epsilon * math.sqrt(num_users * math.log(1.0 / beta))


def max_information_from_losses(losses: Sequence[float], beta: float) -> float:
    """Empirical β-approximate max-information bound from sampled privacy losses.

    The proof of Theorem 4.5 shows that if the privacy loss between the
    realised input and an independent redraw exceeds k with probability at
    most β, then the β-approximate max-information is at most k.  Given
    samples of that loss, the empirical (1-β)-quantile is the corresponding
    estimate.
    """
    check_probability(beta, "beta", allow_zero=False, allow_one=False)
    arr = np.asarray(losses, dtype=float)
    if arr.size == 0:
        raise ValueError("losses must be non-empty")
    return float(np.quantile(arr, 1.0 - beta))


def generalization_error_bound(max_information_nats: float, event_probability: float) -> float:
    """Post-selection guarantee implied by bounded max-information.

    If ``I_∞^β(D; A(D)) <= k`` then any event with probability p under an
    independent redraw of the data has probability at most ``e^k · p + β``
    after selection; this helper returns the ``e^k · p`` part (the caller adds
    its own β), which is how max-information transfers to adaptive-analysis
    generalization (the motivation given in Section 4).
    """
    if max_information_nats < 0:
        raise ValueError("max information must be non-negative")
    check_probability(event_probability, "event_probability")
    return math.exp(max_information_nats) * event_probability


def crossover_beta(num_users: int, epsilon: float) -> float:
    """β at which the LDP bound of Theorem 4.5 equals the central kε bound.

    For β above this value the LDP max-information bound is strictly smaller
    than εn; used by the E6 benchmark to locate the regime where the local
    model provably reveals less about the data.
    """
    check_positive_int(num_users, "num_users")
    check_epsilon(epsilon)
    # Solve nε²/2 + ε sqrt(2n ln(1/β)) = εn  for ln(1/β).
    rhs = num_users * (1.0 - epsilon / 2.0)
    if rhs <= 0:
        return 1.0
    ln_inv_beta = rhs**2 / (2.0 * num_users)
    return math.exp(-ln_inv_beta)
