"""Standard composition and central-model group privacy.

These are the (well-known) facts of Section 2 and the background of Section 4
that the paper's new local-model results are contrasted with:

* basic composition: k mechanisms, each (ε, δ)-DP, compose to (kε, kδ)-DP;
* advanced composition [11]: they also compose to
  ``(kε²/2 + ε sqrt(2k ln(1/δ')), kδ + δ')``-DP for every δ' > 0
  (stated here in the ε ≤ 1 "moments" form the paper uses);
* central-model group privacy: an ε-DP algorithm is exactly kε-DP for groups
  of size k (and (kε, k e^{(k-1)ε} δ)-DP in the approximate case).

Keeping these next to the local-model grouposition bounds makes the Section 4
comparison a one-liner in benchmarks and tests.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.utils.validation import check_delta, check_epsilon, check_positive_int


def basic_composition(k: int, epsilon: float, delta: float = 0.0) -> Tuple[float, float]:
    """Basic composition: k-fold composition of (ε, δ)-DP is (kε, kδ)-DP."""
    check_positive_int(k, "k")
    check_epsilon(epsilon)
    check_delta(delta)
    return k * epsilon, k * delta


def advanced_composition(k: int, epsilon: float, delta: float,
                         delta_prime: float) -> Tuple[float, float]:
    """Advanced composition [11]: returns (ε', kδ + δ') with
    ``ε' = kε²/2 + ε sqrt(2k ln(1/δ'))``.

    This is the form the paper quotes (the expected-loss term kε²/2 plus a
    sub-Gaussian deviation term); it is the exact analogue of the advanced
    grouposition bound of Theorem 4.2.
    """
    check_positive_int(k, "k")
    check_epsilon(epsilon)
    check_delta(delta)
    if not 0 < delta_prime < 1:
        raise ValueError("delta_prime must lie in (0, 1)")
    epsilon_prime = k * epsilon**2 / 2.0 + epsilon * math.sqrt(2.0 * k * math.log(1.0 / delta_prime))
    return epsilon_prime, k * delta + delta_prime


def central_group_privacy(k: int, epsilon: float, delta: float = 0.0
                          ) -> Tuple[float, float]:
    """Central-model group privacy: (kε, k e^{(k-1)ε} δ) for groups of size k.

    The linear-in-k ε is what advanced grouposition (Theorem 4.2) improves to
    ≈ sqrt(k)·ε in the local model.
    """
    check_positive_int(k, "k")
    check_epsilon(epsilon)
    check_delta(delta)
    if delta == 0.0:
        return k * epsilon, 0.0
    return k * epsilon, k * math.exp((k - 1) * epsilon) * delta


def composition_crossover(epsilon: float, delta_prime: float) -> int:
    """Smallest k at which advanced composition beats basic composition.

    Useful for sanity checks and for the Section 4/5 benchmark narratives: for
    small k the deviation term dominates and basic composition is tighter;
    beyond the crossover the sqrt(k) behaviour wins.
    """
    check_epsilon(epsilon)
    if not 0 < delta_prime < 1:
        raise ValueError("delta_prime must lie in (0, 1)")
    k = 1
    while k < 10_000_000:
        adv, _ = advanced_composition(k, epsilon, 0.0, delta_prime)
        if adv < k * epsilon:
            return k
        k += 1
    raise RuntimeError("no crossover found below 10^7 (epsilon too large?)")
