"""Versioned, epoch-stamped shard maps for elastic cluster membership.

A fixed-size cluster routes with one :class:`~repro.engine.partition.
ShardPartition` for its whole life.  Elastic membership replaces that
single table with a **shard map**: an immutable, versioned value the
router consults *per frame*, made of

* a status per shard id (``active`` / ``joining`` / ``draining``) — ids
  are never reused, so journals and snapshot directories stay unambiguous
  across grow/drain cycles; and
* an ordered list of **routing entries**, each an epoch cut plus the
  partition that owns every frame from that cut on.  A frame tagged with
  epoch ``e`` is routed by the entry with the largest ``cut_epoch <= e``
  (the first entry's cut is ``None`` = "since forever").

This encoding is what makes membership changes *exact* rather than
approximate: because every aggregator's merge is a commutative integer
sum, placement is advisory — correctness needs only that no report is
lost or double-counted.  So a **grow** appends one entry cutting at the
first unseen epoch (the new shard takes only new-epoch traffic; nothing
moves), and a **drain** rewrites the drained id out of every entry in one
step (new frames for its keyspace go to the merge target, and its already
absorbed state is handed off wholesale).  Either way the final merged sum
is bit-identical to a single offline aggregator — the property pinned per
protocol by ``tests/test_properties.py``.

Maps persist through the checksummed snapshot container
(:mod:`repro.server.snapshot`), so the on-disk ``shardmap.json`` next to
the journals is atomic, fsynced, and refuses to load corrupted: it is the
**commit point** of every membership transition.  A crash before the map
write rolls the transition back; a crash after it rolls forward (see
``ClusterRouter.recover_membership``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.partition import ShardPartition
from repro.server.snapshot import read_snapshot, write_snapshot

__all__ = ["RoutingEntry", "ShardMap", "ShardMapError", "ShardMapStore",
           "SHARD_STATUSES"]

#: legal shard states: ``joining`` shards are spawned but own no epochs
#: yet; ``draining`` shards own no *new* epochs and are awaiting handoff
SHARD_STATUSES = ("active", "joining", "draining")

_FORMAT = "repro-shardmap"
_VERSION = 1


class ShardMapError(ValueError):
    """An inconsistent shard map: bad transition, unknown shard id, or an
    on-disk map that fails structural validation."""


@dataclass(frozen=True)
class RoutingEntry:
    """One epoch range's owner table: every frame with epoch >=
    ``cut_epoch`` (until the next entry's cut) hashes through
    ``partition`` into ``shard_ids``."""

    cut_epoch: Optional[int]
    shard_ids: Tuple[int, ...]
    partition: ShardPartition

    def __post_init__(self) -> None:
        if not self.shard_ids:
            raise ShardMapError("routing entry must own at least one shard")
        if self.partition.num_shards != len(self.shard_ids):
            raise ShardMapError(
                f"routing entry partition spans {self.partition.num_shards} "
                f"slots but names {len(self.shard_ids)} shard ids")

    def shard_of(self, route_key: int) -> int:
        return self.shard_ids[self.partition.shard_of(route_key)]

    def to_dict(self) -> Dict[str, object]:
        return {"cut_epoch": self.cut_epoch,
                "shard_ids": list(self.shard_ids),
                "partition": self.partition.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RoutingEntry":
        cut = data["cut_epoch"]
        return cls(cut_epoch=None if cut is None else int(cut),
                   shard_ids=tuple(int(i) for i in data["shard_ids"]),
                   partition=ShardPartition.from_dict(data["partition"]))


@dataclass(frozen=True)
class ShardMap:
    """An immutable membership snapshot; transitions return new versions."""

    version: int
    statuses: Tuple[Tuple[int, str], ...]  # (shard_id, status), ascending
    entries: Tuple[RoutingEntry, ...]      # ascending cut; entries[0] is None
    retired: Tuple[int, ...] = ()          # drained-and-forgotten ids

    def __post_init__(self) -> None:
        ids = [shard_id for shard_id, _ in self.statuses]
        if ids != sorted(set(ids)):
            raise ShardMapError(f"duplicate or unsorted shard ids {ids}")
        if list(self.retired) != sorted(set(self.retired)) \
                or set(self.retired) & set(ids):
            raise ShardMapError(f"retired ids {list(self.retired)} must be "
                                f"unique and disjoint from live ids {ids}")
        for shard_id, status in self.statuses:
            if status not in SHARD_STATUSES:
                raise ShardMapError(f"shard {shard_id} has unknown status "
                                    f"{status!r}")
        if not self.entries or self.entries[0].cut_epoch is not None:
            raise ShardMapError("the first routing entry must cover all "
                                "epochs (cut_epoch None)")
        cuts = [entry.cut_epoch for entry in self.entries[1:]]
        if any(cut is None for cut in cuts) or cuts != sorted(set(cuts)):
            raise ShardMapError(f"routing cuts must be unique and ascending, "
                                f"got {cuts}")
        routable = {shard_id for shard_id, status in self.statuses
                    if status == "active"}
        for entry in self.entries:
            stray = set(entry.shard_ids) - routable
            if stray:
                raise ShardMapError(f"routing entry at cut "
                                    f"{entry.cut_epoch} references "
                                    f"non-active shards {sorted(stray)}")

    # ----- queries --------------------------------------------------------------------

    def status_of(self, shard_id: int) -> str:
        for sid, status in self.statuses:
            if sid == shard_id:
                return status
        raise ShardMapError(f"unknown shard id {shard_id}")

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        """Every shard the map knows about (any status), ascending."""
        return tuple(sid for sid, _ in self.statuses)

    @property
    def active_ids(self) -> Tuple[int, ...]:
        return tuple(sid for sid, status in self.statuses
                     if status == "active")

    @property
    def live_ids(self) -> Tuple[int, ...]:
        """Shards that (may) hold state: active or draining, ascending."""
        return tuple(sid for sid, status in self.statuses
                     if status in ("active", "draining"))

    @property
    def next_id(self) -> int:
        """The id a newly added shard takes (ids are never reused — the
        retired tombstones keep drained ids allocated forever)."""
        known = self.shard_ids + self.retired
        return max(known) + 1 if known else 0

    def entry_for(self, epoch: int) -> RoutingEntry:
        """The routing entry owning ``epoch`` (largest cut <= epoch)."""
        owner = self.entries[0]
        for entry in self.entries[1:]:
            if entry.cut_epoch <= epoch:
                owner = entry
            else:
                break
        return owner

    def shard_for(self, route_key: int, epoch: int) -> int:
        """The shard id owning ``route_key`` at ``epoch``."""
        return self.entry_for(epoch).shard_of(route_key)

    @property
    def newest_partition(self) -> ShardPartition:
        """Partition of the newest entry (the steady-state table)."""
        return self.entries[-1].partition

    def is_routable(self, shard_id: int) -> bool:
        """True while any entry can still direct frames at ``shard_id``."""
        return any(shard_id in entry.shard_ids for entry in self.entries)

    # ----- transitions ----------------------------------------------------------------

    @classmethod
    def initial(cls, num_shards: int, partition: ShardPartition) -> "ShardMap":
        """Version-1 map of a fresh fixed-size cluster."""
        ids = tuple(range(num_shards))
        return cls(version=1,
                   statuses=tuple((sid, "active") for sid in ids),
                   entries=(RoutingEntry(None, ids, partition),))

    def _with(self, statuses, entries, retired=None) -> "ShardMap":
        return ShardMap(version=self.version + 1,
                        statuses=tuple(statuses), entries=tuple(entries),
                        retired=(self.retired if retired is None
                                 else tuple(retired)))

    def with_joining(self, shard_id: int) -> "ShardMap":
        """A spawned-but-unrouted shard (the grow transition's first half)."""
        if any(sid == shard_id for sid, _ in self.statuses):
            raise ShardMapError(f"shard {shard_id} already in the map")
        statuses = sorted(self.statuses + ((shard_id, "joining"),))
        return self._with(statuses, self.entries)

    def with_activated(self, shard_id: int, cut_epoch: int,
                       partition: ShardPartition) -> "ShardMap":
        """Commit a grow: from ``cut_epoch`` on, ``partition`` spreads
        traffic over the active shards *plus* the activated one."""
        if self.status_of(shard_id) != "joining":
            raise ShardMapError(f"shard {shard_id} is "
                                f"{self.status_of(shard_id)}, not joining")
        last_cut = self.entries[-1].cut_epoch
        if last_cut is not None and cut_epoch <= last_cut:
            raise ShardMapError(f"activation cut {cut_epoch} must exceed the "
                                f"newest cut {last_cut}")
        statuses = tuple((sid, "active" if sid == shard_id else status)
                         for sid, status in self.statuses)
        ids = tuple(sid for sid, status in statuses if status == "active")
        entry = RoutingEntry(int(cut_epoch), ids, partition)
        return self._with(statuses, self.entries + (entry,))

    def with_drained_routing(self, shard_id: int,
                             target_id: int) -> "ShardMap":
        """Start a drain: mark ``shard_id`` draining and rewrite every
        entry to send its slots to ``target_id``.  No new frame can reach
        the draining shard from this version on; its absorbed state is
        handed off to ``target_id`` out of band."""
        if self.status_of(shard_id) != "active":
            raise ShardMapError(f"shard {shard_id} is "
                                f"{self.status_of(shard_id)}, not active")
        if self.status_of(target_id) != "active" or target_id == shard_id:
            raise ShardMapError(f"drain target {target_id} must be a "
                                f"different active shard")
        if len(self.active_ids) < 2:
            raise ShardMapError("cannot drain the last active shard")
        statuses = tuple((sid, "draining" if sid == shard_id else status)
                         for sid, status in self.statuses)
        entries = tuple(
            RoutingEntry(entry.cut_epoch,
                         tuple(target_id if sid == shard_id else sid
                               for sid in entry.shard_ids),
                         entry.partition)
            for entry in self.entries)
        return self._with(statuses, entries)

    def with_removed(self, shard_id: int) -> "ShardMap":
        """Finish a drain: forget the shard entirely (its state is merged)."""
        if self.status_of(shard_id) not in ("draining", "joining"):
            raise ShardMapError(f"shard {shard_id} is "
                                f"{self.status_of(shard_id)}; only draining "
                                f"or joining shards can be removed")
        if self.is_routable(shard_id):
            raise ShardMapError(f"shard {shard_id} is still routable")
        statuses = tuple((sid, status) for sid, status in self.statuses
                         if sid != shard_id)
        if not statuses:
            raise ShardMapError("cannot remove the last shard")
        return self._with(statuses, self.entries,
                          retired=sorted(self.retired + (shard_id,)))

    # ----- serialization --------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": _FORMAT,
            "format_version": _VERSION,
            "version": self.version,
            "shards": [{"id": sid, "status": status}
                       for sid, status in self.statuses],
            "retired": list(self.retired),
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardMap":
        if data.get("format") != _FORMAT:
            raise ShardMapError(f"not a shard map: format "
                                f"{data.get('format')!r}")
        if int(data.get("format_version", 0)) != _VERSION:
            raise ShardMapError(f"unsupported shard-map format version "
                                f"{data.get('format_version')!r}")
        return cls(
            version=int(data["version"]),
            statuses=tuple((int(s["id"]), str(s["status"]))
                           for s in data["shards"]),
            entries=tuple(RoutingEntry.from_dict(e)
                          for e in data["entries"]),
            retired=tuple(int(i) for i in data.get("retired", [])),
        )


class ShardMapStore:
    """Atomic, checksummed persistence of the current map (the commit
    point of every membership transition — see module docstring)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def save(self, shard_map: ShardMap) -> None:
        write_snapshot(self.path, shard_map.to_dict(), format="json")

    def load(self) -> Optional[ShardMap]:
        """The persisted map, or ``None`` when no map was ever committed.

        A corrupt file raises :class:`~repro.server.snapshot.
        SnapshotCorruptError` — membership state is never guessed.
        """
        if not self.path.exists():
            return None
        return ShardMap.from_dict(read_snapshot(self.path))
