"""Sharded cluster serving: a router tier over N shard aggregation servers.

This package is the first step from "a server" to "a fleet".  It scales the
streaming aggregation service of :mod:`repro.server` horizontally by
exploiting the property the wire API was designed around — every
aggregator's state is exact integers and ``merge`` is a commutative,
associative sum — so splitting the report stream across K independent shard
servers loses nothing: merging the K shard states reproduces single-server
aggregation **bit for bit**.

* :class:`~repro.cluster.supervisor.ClusterSupervisor` — spawns and
  monitors the N shard subprocesses (each a full ``repro.cli serve``
  service with its own snapshot directory) and restarts a dead shard from
  its newest snapshot.
* :class:`~repro.cluster.router.ClusterRouter` — the single endpoint
  clients talk to: hash-partitions ``reports`` frames across the shards
  with the published pairwise-independent
  :class:`~repro.engine.partition.ShardPartition` (forwarding payload bytes
  verbatim — no column decode), answers ``query`` by pulling every shard's
  packed state and merging exactly, and journals forwarded frames so a
  killed shard converges bit-identically after snapshot-restore replay.

Quick start (or ``python -m repro.cli serve-cluster --shards 3`` /
``load-test --cluster 3``)::

    import asyncio
    from repro.cluster import ClusterRouter, ClusterSupervisor
    from repro.protocol import HashtogramParams

    params = HashtogramParams.create(1 << 16, 1.0, num_buckets=64, rng=0)

    async def main():
        with ClusterSupervisor(params, 3, "cluster-home") as supervisor:
            supervisor.start()
            router = ClusterRouter(params, supervisor=supervisor, rng=0)
            host, port = await router.start()
            # ... AggregationClient(host, port) works unchanged ...
            await router.serve_until_stopped()

The cluster guarantee, asserted end-to-end by ``load-test --cluster``: the
served estimates equal the offline :func:`repro.engine.run_simulation`
estimates bit for bit, for any shard count, any frame interleaving, and
through a shard crash mid-ingest.
"""

from repro.cluster.router import (
    ROUTER_ID,
    ClusterError,
    ClusterRouter,
    RouterStats,
)
from repro.cluster.supervisor import (
    ClusterSupervisor,
    ShardHandle,
    spawn_server_process,
)

__all__ = [
    "ROUTER_ID",
    "ClusterError",
    "ClusterRouter",
    "ClusterSupervisor",
    "RouterStats",
    "ShardHandle",
    "spawn_server_process",
]
