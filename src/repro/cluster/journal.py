"""Crash-safe CRC32-framed record logs for the cluster tier.

Two journals keep the router's elastic-membership machinery recoverable
(``docs/wire-protocol.md`` §6.3):

* **Frame journals** (:class:`FrameJournal`) — one per shard link — mirror
  every forwarded ``reports`` frame to disk between snapshot barriers, so
  a *router* restart can replay exactly what an in-process recovery would
  have replayed from memory.
* The **membership journal** (:class:`MembershipJournal`) records every
  step of an add/drain/rolling-restart transition as a JSON entry, so a
  SIGKILL at any point leaves enough on disk to resume or roll back to a
  consistent shard map.

Both share one record framing (all fields little-endian)::

    record := length (u32) | crc32 (u32) | payload

where ``crc32`` is the CRC-32 of ``payload`` (:func:`zlib.crc32`) and
``length`` its size in bytes.  Replay scans records in order and stops at
the first record whose header is incomplete, whose payload is short, or
whose checksum fails — the classic write-ahead-log rule: **a torn tail is
truncated, never parsed**.  Truncation is safe here because every journal
consumer is idempotent one level up (frame replay dedups on §7.1 delivery
sequence numbers and clients resend from the absorbed count; membership
recovery treats the persisted shard map as the commit point), so dropping
a half-written suffix converges to the same exact state.  Corruption
*behind* the valid prefix is indistinguishable from a torn tail mid-scan
and is handled the same way: everything from the first bad record on is
discarded (pinned corpus cases under ``tests/data/journal_corpus/``).

Frame-journal entries wrap the forwarded frame payload in a fixed prefix::

    entry := num_reports (u32) | seq (u64) | frame payload

so replay can restore the router's per-link report accounting and its
delivery-sequence watermark without re-parsing frame bytes.  A snapshot
barrier truncates the journal and writes one empty *barrier* entry
(``num_reports=0``, the watermark ``seq``, no frame payload) so the next
router to open the file resumes stamping above every sequence number the
shard has already seen.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.server.snapshot import fsync_directory

__all__ = ["FrameJournal", "JournalError", "MembershipJournal", "RecordLog",
           "scan_records"]

#: record framing: payload length (u32) | payload crc32 (u32), little-endian
_RECORD_HEADER = struct.Struct("<II")
#: frame-journal entry prefix: num_reports (u32) | seq (u64), little-endian
_ENTRY_FIXED = struct.Struct("<IQ")

#: refuse absurd announced lengths outright — a scribbled header must not
#: make replay try to allocate gigabytes before the checksum check
_MAX_RECORD_BYTES = 1 << 30


class JournalError(ValueError):
    """A journal entry that decoded but is semantically invalid (bad entry
    prefix, non-object membership entry).  Torn or checksum-failing tails
    are *not* errors — they are truncated silently by design."""


def scan_records(raw: bytes) -> Tuple[List[bytes], int]:
    """Parse CRC-framed records out of ``raw``.

    Returns ``(payloads, valid_length)`` where ``valid_length`` is the byte
    offset of the end of the last intact record.  Scanning stops — without
    raising — at the first torn header, short payload, or CRC mismatch.
    """
    payloads: List[bytes] = []
    offset = 0
    while offset + _RECORD_HEADER.size <= len(raw):
        length, crc = _RECORD_HEADER.unpack_from(raw, offset)
        start = offset + _RECORD_HEADER.size
        if length > _MAX_RECORD_BYTES or start + length > len(raw):
            break
        payload = raw[start:start + length]
        if zlib.crc32(payload) != crc:
            break
        payloads.append(payload)
        offset = start + length
    return payloads, offset


class RecordLog:
    """An append-only file of CRC32-framed records with torn-tail recovery.

    ``load`` truncates the file to its valid prefix when it finds a torn
    or corrupt tail, so one crashed append (or a scribbled sector) costs
    the suffix of the log, never the log itself.  Appends are flushed and
    optionally fsynced; creating the file also fsyncs the directory entry
    so the journal name itself survives power loss.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle = None

    def _open(self):
        if self._handle is None:
            existed = self.path.exists()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
            if not existed:
                fsync_directory(self.path.parent)
        return self._handle

    def append(self, payload: bytes) -> None:
        """Append one framed record (flush + fsync per the configuration)."""
        handle = self._open()
        handle.write(_RECORD_HEADER.pack(len(payload), zlib.crc32(payload)))
        handle.write(payload)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def load(self) -> List[bytes]:
        """Replay every intact record; truncate a torn/corrupt tail in place."""
        self.close()
        if not self.path.exists():
            return []
        raw = self.path.read_bytes()
        payloads, valid = scan_records(raw)
        if valid < len(raw):
            with open(self.path, "r+b") as handle:
                handle.truncate(valid)
                handle.flush()
                os.fsync(handle.fileno())
        return payloads

    def clear(self) -> None:
        """Drop every record (a checkpoint barrier passed)."""
        handle = self._open()
        handle.truncate(0)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def delete(self) -> None:
        """Close and remove the journal file (the owner was reaped)."""
        self.close()
        self.path.unlink(missing_ok=True)


class FrameJournal:
    """Durable mirror of one shard link's in-memory replay journal."""

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self._log = RecordLog(path, fsync=fsync)

    @property
    def path(self) -> Path:
        return self._log.path

    def append(self, frame: bytes, num_reports: int, seq: int) -> None:
        self._log.append(_ENTRY_FIXED.pack(int(num_reports), int(seq))
                         + frame)

    def load(self) -> Tuple[List[Tuple[bytes, int]], int]:
        """Replay the journal: ``([(frame, num_reports), ...], max_seq)``.

        Barrier entries (empty frame payload) contribute only their
        sequence watermark.  ``max_seq`` is 0 for an empty journal.
        """
        entries: List[Tuple[bytes, int]] = []
        max_seq = 0
        for payload in self._log.load():
            if len(payload) < _ENTRY_FIXED.size:
                raise JournalError(f"{self.path}: frame-journal entry of "
                                   f"{len(payload)} bytes is shorter than "
                                   f"its fixed prefix")
            num_reports, seq = _ENTRY_FIXED.unpack_from(payload, 0)
            max_seq = max(max_seq, int(seq))
            frame = payload[_ENTRY_FIXED.size:]
            if frame:
                entries.append((frame, int(num_reports)))
        return entries, max_seq

    def barrier(self, seq: int) -> None:
        """Checkpoint: drop replayed frames, keep the sequence watermark."""
        self._log.clear()
        self._log.append(_ENTRY_FIXED.pack(0, int(seq)))

    def close(self) -> None:
        self._log.close()

    def delete(self) -> None:
        self._log.delete()


class MembershipJournal:
    """Append-only JSON log of membership state-machine transitions."""

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self._log = RecordLog(path, fsync=fsync)

    @property
    def path(self) -> Path:
        return self._log.path

    def append(self, entry: Dict[str, object]) -> None:
        payload = json.dumps(entry, separators=(",", ":"), sort_keys=True)
        self._log.append(payload.encode("utf-8"))

    def entries(self) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for payload in self._log.load():
            try:
                entry = json.loads(payload)
            except ValueError as exc:  # JSONDecodeError or UnicodeDecodeError
                raise JournalError(f"{self.path}: invalid membership entry: "
                                   f"{exc}") from exc
            if not isinstance(entry, dict):
                raise JournalError(f"{self.path}: membership entry must be "
                                   f"an object, got {type(entry).__name__}")
            out.append(entry)
        return out

    def last(self, op: Optional[str] = None) -> Optional[Dict[str, object]]:
        """Newest entry (optionally of one ``op``), or ``None``."""
        entries = self.entries()
        if op is not None:
            entries = [e for e in entries if e.get("op") == op]
        return entries[-1] if entries else None

    def close(self) -> None:
        self._log.close()
