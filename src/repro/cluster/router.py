"""The cluster router: one endpoint fronting N shard aggregation servers.

:class:`ClusterRouter` speaks the exact frame protocol of
:mod:`repro.server` on its client side — ``hello`` / ``reports`` / ``sync``
/ ``query`` / ``stats`` / ``snapshot`` / ``shutdown`` — so every existing
client (:class:`~repro.server.client.AggregationClient`, the load
generator, the benchmarks) works against a cluster unchanged.  Behind that
endpoint:

* **Routing** — each ``reports`` frame is assigned to a shard by the
  published pairwise-independent
  :class:`~repro.engine.partition.ShardPartition` applied to the frame's
  shard-routing header (``docs/wire-protocol.md`` §8.1); frames without a
  routing key fall back to round-robin.  Either way the frame's *payload
  bytes are forwarded verbatim* (:func:`~repro.server.framing.frame_bytes`)
  — the router peeks a few header bytes and never decodes a column, so the
  zero-copy ingest pipeline of the binary wire format extends end-to-end
  through the cluster tier.
* **Exact merged queries** — ``query`` pulls every shard's packed
  exact-integer aggregator state (the ``state`` frame), merges the K states
  with the commutative integer-sum merge, and finalizes once.  A K-shard
  cluster therefore answers **bit-identically** to one server that ingested
  everything — and to the offline engine
  (:func:`repro.engine.run_simulation`) under the same seed, which
  ``python -m repro.cli load-test --cluster K`` asserts.  Windowed queries
  stay exact across shards: the router resolves the global newest epoch
  first and passes every shard the same absolute ``min_epoch`` cutoff.
* **Failure handling** — every frame forwarded to a shard is stamped with
  a per-link delivery sequence number (``docs/wire-protocol.md`` §7.1) and
  kept in that shard's *journal* until the shard acknowledges a snapshot
  barrier (auto-checkpoint after ``checkpoint_reports`` journaled reports,
  or an explicit client ``snapshot``).  When a fan-out or forward fails,
  recovery runs a bounded escalation ladder under seeded exponential
  backoff: reconnect and replay the journal first, then — when a
  :class:`~repro.cluster.supervisor.ClusterSupervisor` is attached —
  restart the shard from its newest snapshot and replay.  Replays are
  idempotent: the shard dedupes already-absorbed frames on the sequence
  number, so a replay onto a *live* shard (connection reset, truncated
  frame) absorbs only the lost suffix, while a replay onto a *restarted*
  shard (fresh watermark) re-absorbs everything since the snapshot — both
  converge to exactly the state the shard would have had without the
  fault, so cluster answers remain bit-identical through kills, resets,
  and stalls.  When the ladder is exhausted the failure surfaces as a
  typed :class:`~repro.server.client.ShardUnavailable` within a bounded
  deadline — never a hang, never a silently partial result.

Connections to shards are pooled: one persistent, ordered connection per
shard, reused for every forward and fan-out rather than dialed per
request.  Ordering is load-bearing — a shard connection that delivers
journal frames *before* the snapshot barrier frame is what makes "journal
cleared at the barrier" an exact statement — so the pool holds exactly one
connection per shard, serialized by a per-shard lock.
"""

from __future__ import annotations

import asyncio
import base64
import json
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Awaitable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cluster.supervisor import ClusterSupervisor

from repro.engine.partition import ShardPartition
from repro.protocol.binary import (
    BinaryFormatError,
    is_binary_payload,
    pack_state,
    peek_reports_header,
    stamp_sequence,
    unpack_state,
)
from repro.protocol.wire import (
    PublicParams,
    ServerAggregator,
    child_state,
    load_child_state,
    merge_aggregators,
)
from repro.server.client import ShardUnavailable
from repro.server.framing import (
    WIRE_FORMATS,
    FrameError,
    frame_bytes,
    read_frame,
    read_frame_payload,
    write_frame,
)
from repro.transport import dial as transport_dial
from repro.utils.rng import RandomState, as_generator

__all__ = ["ClusterError", "ClusterRouter", "RouterStats", "ROUTER_ID"]

#: protocol identification string sent in every router ``params`` reply
ROUTER_ID = "repro-cluster-router/1"

#: transport-level failures that trigger shard recovery on fan-out.
#: ``asyncio.TimeoutError`` is listed explicitly: on Python 3.10 it is not
#: the builtin ``TimeoutError`` (an ``OSError`` subclass), and every shard
#: exchange runs under an ``asyncio.wait_for`` deadline.
_SHARD_FAILURES = (
    OSError,
    FrameError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
)


class ClusterError(RuntimeError):
    """A shard is unreachable and cannot be revived."""


@dataclass
class RouterStats:
    """Router-side counters, served inside the ``stats`` reply."""

    connections_total: int = 0
    frames_forwarded: int = 0
    reports_forwarded: int = 0
    frames_unrouted: int = 0
    frames_rejected: int = 0
    queries_answered: int = 0
    shard_restarts: int = 0
    journal_replayed_frames: int = 0
    journal_replayed_reports: int = 0
    checkpoints: int = 0
    last_rejection: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "connections_total": self.connections_total,
            "frames_forwarded": self.frames_forwarded,
            "reports_forwarded": self.reports_forwarded,
            "frames_unrouted": self.frames_unrouted,
            "frames_rejected": self.frames_rejected,
            "queries_answered": self.queries_answered,
            "shard_restarts": self.shard_restarts,
            "journal_replayed_frames": self.journal_replayed_frames,
            "journal_replayed_reports": self.journal_replayed_reports,
            "checkpoints": self.checkpoints,
            "last_rejection": self.last_rejection,
        }


class _ShardLink:
    """One pooled, ordered connection to a shard, plus its frame journal."""

    def __init__(self, index: int, host: str, port: int,
                 shm_name: Optional[str] = None) -> None:
        self.index = index
        self.host = host
        self.port = int(port)
        #: when set, :meth:`connect` dials ``shm://{shm_name}`` (the
        #: shard's same-host shared-memory ring) instead of TCP loopback;
        #: refreshed after a supervisor restart, because a revived shard
        #: binds a fresh ring generation
        self.shm_name = shm_name
        #: duck-typed transport streams (asyncio TCP, or the shm ring
        #: shims) — the frame layer consumes the same surface either way
        self.reader: Optional[Any] = None
        self.writer: Optional[Any] = None
        self.lock = asyncio.Lock()
        #: raw frame payloads (and their report counts) forwarded since the
        #: shard's last acknowledged snapshot barrier; payloads are stored
        #: *after* sequence stamping so a replay redelivers identical bytes
        self.journal: List[Tuple[bytes, int]] = []
        self.journal_reports = 0
        self.reports_forwarded = 0
        #: delivery sequence number of the last ``reports`` frame stamped
        #: for this shard (``docs/wire-protocol.md`` §7.1); the router is
        #: the single sequencing writer, so strictly increasing per link
        self.seq = 0
        #: ``repr`` of the most recent transport failure on this link
        self.last_fault: Optional[str] = None

    async def connect(self) -> None:
        await self.close()
        address = (f"shm://{self.shm_name}" if self.shm_name is not None
                   else f"tcp://{self.host}:{self.port}")
        conn = await transport_dial(address)
        self.reader, self.writer = conn.reader, conn.writer

    async def close(self) -> None:
        # detach before the first await: a connect() racing this close()
        # must never have its fresh streams nulled by a stale close
        writer, self.reader, self.writer = self.writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.IncompleteReadError):
                pass


class ClusterRouter:
    """Route ``reports`` frames across shards; answer queries by exact merge.

    Parameters
    ----------
    params:
        Public parameters every shard serves (published to clients in the
        ``hello`` reply, exactly like a single server).
    endpoints:
        ``(host, port)`` of each shard server.  Defaults to the
        supervisor's endpoints.
    supervisor:
        A started :class:`~repro.cluster.supervisor.ClusterSupervisor`.
        Optional — without one the router still routes and queries, but a
        dead shard is an error instead of a restart.
    partition:
        The published routing partition; sampled from ``rng`` when omitted.
    rng:
        Seed/generator for sampling the default partition.
    wire_formats:
        ``reports`` formats accepted from clients (advertised in ``hello``).
    checkpoint_reports:
        Auto-checkpoint threshold: once a shard's journal holds at least
        this many reports, the router requests a shard snapshot and clears
        the journal.  Bounds both journal memory and replay time.
    window:
        Retention the shards were started with (published in ``hello``).
    transport:
        ``"tcp"`` (default) dials every shard over TCP loopback;
        ``"shm"`` dials each local shard's same-host shared-memory ring
        (:mod:`repro.transport`) instead — no syscall per forwarded frame.
        Requires a supervisor started with ``transport="shm"``; it owns
        the per-shard ring names and their restart generations.
    connect_timeout:
        Deadline (seconds) for dialing a shard connection.
    request_timeout:
        Deadline (seconds) for one request/reply exchange (or one forward
        drain) on a shard connection.  A shard that accepts bytes but never
        answers — a stalled read — surfaces as a timeout and enters
        recovery instead of hanging the fan-out.
    recovery_attempts:
        Size of the recovery ladder: attempt 0 reconnects and replays the
        journal; later attempts escalate to a supervisor restart (when one
        is attached).  Exhausting the ladder raises
        :class:`~repro.server.client.ShardUnavailable`.
    backoff_base / backoff_cap:
        Exponential backoff between recovery attempts:
        ``min(cap, base * 2**(attempt-1))`` plus seeded jitter drawn from
        ``rng`` — deterministic under a fixed seed, like everything else.
    """

    def __init__(
        self,
        params: PublicParams,
        endpoints: Optional[Sequence[Tuple[str, int]]] = None,
        *,
        supervisor: Optional["ClusterSupervisor"] = None,
        partition: Optional[ShardPartition] = None,
        rng: RandomState = None,
        wire_formats: Sequence[str] = WIRE_FORMATS,
        checkpoint_reports: int = 1 << 16,
        window: Optional[int] = None,
        transport: str = "tcp",
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        recovery_attempts: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        if endpoints is None:
            if supervisor is None:
                raise ValueError("need shard endpoints or a supervisor")
            endpoints = supervisor.endpoints()
        if not endpoints:
            raise ValueError("need at least one shard endpoint")
        if transport not in ("tcp", "shm"):
            raise ValueError(f"transport must be 'tcp' or 'shm', "
                             f"got {transport!r}")
        if transport == "shm" and (
            supervisor is None or supervisor.transport != "shm"
        ):
            raise ValueError(
                "transport='shm' needs a supervisor started with "
                "transport='shm' (it owns the shards' ring names)"
            )
        self.wire_formats = tuple(wire_formats)
        if not self.wire_formats or any(
            fmt not in WIRE_FORMATS for fmt in self.wire_formats
        ):
            raise ValueError(
                f"wire_formats must be a non-empty subset of {WIRE_FORMATS}, "
                f"got {wire_formats!r}"
            )
        if checkpoint_reports < 1:
            raise ValueError("checkpoint_reports must be >= 1")
        if connect_timeout <= 0 or request_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if recovery_attempts < 1:
            raise ValueError("recovery_attempts must be >= 1")
        self.params = params
        self.supervisor = supervisor
        self.partition = (
            partition
            if partition is not None
            else ShardPartition.sample(len(endpoints), rng)
        )
        if self.partition.num_shards != len(endpoints):
            raise ValueError(
                f"partition routes over {self.partition.num_shards} shards "
                f"but {len(endpoints)} endpoints were given"
            )
        self.window = window
        self.checkpoint_reports = int(checkpoint_reports)
        self.connect_timeout = float(connect_timeout)
        self.request_timeout = float(request_timeout)
        self.recovery_attempts = int(recovery_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        #: jitter source for recovery backoff; seeded from the same ``rng``
        #: that sampled the partition, so a chaos run replays exactly
        self._backoff_rng = as_generator(rng)
        self.transport = transport
        self.stats = RouterStats()
        self.links = [
            _ShardLink(
                i, host, port,
                shm_name=(supervisor.shm_name(i) if transport == "shm"
                          and supervisor is not None else None),
            )
            for i, (host, port) in enumerate(endpoints)
        ]
        self._round_robin = 0
        self._server: Optional[asyncio.base_events.Server] = None
        #: claimed synchronously at the top of start(), before its first
        #: await, so concurrent start() calls cannot both pass the guard
        self._started = False
        self._connections: set = set()
        self._stopping = asyncio.Event()

    @property
    def num_shards(self) -> int:
        return len(self.links)

    # ----- lifecycle ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Connect to every shard, verify parameters, bind, and serve."""
        if self._started:
            raise RuntimeError("router already started")
        self._started = True
        for link in self.links:
            await asyncio.wait_for(link.connect(), self.connect_timeout)
            reply = await self._request_on_link(link, {"type": "hello"}, "params")
            published = PublicParams.from_dict(dict(reply["params"]))
            if published != self.params:
                raise ClusterError(
                    f"shard {link.index} at {link.host}:{link.port} serves "
                    f"different public parameters than this router"
                )
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sockname = self._server.sockets[0].getsockname()
        return str(sockname[0]), int(sockname[1])

    async def serve_until_stopped(self) -> None:
        """Serve until a ``shutdown`` frame arrives or :meth:`stop` is called."""
        if self._server is None:
            raise RuntimeError("call start() first")
        await self._stopping.wait()
        await self._shutdown()

    async def stop(self) -> None:
        """Stop accepting clients and close the shard connections."""
        self._stopping.set()
        await self._shutdown()

    async def _shutdown(self) -> None:
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        for writer in list(self._connections):
            writer.close()
        await server.wait_closed()
        for link in self.links:
            await link.close()

    # ----- shard fan-out plumbing -----------------------------------------------------

    async def _request_on_link(
        self,
        link: _ShardLink,
        frame: Dict[str, object],
        expected: str,
    ) -> Dict[str, object]:
        """One request/reply on an (assumed healthy) shard connection.

        The whole exchange runs under ``request_timeout``, so a stalled
        shard surfaces as ``asyncio.TimeoutError`` (a recoverable
        ``_SHARD_FAILURES`` member) instead of hanging the fan-out.  An
        ``error`` reply is *also* recoverable: the shard service answers an
        error frame and closes on any malformed input, so an error here
        means the pooled connection is desynchronized — reconnect, replay,
        and a ``sync`` barrier restore it.
        """
        reader, writer = link.reader, link.writer
        if reader is None or writer is None:
            raise FrameError(f"shard {link.index} link is not connected")

        async def exchange() -> Optional[Dict[str, object]]:
            await write_frame(writer, frame)
            return await read_frame(reader)

        reply = await asyncio.wait_for(exchange(), self.request_timeout)
        if reply is None:
            raise FrameError(
                f"shard {link.index} closed the connection mid-request"
            )
        if reply.get("type") == "error":
            raise FrameError(
                f"shard {link.index} answered with an error: "
                f"{reply.get('error')}"
            )
        if reply.get("type") != expected:
            raise FrameError(
                f"shard {link.index}: expected a {expected!r} reply, got "
                f"{reply.get('type')!r}"
            )
        return reply

    async def _replay_locked(self, link: _ShardLink) -> None:
        """Replay the journal on a fresh connection (caller holds the lock).

        The journal holds the *stamped* payload bytes, so the shard sees an
        exact redelivery: frames at or below its sequence watermark are
        deduped, frames above it (or all of them, on a restarted shard
        whose watermark reset) are absorbed.  The closing ``sync`` barrier
        both confirms absorption and surfaces a second failure immediately.
        """
        writer = link.writer
        if writer is None:
            raise FrameError(f"shard {link.index} link is not connected")
        for payload, num_reports in link.journal:
            writer.write(frame_bytes(payload))
            self.stats.journal_replayed_frames += 1
            self.stats.journal_replayed_reports += num_reports
        await asyncio.wait_for(writer.drain(), self.request_timeout)
        await self._request_on_link(link, {"type": "sync"}, "synced")

    async def _reconnect_locked(self, link: _ShardLink) -> None:
        """Dial the shard afresh and bring it up to date (lock held)."""
        await asyncio.wait_for(link.connect(), self.connect_timeout)
        await self._replay_locked(link)

    async def _restart_locked(self, link: _ShardLink) -> None:
        """Supervisor-restart the shard from its snapshot, then replay.

        Caller holds ``link.lock`` and has checked ``self.supervisor``.
        The supervisor restores the shard's newest snapshot — the state at
        the last cleared journal barrier — and the replay re-forwards
        everything since, so the revived shard converges to the exact
        pre-fault integer state.
        """
        assert self.supervisor is not None
        self.stats.shard_restarts += 1
        loop = asyncio.get_running_loop()
        host, port = await loop.run_in_executor(
            None, self.supervisor.restart, link.index
        )
        link.host, link.port = host, int(port)
        if link.shm_name is not None:
            # The revived shard bound a fresh ring generation; dialing the
            # old name would hit the dead shard's unlinked segment.
            link.shm_name = self.supervisor.shm_name(link.index)
        await self._reconnect_locked(link)

    async def _recover_locked(
        self, link: _ShardLink, cause: BaseException
    ) -> None:
        """Bounded recovery ladder with seeded backoff (caller holds lock).

        Attempt 0 assumes a transport fault on a live shard: reconnect and
        replay.  Later attempts assume the shard itself is gone (or frozen
        — a SIGSTOPped shard accepts connections at the kernel backlog but
        never answers the replay's ``sync``) and escalate to a supervisor
        restart; without a supervisor they keep reconnecting.  Exhausting
        the ladder raises :class:`ShardUnavailable` — callers get a typed
        failure within ``recovery_attempts`` bounded-deadline attempts,
        never a hang.
        """
        last: BaseException = cause
        link.last_fault = repr(cause)
        for attempt in range(self.recovery_attempts):
            if attempt > 0:
                delay = min(
                    self.backoff_cap, self.backoff_base * 2 ** (attempt - 1)
                ) + float(self._backoff_rng.uniform(0.0, self.backoff_base))
                await asyncio.sleep(delay)
            try:
                if attempt == 0 or self.supervisor is None:
                    await self._reconnect_locked(link)
                else:
                    await self._restart_locked(link)
                return
            except _SHARD_FAILURES as exc:
                last = exc
                link.last_fault = repr(exc)
                await link.close()
        raise ShardUnavailable(
            f"shard {link.index} at {link.host}:{link.port} is unavailable "
            f"after {self.recovery_attempts} recovery attempts "
            f"(last fault: {link.last_fault})"
        ) from last

    async def _request(
        self,
        link: _ShardLink,
        frame: Dict[str, object],
        expected: str,
        revive: bool = True,
    ) -> Dict[str, object]:
        """Fan-out request with dead-shard detection and bounded recovery."""
        async with link.lock:
            if not revive:
                return await self._request_on_link(link, frame, expected)
            for _ in range(2):
                try:
                    return await self._request_on_link(link, frame, expected)
                except _SHARD_FAILURES as exc:
                    await self._recover_locked(link, exc)
            return await self._request_on_link(link, frame, expected)

    async def _fan_out(self, coros: Iterable[Awaitable[Dict[str, object]]]
                       ) -> List[Dict[str, object]]:
        """Gather shard requests without cancelling the stragglers.

        A plain ``gather`` cancels in-flight requests when one fails, which
        would abandon pooled connections mid-reply and desynchronize them;
        here every request runs to completion and the first failure is
        raised only afterwards.
        """
        results = await asyncio.gather(*coros, return_exceptions=True)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return list(results)

    async def _checkpoint_locked(self, link: _ShardLink) -> str:
        """Snapshot one shard and clear its journal (caller holds the lock).

        The shard connection is ordered, so every journaled frame reaches
        the shard before the ``snapshot`` frame; the acknowledged snapshot
        therefore covers the whole journal, and clearing it is exact.
        """
        reply = await self._request_on_link(
            link, {"type": "snapshot"}, "snapshot_written"
        )
        link.journal.clear()
        link.journal_reports = 0
        self.stats.checkpoints += 1
        return str(reply["path"])

    async def _forward(
        self,
        link: _ShardLink,
        payload: bytes,
        num_reports: int,
        message: Optional[Dict[str, object]] = None,
    ) -> None:
        """Stamp, journal, and forward one ``reports`` payload to its shard.

        The payload is stamped with the link's next delivery sequence
        number *before* journaling — binary frames in place via
        :func:`~repro.protocol.binary.stamp_sequence` (an 8-byte splice, no
        column decode), JSON frames by setting ``"seq"`` on the parsed
        ``message`` the dispatcher already has.  Journaling the stamped
        bytes is what makes replay-after-fault idempotent (§7.1): the shard
        dedupes redelivered frames on the sequence number.
        """
        async with link.lock:
            link.seq += 1
            if message is None:
                payload = stamp_sequence(payload, link.seq)
            else:
                message["seq"] = link.seq
                payload = json.dumps(
                    message, separators=(",", ":")
                ).encode("utf-8")
            link.journal.append((payload, num_reports))
            link.journal_reports += num_reports
            link.reports_forwarded += num_reports
            try:
                writer = link.writer
                if writer is None:
                    raise FrameError(
                        f"shard {link.index} link is not connected"
                    )
                writer.write(frame_bytes(payload))
                await asyncio.wait_for(writer.drain(), self.request_timeout)
            except _SHARD_FAILURES as exc:
                # The failed frame is already journaled, so recovery's
                # replay delivers it along with everything else pending.
                await self._recover_locked(link, exc)
            if link.journal_reports >= self.checkpoint_reports:
                try:
                    await self._checkpoint_locked(link)
                except _SHARD_FAILURES as exc:
                    await self._recover_locked(link, exc)
                    await self._checkpoint_locked(link)
        self.stats.frames_forwarded += 1
        self.stats.reports_forwarded += num_reports

    # ----- client connection handling -------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.stats.connections_total += 1
        self._connections.add(writer)
        try:
            while True:
                try:
                    payload = await read_frame_payload(reader)
                except FrameError as exc:
                    await write_frame(writer, {"type": "error", "error": str(exc)})
                    break
                if payload is None:
                    break
                if not await self._dispatch(payload, writer):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _reject(self, reason: str) -> None:
        self.stats.frames_rejected += 1
        self.stats.last_rejection = reason

    def _pick_shard(self, route: Optional[int]) -> _ShardLink:
        if route is not None:
            return self.links[self.partition.shard_of(route)]
        # No routing key: any assignment is exact (merge is an integer
        # sum); round-robin keeps the shards balanced.
        self.stats.frames_unrouted += 1
        link = self.links[self._round_robin % self.num_shards]
        self._round_robin += 1
        return link

    async def _dispatch(self, payload: bytes, writer: asyncio.StreamWriter) -> bool:
        """Handle one client frame; returns ``False`` to close the connection."""
        # Reports frames: peek the routing header and forward the payload
        # bytes verbatim — fire-and-forget, like the single-server path.
        if is_binary_payload(payload):
            try:
                header = peek_reports_header(payload)
            except BinaryFormatError as exc:
                self._reject(str(exc))
                return True
            if "binary" not in self.wire_formats:
                self._reject(
                    f"'binary' reports frames are disabled on this router "
                    f"(accepted: {self.wire_formats})"
                )
                return True
            if header["protocol"] != self.params.protocol:
                self._reject(
                    f"cannot route {header['protocol']!r} reports through a "
                    f"{self.params.protocol!r} cluster"
                )
                return True
            route = header["route"]
            link = self._pick_shard(int(route) if route is not None else None)
            await self._forward(link, payload, int(header["num_reports"]))
            return True
        try:
            message = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await write_frame(
                writer, {"type": "error", "error": f"invalid JSON in frame: {exc}"}
            )
            return False
        if not isinstance(message, dict):
            await write_frame(
                writer,
                {"type": "error", "error": "frame payload must be a JSON object"},
            )
            return False
        if message.get("type") == "reports":
            batch = message.get("batch")
            num_reports = (
                int(batch.get("num_reports", 0)) if isinstance(batch, dict) else 0
            )
            if "json" not in self.wire_formats:
                self._reject(
                    f"'json' reports frames are disabled on this router "
                    f"(accepted: {self.wire_formats})"
                )
                return True
            protocol = batch.get("protocol") if isinstance(batch, dict) else None
            if protocol != self.params.protocol:
                self._reject(
                    f"cannot route {protocol!r} reports through a "
                    f"{self.params.protocol!r} cluster"
                )
                return True
            route = message.get("route")
            link = self._pick_shard(int(route) if route is not None else None)
            await self._forward(link, payload, num_reports, message=message)
            return True
        try:
            return await self._dispatch_control(message, writer)
        except Exception as exc:  # noqa: BLE001 - reported to the peer
            reply: Dict[str, object] = {"type": "error", "error": str(exc)}
            if isinstance(exc, ShardUnavailable):
                # Typed so clients can tell "shard down mid-query" apart
                # from a malformed request (docs/wire-protocol.md §7).
                reply["code"] = "shard_unavailable"
            await write_frame(writer, reply)
            return True

    # ----- control frames -------------------------------------------------------------

    async def _dispatch_control(
        self,
        message: Dict[str, object],
        writer: asyncio.StreamWriter,
    ) -> bool:
        kind = message.get("type")
        if kind == "hello":
            await write_frame(
                writer,
                {
                    "type": "params",
                    "server": ROUTER_ID,
                    "params": self.params.to_dict(),
                    "window": self.window,
                    "wire_formats": list(self.wire_formats),
                    "cluster": {
                        "num_shards": self.num_shards,
                        "partition": self.partition.to_dict(),
                    },
                },
            )
            return True
        if kind == "sync":
            replies = await self._fan_out(
                self._request(link, {"type": "sync"}, "synced")
                for link in self.links
            )
            await write_frame(
                writer,
                {
                    "type": "synced",
                    "num_reports": sum(int(r["num_reports"]) for r in replies),
                },
            )
            return True
        if kind == "query":
            items = [int(x) for x in message.get("items", [])]
            window = message.get("window")
            window = int(window) if window is not None else None
            merged, epochs = await self._merged_aggregator(window, None)
            if merged.num_reports == 0:
                estimates = [0.0] * len(items)
            else:
                estimator = merged.finalize()
                estimates = [float(a) for a in estimator.estimate_many(items)]
            self.stats.queries_answered += 1
            await write_frame(
                writer,
                {
                    "type": "estimates",
                    "items": items,
                    "estimates": estimates,
                    "num_reports": int(merged.num_reports),
                    "epochs": epochs,
                },
            )
            return True
        if kind == "state":
            # Cluster-level state pull: merge the shards' packed states and
            # re-pack the merged exact-integer state — the same frame a
            # shard answers, so clusters compose (a router can front
            # routers) and protocols whose finalized estimator is not
            # item-queryable (RAPPOR) still get exact cluster reads.
            window = message.get("window")
            window = int(window) if window is not None else None
            min_epoch = message.get("min_epoch")
            min_epoch = int(min_epoch) if min_epoch is not None else None
            if window is not None and min_epoch is not None:
                raise ValueError("window and min_epoch are mutually exclusive")
            merged, epochs = await self._merged_aggregator(window, min_epoch)
            blob = pack_state(child_state(merged))
            self.stats.queries_answered += 1
            await write_frame(
                writer,
                {
                    "type": "state",
                    "protocol": self.params.protocol,
                    "epochs": epochs,
                    "num_reports": int(merged.num_reports),
                    "state": base64.b64encode(blob).decode("ascii"),
                },
            )
            return True
        if kind == "stats":
            await write_frame(writer, await self._merged_stats())
            return True
        if kind == "health":
            await write_frame(writer, await self._health())
            return True
        if kind == "snapshot":
            paths = []
            for link in self.links:
                async with link.lock:
                    try:
                        paths.append(await self._checkpoint_locked(link))
                    except _SHARD_FAILURES as exc:
                        await self._recover_locked(link, exc)
                        paths.append(await self._checkpoint_locked(link))
            num_reports = sum(
                int(r["num_reports"])
                for r in await self._fan_out(
                    self._request(link, {"type": "sync"}, "synced")
                    for link in self.links
                )
            )
            await write_frame(
                writer,
                {
                    "type": "snapshot_written",
                    "path": (
                        str(self.supervisor.base_dir)
                        if self.supervisor is not None
                        else paths[0]
                    ),
                    "paths": paths,
                    "num_reports": num_reports,
                },
            )
            return True
        if kind == "shutdown":
            total = 0
            for link in self.links:
                try:
                    reply = await self._request(
                        link, {"type": "shutdown"}, "bye", revive=False
                    )
                    total += int(reply["num_reports"])
                except (*_SHARD_FAILURES, ClusterError):
                    pass  # already dead; the supervisor reaps it below
            if self.supervisor is not None:
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, self.supervisor.stop)
            await write_frame(writer, {"type": "bye", "num_reports": total})
            self._stopping.set()
            return False
        raise ValueError(f"unknown frame type {kind!r}")

    # ----- merged queries -------------------------------------------------------------

    async def _pull_states(
        self, min_epoch: Optional[int]
    ) -> List[Dict[str, object]]:
        frame: Dict[str, object] = {"type": "state"}
        if min_epoch is not None:
            frame["min_epoch"] = int(min_epoch)
        return await self._fan_out(
            self._request(link, frame, "state") for link in self.links
        )

    async def _pull_windowed(self, window: int) -> List[Dict[str, object]]:
        """Resolve a relative window to one absolute cutoff, then pull.

        The cutoff and the pulled states must describe the same moment, or
        a window-``w`` reply could merge epochs outside the window (a
        single server computes both atomically).  So: drain every shard
        first (the ``sync`` barrier — per-connection ordering already put
        this client's prior frames ahead of it), resolve the global newest
        epoch from post-drain stats, pull with the absolute cutoff, and —
        if a concurrent sender landed a brand-new epoch in between, which
        the pulled epochs expose — re-resolve against the newer state.
        """
        if window < 1:
            raise ValueError("query window must be >= 1")
        await self._fan_out(
            self._request(link, {"type": "sync"}, "synced")
            for link in self.links
        )
        pulls: List[Dict[str, object]] = []
        for _ in range(3):
            replies = await self._fan_out(
                self._request(link, {"type": "stats"}, "stats")
                for link in self.links
            )
            newest = [max(r["epochs"]) for r in replies if r["epochs"]]
            cutoff = max(newest) - window if newest else None
            pulls = await self._pull_states(cutoff)
            top = max(
                (int(e) for pull in pulls for e in pull["epochs"]),
                default=None,
            )
            if top is None or (newest and top <= max(newest)):
                return pulls
        return pulls

    async def _merged_aggregator(
        self,
        window: Optional[int],
        min_epoch: Optional[int],
    ) -> Tuple[ServerAggregator, List[int]]:
        """Pull every shard's packed state and merge exactly.

        The shard-side ``state`` handler drains its ingestion queue first,
        and each shard connection delivers frames in order, so the pulled
        states reflect every frame this router forwarded before the query.
        A relative ``window`` is resolved to one absolute ``min_epoch``
        cutoff against the *global* newest epoch, keeping the selection
        identical to a single server that held all shards' epochs.
        """
        if window is not None:
            pulls = await self._pull_windowed(window)
        else:
            pulls = await self._pull_states(min_epoch)
        shards = []
        for pull in pulls:
            aggregator = self.params.make_aggregator()
            state = unpack_state(base64.b64decode(str(pull["state"])))
            load_child_state(aggregator, state)
            shards.append(aggregator)
        merged = merge_aggregators(shards)
        epochs = sorted({int(e) for pull in pulls for e in pull["epochs"]})
        return merged, epochs

    async def _merged_stats(self) -> Dict[str, object]:
        """Sum the shard counters; attach per-shard and router detail."""
        replies = await self._fan_out(
            self._request(link, {"type": "stats"}, "stats") for link in self.links
        )
        summed = {
            key: sum(int(r.get(key, 0)) for r in replies)
            for key in (
                "batches_received",
                "reports_received",
                "reports_absorbed",
                "reports_rejected",
                "queries_answered",
                "snapshots_written",
                "connections_total",
                "state_size",
                "queue_depth",
            )
        }
        summed["drain_s"] = round(
            sum(float(r.get("drain_s", 0.0)) for r in replies), 6
        )
        summed.update(
            {
                "type": "stats",
                "server": ROUTER_ID,
                "protocol": self.params.protocol,
                "window": self.window,
                "epochs": sorted(
                    {int(e) for r in replies for e in r.get("epochs", [])}
                ),
                "router": self.stats.to_dict(),
                "shards": [
                    {
                        "shard": link.index,
                        "host": link.host,
                        "port": link.port,
                        "reports_absorbed": int(r.get("reports_absorbed", 0)),
                        "journal_reports": link.journal_reports,
                    }
                    for link, r in zip(self.links, replies, strict=True)
                ],
            }
        )
        return summed

    async def _health(self) -> Dict[str, object]:
        """Probe every shard without draining or recovering.

        Health is a *read* on the cluster's failure state, so an
        unreachable shard is reported (``status: "unreachable"``) rather
        than recovered — recovery stays on the ingest/query paths where it
        preserves exactness.  The dead link is closed so the next real
        request hits the not-connected guard and recovers normally.
        """
        degraded = False
        shards: List[Dict[str, object]] = []
        for link in self.links:
            entry: Dict[str, object] = {
                "shard": link.index,
                "host": link.host,
                "port": link.port,
                "journal_frames": len(link.journal),
                "journal_reports": link.journal_reports,
                "reports_forwarded": link.reports_forwarded,
                "seq": link.seq,
                "last_fault": link.last_fault,
            }
            if self.supervisor is not None:
                entry["restarts"] = int(
                    self.supervisor.shards[link.index].restarts
                )
            async with link.lock:
                try:
                    reply = await self._request_on_link(
                        link, {"type": "health"}, "health"
                    )
                except _SHARD_FAILURES as exc:
                    degraded = True
                    link.last_fault = repr(exc)
                    entry["last_fault"] = link.last_fault
                    entry["status"] = "unreachable"
                    entry["error"] = str(exc)
                    await link.close()
                else:
                    entry["status"] = str(reply.get("status", "ok"))
                    for key in (
                        "queue_depth", "epochs", "num_reports", "max_seq"
                    ):
                        if key in reply:
                            entry[key] = reply[key]
            shards.append(entry)
        return {
            "type": "health",
            "server": ROUTER_ID,
            "status": "degraded" if degraded else "ok",
            "num_shards": self.num_shards,
            "shards": shards,
        }
