"""The cluster router: one endpoint fronting N shard aggregation servers.

:class:`ClusterRouter` speaks the exact frame protocol of
:mod:`repro.server` on its client side — ``hello`` / ``reports`` / ``sync``
/ ``query`` / ``stats`` / ``snapshot`` / ``shutdown`` — so every existing
client (:class:`~repro.server.client.AggregationClient`, the load
generator, the benchmarks) works against a cluster unchanged.  Behind that
endpoint:

* **Routing** — each ``reports`` frame is assigned to a shard by the
  published pairwise-independent
  :class:`~repro.engine.partition.ShardPartition` applied to the frame's
  shard-routing header (``docs/wire-protocol.md`` §8.1); frames without a
  routing key fall back to round-robin.  Either way the frame's *payload
  bytes are forwarded verbatim* (:func:`~repro.server.framing.frame_bytes`)
  — the router peeks a few header bytes and never decodes a column, so the
  zero-copy ingest pipeline of the binary wire format extends end-to-end
  through the cluster tier.
* **Exact merged queries** — ``query`` pulls every shard's packed
  exact-integer aggregator state (the ``state`` frame), merges the K states
  with the commutative integer-sum merge, and finalizes once.  A K-shard
  cluster therefore answers **bit-identically** to one server that ingested
  everything — and to the offline engine
  (:func:`repro.engine.run_simulation`) under the same seed, which
  ``python -m repro.cli load-test --cluster K`` asserts.  Windowed queries
  stay exact across shards: the router resolves the global newest epoch
  first and passes every shard the same absolute ``min_epoch`` cutoff.
* **Failure handling** — every frame forwarded to a shard is stamped with
  a per-link delivery sequence number (``docs/wire-protocol.md`` §7.1) and
  kept in that shard's *journal* until the shard acknowledges a snapshot
  barrier (auto-checkpoint after ``checkpoint_reports`` journaled reports,
  or an explicit client ``snapshot``).  When a fan-out or forward fails,
  recovery runs a bounded escalation ladder under seeded exponential
  backoff: reconnect and replay the journal first, then — when a
  :class:`~repro.cluster.supervisor.ClusterSupervisor` is attached —
  restart the shard from its newest snapshot and replay.  Replays are
  idempotent: the shard dedupes already-absorbed frames on the sequence
  number, so a replay onto a *live* shard (connection reset, truncated
  frame) absorbs only the lost suffix, while a replay onto a *restarted*
  shard (fresh watermark) re-absorbs everything since the snapshot — both
  converge to exactly the state the shard would have had without the
  fault, so cluster answers remain bit-identical through kills, resets,
  and stalls.  When the ladder is exhausted the failure surfaces as a
  typed :class:`~repro.server.client.ShardUnavailable` within a bounded
  deadline — never a hang, never a silently partial result.

Connections to shards are pooled: one persistent, ordered connection per
shard, reused for every forward and fan-out rather than dialed per
request.  Ordering is load-bearing — a shard connection that delivers
journal frames *before* the snapshot barrier frame is what makes "journal
cleared at the barrier" an exact statement — so the pool holds exactly one
connection per shard, serialized by a per-shard lock.

**Elastic membership** — the shard set is no longer frozen at start-up.
Routing consults a versioned, epoch-stamped
:class:`~repro.cluster.shardmap.ShardMap` per frame, and three control
verbs (``docs/wire-protocol.md`` §7.4, ``docs/operations.md``) change it
online:

* ``add_shard`` spawns a shard through the supervisor and activates it at
  an epoch cut above every epoch the router has seen — the new shard takes
  only new-epoch traffic, so nothing moves and nothing double-counts.
* ``drain_shard`` rewrites the drained id out of every routing entry (no
  new frame can reach it), syncs it, pulls its packed exact-integer
  per-epoch state (the shard-side ``handoff`` frame), pushes that state
  into a surviving shard (``absorb_state``, idempotent on a handoff id),
  checkpoints the survivor, and only then reaps the drained process.
* ``rolling_restart`` checkpoint-restarts every shard in sequence behind
  its link lock — ingest to the other shards continues throughout.

Every transition step is journaled (:class:`~repro.cluster.journal.
MembershipJournal`) and the persisted map write is the commit point, so a
SIGKILL at *any* step resumes (roll forward) or rolls back to a consistent
map on the next start — and because the aggregator algebra is a
commutative integer sum, a cluster that grows and drains mid-ingest still
finalizes **bit-identically** to the offline engine.  When a supervisor
(and hence a base directory) is attached, per-link frame journals are
additionally mirrored to CRC32-framed on-disk logs so a *router* restart
replays exactly what an in-process recovery would have.
"""

from __future__ import annotations

import asyncio
import base64
import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Awaitable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cluster.supervisor import ClusterSupervisor

from repro.cluster.journal import FrameJournal, MembershipJournal
from repro.cluster.shardmap import ShardMap, ShardMapError, ShardMapStore
from repro.engine.partition import ShardPartition
from repro.protocol.binary import (
    BinaryFormatError,
    is_binary_payload,
    pack_state,
    peek_reports_header,
    stamp_sequence,
    unpack_state,
)
from repro.protocol.wire import (
    PublicParams,
    ServerAggregator,
    child_state,
    load_child_state,
    merge_aggregators,
)
from repro.server.client import ShardUnavailable
from repro.server.snapshot import read_snapshot, write_snapshot
from repro.server.framing import (
    WIRE_FORMATS,
    FrameError,
    frame_bytes,
    read_frame,
    read_frame_payload,
    write_frame,
)
from repro.transport import dial as transport_dial
from repro.utils.rng import RandomState, as_generator

__all__ = ["ClusterError", "ClusterRouter", "RouterStats", "ROUTER_ID"]

#: protocol identification string sent in every router ``params`` reply
ROUTER_ID = "repro-cluster-router/1"

#: transport-level failures that trigger shard recovery on fan-out.
#: ``asyncio.TimeoutError`` is listed explicitly: on Python 3.10 it is not
#: the builtin ``TimeoutError`` (an ``OSError`` subclass), and every shard
#: exchange runs under an ``asyncio.wait_for`` deadline.
_SHARD_FAILURES = (
    OSError,
    FrameError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
)


class ClusterError(RuntimeError):
    """A shard is unreachable and cannot be revived."""


@dataclass
class RouterStats:
    """Router-side counters, served inside the ``stats`` reply."""

    connections_total: int = 0
    frames_forwarded: int = 0
    reports_forwarded: int = 0
    frames_unrouted: int = 0
    frames_rejected: int = 0
    queries_answered: int = 0
    shard_restarts: int = 0
    journal_replayed_frames: int = 0
    journal_replayed_reports: int = 0
    checkpoints: int = 0
    last_rejection: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "connections_total": self.connections_total,
            "frames_forwarded": self.frames_forwarded,
            "reports_forwarded": self.reports_forwarded,
            "frames_unrouted": self.frames_unrouted,
            "frames_rejected": self.frames_rejected,
            "queries_answered": self.queries_answered,
            "shard_restarts": self.shard_restarts,
            "journal_replayed_frames": self.journal_replayed_frames,
            "journal_replayed_reports": self.journal_replayed_reports,
            "checkpoints": self.checkpoints,
            "last_rejection": self.last_rejection,
        }


class _ShardLink:
    """One pooled, ordered connection to a shard, plus its frame journal."""

    def __init__(self, index: int, host: str, port: int,
                 shm_name: Optional[str] = None) -> None:
        self.index = index
        self.host = host
        self.port = int(port)
        #: when set, :meth:`connect` dials ``shm://{shm_name}`` (the
        #: shard's same-host shared-memory ring) instead of TCP loopback;
        #: refreshed after a supervisor restart, because a revived shard
        #: binds a fresh ring generation
        self.shm_name = shm_name
        #: duck-typed transport streams (asyncio TCP, or the shm ring
        #: shims) — the frame layer consumes the same surface either way
        self.reader: Optional[Any] = None
        self.writer: Optional[Any] = None
        self.lock = asyncio.Lock()
        #: raw frame payloads (and their report counts) forwarded since the
        #: shard's last acknowledged snapshot barrier; payloads are stored
        #: *after* sequence stamping so a replay redelivers identical bytes
        self.journal: List[Tuple[bytes, int]] = []
        self.journal_reports = 0
        self.reports_forwarded = 0
        #: delivery sequence number of the last ``reports`` frame stamped
        #: for this shard (``docs/wire-protocol.md`` §7.1); the router is
        #: the single sequencing writer, so strictly increasing per link
        self.seq = 0
        #: ``repr`` of the most recent transport failure on this link
        self.last_fault: Optional[str] = None
        #: durable mirror of :attr:`journal` (attached when the router has
        #: a journal directory): every stamped frame is appended to a
        #: CRC32-framed on-disk log and every checkpoint writes a barrier,
        #: so a *router* restart replays the same frames an in-process
        #: recovery would have
        self.disk: Optional[FrameJournal] = None

    async def connect(self) -> None:
        await self.close()
        address = (f"shm://{self.shm_name}" if self.shm_name is not None
                   else f"tcp://{self.host}:{self.port}")
        conn = await transport_dial(address)
        self.reader, self.writer = conn.reader, conn.writer

    async def close(self) -> None:
        # detach before the first await: a connect() racing this close()
        # must never have its fresh streams nulled by a stale close
        writer, self.reader, self.writer = self.writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.IncompleteReadError):
                pass


class ClusterRouter:
    """Route ``reports`` frames across shards; answer queries by exact merge.

    Parameters
    ----------
    params:
        Public parameters every shard serves (published to clients in the
        ``hello`` reply, exactly like a single server).
    endpoints:
        ``(host, port)`` of each shard server.  Defaults to the
        supervisor's endpoints.
    supervisor:
        A started :class:`~repro.cluster.supervisor.ClusterSupervisor`.
        Optional — without one the router still routes and queries, but a
        dead shard is an error instead of a restart.
    partition:
        The published routing partition; sampled from ``rng`` when omitted.
    rng:
        Seed/generator for sampling the default partition.
    wire_formats:
        ``reports`` formats accepted from clients (advertised in ``hello``).
    checkpoint_reports:
        Auto-checkpoint threshold: once a shard's journal holds at least
        this many reports, the router requests a shard snapshot and clears
        the journal.  Bounds both journal memory and replay time.
    window:
        Retention the shards were started with (published in ``hello``).
    transport:
        ``"tcp"`` (default) dials every shard over TCP loopback;
        ``"shm"`` dials each local shard's same-host shared-memory ring
        (:mod:`repro.transport`) instead — no syscall per forwarded frame.
        Requires a supervisor started with ``transport="shm"``; it owns
        the per-shard ring names and their restart generations.
    connect_timeout:
        Deadline (seconds) for dialing a shard connection.
    request_timeout:
        Deadline (seconds) for one request/reply exchange (or one forward
        drain) on a shard connection.  A shard that accepts bytes but never
        answers — a stalled read — surfaces as a timeout and enters
        recovery instead of hanging the fan-out.
    recovery_attempts:
        Size of the recovery ladder: attempt 0 reconnects and replays the
        journal; later attempts escalate to a supervisor restart (when one
        is attached).  Exhausting the ladder raises
        :class:`~repro.server.client.ShardUnavailable`.
    journal_dir:
        Home of the durable membership state: ``shardmap.json``,
        ``membership.journal`` and the per-link ``journal-shard-K.bin``
        frame journals.  Defaults to the supervisor's base directory; with
        neither a directory nor a supervisor the router runs with
        in-memory journals and an in-memory map only (exactly the old
        behavior).  On start, an existing persisted map is **adopted** —
        that is the crash-resume path — and half-finished membership
        transitions are rolled forward or back.
    backoff_base / backoff_cap:
        Exponential backoff between recovery attempts:
        ``min(cap, base * 2**(attempt-1))`` plus seeded jitter drawn from
        ``rng`` — deterministic under a fixed seed, like everything else.
    """

    def __init__(
        self,
        params: PublicParams,
        endpoints: Optional[Sequence[Tuple[str, int]]] = None,
        *,
        supervisor: Optional["ClusterSupervisor"] = None,
        partition: Optional[ShardPartition] = None,
        rng: RandomState = None,
        wire_formats: Sequence[str] = WIRE_FORMATS,
        checkpoint_reports: int = 1 << 16,
        window: Optional[int] = None,
        transport: str = "tcp",
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        recovery_attempts: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        journal_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if endpoints is None:
            if supervisor is None:
                raise ValueError("need shard endpoints or a supervisor")
            endpoints = supervisor.endpoints()
        if not endpoints:
            raise ValueError("need at least one shard endpoint")
        if transport not in ("tcp", "shm"):
            raise ValueError(f"transport must be 'tcp' or 'shm', "
                             f"got {transport!r}")
        if transport == "shm" and (
            supervisor is None or supervisor.transport != "shm"
        ):
            raise ValueError(
                "transport='shm' needs a supervisor started with "
                "transport='shm' (it owns the shards' ring names)"
            )
        self.wire_formats = tuple(wire_formats)
        if not self.wire_formats or any(
            fmt not in WIRE_FORMATS for fmt in self.wire_formats
        ):
            raise ValueError(
                f"wire_formats must be a non-empty subset of {WIRE_FORMATS}, "
                f"got {wire_formats!r}"
            )
        if checkpoint_reports < 1:
            raise ValueError("checkpoint_reports must be >= 1")
        if connect_timeout <= 0 or request_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if recovery_attempts < 1:
            raise ValueError("recovery_attempts must be >= 1")
        self.params = params
        self.supervisor = supervisor
        self.partition = (
            partition
            if partition is not None
            else ShardPartition.sample(len(endpoints), rng)
        )
        if self.partition.num_shards != len(endpoints):
            raise ValueError(
                f"partition routes over {self.partition.num_shards} shards "
                f"but {len(endpoints)} endpoints were given"
            )
        self.window = window
        self.checkpoint_reports = int(checkpoint_reports)
        self.connect_timeout = float(connect_timeout)
        self.request_timeout = float(request_timeout)
        self.recovery_attempts = int(recovery_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        #: jitter source for recovery backoff; seeded from the same ``rng``
        #: that sampled the partition, so a chaos run replays exactly
        self._backoff_rng = as_generator(rng)
        self.transport = transport
        self.stats = RouterStats()
        self.links = [
            _ShardLink(
                i, host, port,
                shm_name=(supervisor.shm_name(i) if transport == "shm"
                          and supervisor is not None else None),
            )
            for i, (host, port) in enumerate(endpoints)
        ]
        #: every link the router knows, keyed by shard id — includes a
        #: draining shard mid-handoff, which :attr:`links` (the fan-out
        #: set) no longer does
        self._links_by_id: Dict[int, _ShardLink] = {
            link.index: link for link in self.links
        }
        #: the routing authority: every reports frame asks the current map
        #: which shard owns its (route key, epoch)
        self.shard_map = ShardMap.initial(len(self.links), self.partition)
        if journal_dir is None and supervisor is not None:
            journal_dir = supervisor.base_dir
        self.journal_dir = Path(journal_dir) if journal_dir is not None \
            else None
        self._map_store: Optional[ShardMapStore] = None
        self._membership_journal: Optional[MembershipJournal] = None
        if self.journal_dir is not None:
            self._map_store = ShardMapStore(self.journal_dir
                                            / "shardmap.json")
            self._membership_journal = MembershipJournal(
                self.journal_dir / "membership.journal")
        #: serializes membership transitions against each other and against
        #: merged reads (query/state/stats/sync/snapshot) — a query never
        #: observes a half-moved shard.  Per-frame forwarding does NOT take
        #: it; forwards re-check routability under the link lock instead.
        self._membership_lock = asyncio.Lock()
        #: in-flight drains (shard id -> (target id, handoff id)) so a
        #: journal-less router can still resume a drain that failed
        #: mid-transition without losing the handoff identity
        self._pending_drains: Dict[int, Tuple[int, int]] = {}
        #: newest epoch seen on any reports frame — the add-shard cut point
        self._newest_epoch = -1
        self._round_robin = 0
        self._server: Optional[asyncio.base_events.Server] = None
        #: claimed synchronously at the top of start(), before its first
        #: await, so concurrent start() calls cannot both pass the guard
        self._started = False
        self._connections: set = set()
        self._stopping = asyncio.Event()

    @property
    def num_shards(self) -> int:
        return len(self.links)

    def _frame_journal_path(self, shard_id: int) -> Path:
        assert self.journal_dir is not None
        return self.journal_dir / f"journal-shard-{shard_id}.bin"

    # ----- lifecycle ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Connect to every shard, verify parameters, bind, and serve.

        With a journal directory this is also the **crash-resume path**: an
        already-persisted shard map is adopted in place of the fresh one,
        the per-link frame journals are reloaded (truncating torn tails)
        and replayed — idempotently, thanks to §7.1 sequence dedup and the
        shards' ``max_seq`` watermarks — and any half-finished membership
        transition is rolled forward (draining) or back (joining).
        """
        if self._started:
            raise RuntimeError("router already started")
        self._started = True
        loop = asyncio.get_running_loop()
        if self._map_store is not None:
            persisted = await loop.run_in_executor(None, self._map_store.load)
            if persisted is not None:
                self._adopt_map(persisted)
            else:
                await loop.run_in_executor(
                    None, self._map_store.save, self.shard_map
                )
        for link in list(self._links_by_id.values()):
            if self.journal_dir is not None and link.disk is None:
                link.disk = FrameJournal(
                    self._frame_journal_path(link.index), fsync=False
                )
                entries, journal_seq = await loop.run_in_executor(
                    None, link.disk.load
                )
                link.journal = list(entries)
                link.journal_reports = sum(n for _, n in entries)
                link.seq = journal_seq
            try:
                await asyncio.wait_for(link.connect(), self.connect_timeout)
            except _SHARD_FAILURES as exc:
                # A cold resume must tolerate a shard that died along with
                # the previous router: escalate through the same recovery
                # ladder as a mid-flight fault (reconnect, then supervisor
                # restart from the newest valid snapshot).  The journal was
                # loaded above, so the ladder's replay restores everything
                # past that snapshot before the router serves anyone.
                async with link.lock:
                    await self._recover_locked(link, exc)
            reply = await self._request_on_link(link, {"type": "hello"}, "params")
            published = PublicParams.from_dict(dict(reply["params"]))
            if published != self.params:
                raise ClusterError(
                    f"shard {link.index} at {link.host}:{link.port} serves "
                    f"different public parameters than this router"
                )
            if self.journal_dir is not None:
                # Resume sequencing above everything this shard has ever
                # seen: the journal's own watermark covers frames journaled
                # but never delivered, the shard's ``max_seq`` covers frames
                # delivered but checkpoint-cleared from the journal.
                health = await self._request_on_link(
                    link, {"type": "health"}, "health"
                )
                link.seq = max(link.seq, int(health.get("max_seq") or 0))
                if link.journal:
                    async with link.lock:
                        await self._replay_locked(link)
        await self._recover_membership()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sockname = self._server.sockets[0].getsockname()
        return str(sockname[0]), int(sockname[1])

    def _adopt_map(self, shard_map: ShardMap) -> None:
        """Resume from a persisted map: rebuild the link set it describes."""
        if self.supervisor is not None:
            def link_for(sid: int) -> _ShardLink:
                existing = self._links_by_id.get(sid)
                host, port = self.supervisor.endpoint_of(sid)
                if existing is not None and (existing.host, existing.port) \
                        == (host, port):
                    return existing
                return _ShardLink(
                    sid, host, port,
                    shm_name=(self.supervisor.shm_name(sid)
                              if self.transport == "shm" else None),
                )
        else:
            if list(shard_map.live_ids) != list(range(len(self.links))):
                raise ClusterError(
                    f"persisted map names shards "
                    f"{list(shard_map.live_ids)} but only "
                    f"{len(self.links)} positional endpoints were given "
                    f"and no supervisor is attached"
                )

            def link_for(sid: int) -> _ShardLink:
                return self._links_by_id[sid]
        self._links_by_id = {sid: link_for(sid)
                             for sid in shard_map.live_ids}
        self.links = [self._links_by_id[sid]
                      for sid in shard_map.active_ids]
        self.shard_map = shard_map
        self.partition = shard_map.newest_partition

    async def _recover_membership(self) -> None:
        """Finish (or undo) a membership transition cut short by a crash.

        The persisted map is the commit point: a ``joining`` shard never
        reached its activation commit, so it is rolled back (it owns no
        epochs and holds no state); a ``draining`` shard's routing rewrite
        *did* commit, so the drain is rolled forward through the journaled
        handoff.  Supervisor processes the map no longer knows (a crash
        between the removal commit and the reap) are retired.
        """
        if self._map_store is None:
            return
        for sid in list(self.shard_map.shard_ids):
            status = self.shard_map.status_of(sid)
            if status == "joining":
                self._journal_membership(
                    {"op": "add", "step": "rollback", "shard": sid}
                )
                await self._commit_map(self.shard_map.with_removed(sid))
                self._links_by_id.pop(sid, None)
                await self._retire_process(sid)
            elif status == "draining":
                await self._resume_drain(sid)
        if self.supervisor is not None:
            loop = asyncio.get_running_loop()
            known = set(self.shard_map.shard_ids)
            for sid in list(self.supervisor.active_ids()):
                if sid not in known:
                    await loop.run_in_executor(
                        None, self.supervisor.retire, sid
                    )

    async def serve_until_stopped(self) -> None:
        """Serve until a ``shutdown`` frame arrives or :meth:`stop` is called."""
        if self._server is None:
            raise RuntimeError("call start() first")
        await self._stopping.wait()
        await self._shutdown()

    async def stop(self) -> None:
        """Stop accepting clients and close the shard connections."""
        self._stopping.set()
        await self._shutdown()

    async def _shutdown(self) -> None:
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        for writer in list(self._connections):
            writer.close()
        await server.wait_closed()
        for link in self._links_by_id.values():
            await link.close()
            if link.disk is not None:
                link.disk.close()
        if self._membership_journal is not None:
            self._membership_journal.close()

    # ----- shard fan-out plumbing -----------------------------------------------------

    async def _request_on_link(
        self,
        link: _ShardLink,
        frame: Dict[str, object],
        expected: str,
    ) -> Dict[str, object]:
        """One request/reply on an (assumed healthy) shard connection.

        The whole exchange runs under ``request_timeout``, so a stalled
        shard surfaces as ``asyncio.TimeoutError`` (a recoverable
        ``_SHARD_FAILURES`` member) instead of hanging the fan-out.  An
        ``error`` reply is *also* recoverable: the shard service answers an
        error frame and closes on any malformed input, so an error here
        means the pooled connection is desynchronized — reconnect, replay,
        and a ``sync`` barrier restore it.
        """
        reader, writer = link.reader, link.writer
        if reader is None or writer is None:
            raise FrameError(f"shard {link.index} link is not connected")

        async def exchange() -> Optional[Dict[str, object]]:
            await write_frame(writer, frame)
            return await read_frame(reader)

        reply = await asyncio.wait_for(exchange(), self.request_timeout)
        if reply is None:
            raise FrameError(
                f"shard {link.index} closed the connection mid-request"
            )
        if reply.get("type") == "error":
            raise FrameError(
                f"shard {link.index} answered with an error: "
                f"{reply.get('error')}"
            )
        if reply.get("type") != expected:
            raise FrameError(
                f"shard {link.index}: expected a {expected!r} reply, got "
                f"{reply.get('type')!r}"
            )
        return reply

    async def _replay_locked(self, link: _ShardLink) -> None:
        """Replay the journal on a fresh connection (caller holds the lock).

        The journal holds the *stamped* payload bytes, so the shard sees an
        exact redelivery: frames at or below its sequence watermark are
        deduped, frames above it (or all of them, on a restarted shard
        whose watermark reset) are absorbed.  The closing ``sync`` barrier
        both confirms absorption and surfaces a second failure immediately.
        """
        writer = link.writer
        if writer is None:
            raise FrameError(f"shard {link.index} link is not connected")
        for payload, num_reports in link.journal:
            writer.write(frame_bytes(payload))
            self.stats.journal_replayed_frames += 1
            self.stats.journal_replayed_reports += num_reports
        await asyncio.wait_for(writer.drain(), self.request_timeout)
        await self._request_on_link(link, {"type": "sync"}, "synced")

    async def _reconnect_locked(self, link: _ShardLink) -> None:
        """Dial the shard afresh and bring it up to date (lock held)."""
        await asyncio.wait_for(link.connect(), self.connect_timeout)
        await self._replay_locked(link)

    async def _restart_locked(self, link: _ShardLink) -> None:
        """Supervisor-restart the shard from its snapshot, then replay.

        Caller holds ``link.lock`` and has checked ``self.supervisor``.
        The supervisor restores the shard's newest snapshot — the state at
        the last cleared journal barrier — and the replay re-forwards
        everything since, so the revived shard converges to the exact
        pre-fault integer state.
        """
        assert self.supervisor is not None
        self.stats.shard_restarts += 1
        loop = asyncio.get_running_loop()
        host, port = await loop.run_in_executor(
            None, self.supervisor.restart, link.index
        )
        link.host, link.port = host, int(port)
        if link.shm_name is not None:
            # The revived shard bound a fresh ring generation; dialing the
            # old name would hit the dead shard's unlinked segment.
            link.shm_name = self.supervisor.shm_name(link.index)
        await self._reconnect_locked(link)

    async def _recover_locked(
        self, link: _ShardLink, cause: BaseException
    ) -> None:
        """Bounded recovery ladder with seeded backoff (caller holds lock).

        Attempt 0 assumes a transport fault on a live shard: reconnect and
        replay.  Later attempts assume the shard itself is gone (or frozen
        — a SIGSTOPped shard accepts connections at the kernel backlog but
        never answers the replay's ``sync``) and escalate to a supervisor
        restart; without a supervisor they keep reconnecting.  Exhausting
        the ladder raises :class:`ShardUnavailable` — callers get a typed
        failure within ``recovery_attempts`` bounded-deadline attempts,
        never a hang.
        """
        last: BaseException = cause
        link.last_fault = repr(cause)
        for attempt in range(self.recovery_attempts):
            if attempt > 0:
                delay = min(
                    self.backoff_cap, self.backoff_base * 2 ** (attempt - 1)
                ) + float(self._backoff_rng.uniform(0.0, self.backoff_base))
                await asyncio.sleep(delay)
            try:
                if attempt == 0 or self.supervisor is None:
                    await self._reconnect_locked(link)
                else:
                    await self._restart_locked(link)
                return
            except _SHARD_FAILURES as exc:
                last = exc
                link.last_fault = repr(exc)
                await link.close()
        raise ShardUnavailable(
            f"shard {link.index} at {link.host}:{link.port} is unavailable "
            f"after {self.recovery_attempts} recovery attempts "
            f"(last fault: {link.last_fault})"
        ) from last

    async def _request(
        self,
        link: _ShardLink,
        frame: Dict[str, object],
        expected: str,
        revive: bool = True,
    ) -> Dict[str, object]:
        """Fan-out request with dead-shard detection and bounded recovery."""
        async with link.lock:
            if not revive:
                return await self._request_on_link(link, frame, expected)
            for _ in range(2):
                try:
                    return await self._request_on_link(link, frame, expected)
                except _SHARD_FAILURES as exc:
                    await self._recover_locked(link, exc)
            return await self._request_on_link(link, frame, expected)

    async def _fan_out(self, coros: Iterable[Awaitable[Dict[str, object]]]
                       ) -> List[Dict[str, object]]:
        """Gather shard requests without cancelling the stragglers.

        A plain ``gather`` cancels in-flight requests when one fails, which
        would abandon pooled connections mid-reply and desynchronize them;
        here every request runs to completion and the first failure is
        raised only afterwards.
        """
        results = await asyncio.gather(*coros, return_exceptions=True)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return list(results)

    async def _checkpoint_locked(self, link: _ShardLink) -> str:
        """Snapshot one shard and clear its journal (caller holds the lock).

        The shard connection is ordered, so every journaled frame reaches
        the shard before the ``snapshot`` frame; the acknowledged snapshot
        therefore covers the whole journal, and clearing it is exact.
        """
        reply = await self._request_on_link(
            link, {"type": "snapshot"}, "snapshot_written"
        )
        link.journal.clear()
        link.journal_reports = 0
        if link.disk is not None:
            # The on-disk mirror drops its frames too, but keeps the
            # sequence watermark as a barrier entry so a restarted router
            # never re-stamps below what the shard has already seen.
            link.disk.barrier(link.seq)
        self.stats.checkpoints += 1
        return str(reply["path"])

    def _is_routable(self, link: _ShardLink) -> bool:
        """True while the current map still sends new frames to ``link``."""
        try:
            status = self.shard_map.status_of(link.index)
        except ShardMapError:
            return False
        return (status == "active"
                and self._links_by_id.get(link.index) is link)

    async def _forward_routed(
        self,
        payload: bytes,
        num_reports: int,
        route: Optional[int],
        epoch: int,
        message: Optional[Dict[str, object]] = None,
    ) -> None:
        """Pick a shard under the current map and forward one payload.

        Membership can change between picking a shard and acquiring its
        link lock (a drain's routing rewrite runs while a forward waits on
        the draining shard's lock), so routability is re-checked *under*
        the lock and the frame re-picked against the newer map — a frame
        can never be sent to a shard whose state was already handed off.
        """
        if epoch > self._newest_epoch:
            self._newest_epoch = epoch
        if route is None:
            self.stats.frames_unrouted += 1
        for _ in range(8):
            link = self._pick_shard(route, epoch)
            async with link.lock:
                if not self._is_routable(link):
                    continue
                await self._forward_locked(link, payload, num_reports,
                                           message)
                break
        else:  # pragma: no cover - needs 8 map changes in one forward
            raise ShardUnavailable(
                "no routable shard: membership kept changing under this "
                "frame"
            )
        self.stats.frames_forwarded += 1
        self.stats.reports_forwarded += num_reports

    async def _forward_locked(
        self,
        link: _ShardLink,
        payload: bytes,
        num_reports: int,
        message: Optional[Dict[str, object]] = None,
    ) -> None:
        """Stamp, journal, and forward one ``reports`` payload to its shard.

        The payload is stamped with the link's next delivery sequence
        number *before* journaling — binary frames in place via
        :func:`~repro.protocol.binary.stamp_sequence` (an 8-byte splice, no
        column decode), JSON frames by setting ``"seq"`` on the parsed
        ``message`` the dispatcher already has.  Journaling the stamped
        bytes is what makes replay-after-fault idempotent (§7.1): the shard
        dedupes redelivered frames on the sequence number.  Caller holds
        ``link.lock``.
        """
        link.seq += 1
        if message is None:
            payload = stamp_sequence(payload, link.seq)
        else:
            message["seq"] = link.seq
            payload = json.dumps(
                message, separators=(",", ":")
            ).encode("utf-8")
        link.journal.append((payload, num_reports))
        link.journal_reports += num_reports
        link.reports_forwarded += num_reports
        if link.disk is not None:
            link.disk.append(payload, num_reports, link.seq)
        try:
            writer = link.writer
            if writer is None:
                raise FrameError(
                    f"shard {link.index} link is not connected"
                )
            writer.write(frame_bytes(payload))
            await asyncio.wait_for(writer.drain(), self.request_timeout)
        except _SHARD_FAILURES as exc:
            # The failed frame is already journaled, so recovery's
            # replay delivers it along with everything else pending.
            await self._recover_locked(link, exc)
        if link.journal_reports >= self.checkpoint_reports:
            try:
                await self._checkpoint_locked(link)
            except _SHARD_FAILURES as exc:
                await self._recover_locked(link, exc)
                await self._checkpoint_locked(link)

    # ----- client connection handling -------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.stats.connections_total += 1
        self._connections.add(writer)
        try:
            while True:
                try:
                    payload = await read_frame_payload(reader)
                except FrameError as exc:
                    await write_frame(writer, {"type": "error", "error": str(exc)})
                    break
                if payload is None:
                    break
                if not await self._dispatch(payload, writer):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _reject(self, reason: str) -> None:
        self.stats.frames_rejected += 1
        self.stats.last_rejection = reason

    def _pick_shard(self, route: Optional[int], epoch: int) -> _ShardLink:
        if route is not None:
            return self._links_by_id[self.shard_map.shard_for(route, epoch)]
        # No routing key: any assignment is exact (merge is an integer
        # sum); round-robin over the active shards keeps them balanced.
        link = self.links[self._round_robin % self.num_shards]
        self._round_robin += 1
        return link

    async def _dispatch(self, payload: bytes, writer: asyncio.StreamWriter) -> bool:
        """Handle one client frame; returns ``False`` to close the connection."""
        # Reports frames: peek the routing header and forward the payload
        # bytes verbatim — fire-and-forget, like the single-server path.
        if is_binary_payload(payload):
            try:
                header = peek_reports_header(payload)
            except BinaryFormatError as exc:
                self._reject(str(exc))
                return True
            if "binary" not in self.wire_formats:
                self._reject(
                    f"'binary' reports frames are disabled on this router "
                    f"(accepted: {self.wire_formats})"
                )
                return True
            if header["protocol"] != self.params.protocol:
                self._reject(
                    f"cannot route {header['protocol']!r} reports through a "
                    f"{self.params.protocol!r} cluster"
                )
                return True
            route = header["route"]
            await self._forward_routed(
                payload, int(header["num_reports"]),
                int(route) if route is not None else None,
                int(header["epoch"]),
            )
            return True
        try:
            message = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await write_frame(
                writer, {"type": "error", "error": f"invalid JSON in frame: {exc}"}
            )
            return False
        if not isinstance(message, dict):
            await write_frame(
                writer,
                {"type": "error", "error": "frame payload must be a JSON object"},
            )
            return False
        if message.get("type") == "reports":
            batch = message.get("batch")
            num_reports = (
                int(batch.get("num_reports", 0)) if isinstance(batch, dict) else 0
            )
            if "json" not in self.wire_formats:
                self._reject(
                    f"'json' reports frames are disabled on this router "
                    f"(accepted: {self.wire_formats})"
                )
                return True
            protocol = batch.get("protocol") if isinstance(batch, dict) else None
            if protocol != self.params.protocol:
                self._reject(
                    f"cannot route {protocol!r} reports through a "
                    f"{self.params.protocol!r} cluster"
                )
                return True
            route = message.get("route")
            epoch = message.get("epoch")
            await self._forward_routed(
                payload, num_reports,
                int(route) if route is not None else None,
                int(epoch) if epoch is not None else 0,
                message=message,
            )
            return True
        try:
            return await self._dispatch_control(message, writer)
        except Exception as exc:  # noqa: BLE001 - reported to the peer
            reply: Dict[str, object] = {"type": "error", "error": str(exc)}
            if isinstance(exc, ShardUnavailable):
                # Typed so clients can tell "shard down mid-query" apart
                # from a malformed request (docs/wire-protocol.md §7).
                reply["code"] = "shard_unavailable"
            await write_frame(writer, reply)
            return True

    # ----- control frames -------------------------------------------------------------

    async def _dispatch_control(
        self,
        message: Dict[str, object],
        writer: asyncio.StreamWriter,
    ) -> bool:
        kind = message.get("type")
        if kind == "hello":
            await write_frame(
                writer,
                {
                    "type": "params",
                    "server": ROUTER_ID,
                    "params": self.params.to_dict(),
                    "window": self.window,
                    "wire_formats": list(self.wire_formats),
                    "cluster": {
                        "num_shards": self.num_shards,
                        "partition": self.partition.to_dict(),
                        "map_version": self.shard_map.version,
                        "shards": list(self.shard_map.active_ids),
                    },
                },
            )
            return True
        if kind == "sync":
            # Merged reads serialize against membership transitions: a
            # sync total must never miss a shard whose state is mid-handoff.
            async with self._membership_lock:
                replies = await self._fan_out(
                    self._request(link, {"type": "sync"}, "synced")
                    for link in self.links
                )
            await write_frame(
                writer,
                {
                    "type": "synced",
                    "num_reports": sum(int(r["num_reports"]) for r in replies),
                },
            )
            return True
        if kind == "query":
            items = [int(x) for x in message.get("items", [])]
            window = message.get("window")
            window = int(window) if window is not None else None
            async with self._membership_lock:
                merged, epochs = await self._merged_aggregator(window, None)
            if merged.num_reports == 0:
                estimates = [0.0] * len(items)
            else:
                estimator = merged.finalize()
                estimates = [float(a) for a in estimator.estimate_many(items)]
            self.stats.queries_answered += 1
            await write_frame(
                writer,
                {
                    "type": "estimates",
                    "items": items,
                    "estimates": estimates,
                    "num_reports": int(merged.num_reports),
                    "epochs": epochs,
                },
            )
            return True
        if kind == "state":
            # Cluster-level state pull: merge the shards' packed states and
            # re-pack the merged exact-integer state — the same frame a
            # shard answers, so clusters compose (a router can front
            # routers) and protocols whose finalized estimator is not
            # item-queryable (RAPPOR) still get exact cluster reads.
            window = message.get("window")
            window = int(window) if window is not None else None
            min_epoch = message.get("min_epoch")
            min_epoch = int(min_epoch) if min_epoch is not None else None
            if window is not None and min_epoch is not None:
                raise ValueError("window and min_epoch are mutually exclusive")
            async with self._membership_lock:
                merged, epochs = await self._merged_aggregator(window,
                                                               min_epoch)
            blob = pack_state(child_state(merged))
            self.stats.queries_answered += 1
            await write_frame(
                writer,
                {
                    "type": "state",
                    "protocol": self.params.protocol,
                    "epochs": epochs,
                    "num_reports": int(merged.num_reports),
                    "state": base64.b64encode(blob).decode("ascii"),
                },
            )
            return True
        if kind == "stats":
            async with self._membership_lock:
                merged_stats = await self._merged_stats()
            await write_frame(writer, merged_stats)
            return True
        if kind == "health":
            await write_frame(writer, await self._health())
            return True
        if kind == "shard_map":
            await write_frame(
                writer,
                {
                    "type": "shard_map",
                    "map": self.shard_map.to_dict(),
                    "newest_epoch": self._newest_epoch,
                },
            )
            return True
        if kind == "add_shard":
            await write_frame(writer, await self.add_shard())
            return True
        if kind == "drain_shard":
            shard = message.get("shard")
            if shard is None:
                raise ValueError("drain_shard needs a 'shard' id")
            target = message.get("target")
            await write_frame(
                writer,
                await self.drain_shard(
                    int(shard),
                    int(target) if target is not None else None,
                ),
            )
            return True
        if kind == "rolling_restart":
            await write_frame(writer, await self.rolling_restart())
            return True
        if kind == "snapshot":
            async with self._membership_lock:
                paths = []
                for link in self.links:
                    async with link.lock:
                        try:
                            paths.append(await self._checkpoint_locked(link))
                        except _SHARD_FAILURES as exc:
                            await self._recover_locked(link, exc)
                            paths.append(await self._checkpoint_locked(link))
                num_reports = sum(
                    int(r["num_reports"])
                    for r in await self._fan_out(
                        self._request(link, {"type": "sync"}, "synced")
                        for link in self.links
                    )
                )
            await write_frame(
                writer,
                {
                    "type": "snapshot_written",
                    "path": (
                        str(self.supervisor.base_dir)
                        if self.supervisor is not None
                        else paths[0]
                    ),
                    "paths": paths,
                    "num_reports": num_reports,
                },
            )
            return True
        if kind == "shutdown":
            total = 0
            async with self._membership_lock:
                links = list(self.links)
            for link in links:
                try:
                    reply = await self._request(
                        link, {"type": "shutdown"}, "bye", revive=False
                    )
                    total += int(reply["num_reports"])
                except (*_SHARD_FAILURES, ClusterError):
                    pass  # already dead; the supervisor reaps it below
            if self.supervisor is not None:
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, self.supervisor.stop)
            await write_frame(writer, {"type": "bye", "num_reports": total})
            self._stopping.set()
            return False
        raise ValueError(f"unknown frame type {kind!r}")

    # ----- merged queries -------------------------------------------------------------

    async def _pull_states(
        self, min_epoch: Optional[int]
    ) -> List[Dict[str, object]]:
        frame: Dict[str, object] = {"type": "state"}
        if min_epoch is not None:
            frame["min_epoch"] = int(min_epoch)
        return await self._fan_out(
            self._request(link, frame, "state") for link in self.links
        )

    async def _pull_windowed(self, window: int) -> List[Dict[str, object]]:
        """Resolve a relative window to one absolute cutoff, then pull.

        The cutoff and the pulled states must describe the same moment, or
        a window-``w`` reply could merge epochs outside the window (a
        single server computes both atomically).  So: drain every shard
        first (the ``sync`` barrier — per-connection ordering already put
        this client's prior frames ahead of it), resolve the global newest
        epoch from post-drain stats, pull with the absolute cutoff, and —
        if a concurrent sender landed a brand-new epoch in between, which
        the pulled epochs expose — re-resolve against the newer state.
        """
        if window < 1:
            raise ValueError("query window must be >= 1")
        await self._fan_out(
            self._request(link, {"type": "sync"}, "synced")
            for link in self.links
        )
        pulls: List[Dict[str, object]] = []
        for _ in range(3):
            replies = await self._fan_out(
                self._request(link, {"type": "stats"}, "stats")
                for link in self.links
            )
            newest = [max(r["epochs"]) for r in replies if r["epochs"]]
            cutoff = max(newest) - window if newest else None
            pulls = await self._pull_states(cutoff)
            top = max(
                (int(e) for pull in pulls for e in pull["epochs"]),
                default=None,
            )
            if top is None or (newest and top <= max(newest)):
                return pulls
        return pulls

    async def _merged_aggregator(
        self,
        window: Optional[int],
        min_epoch: Optional[int],
    ) -> Tuple[ServerAggregator, List[int]]:
        """Pull every shard's packed state and merge exactly.

        The shard-side ``state`` handler drains its ingestion queue first,
        and each shard connection delivers frames in order, so the pulled
        states reflect every frame this router forwarded before the query.
        A relative ``window`` is resolved to one absolute ``min_epoch``
        cutoff against the *global* newest epoch, keeping the selection
        identical to a single server that held all shards' epochs.
        """
        if window is not None:
            pulls = await self._pull_windowed(window)
        else:
            pulls = await self._pull_states(min_epoch)
        shards = []
        for pull in pulls:
            aggregator = self.params.make_aggregator()
            state = unpack_state(base64.b64decode(str(pull["state"])))
            load_child_state(aggregator, state)
            shards.append(aggregator)
        merged = merge_aggregators(shards)
        epochs = sorted({int(e) for pull in pulls for e in pull["epochs"]})
        return merged, epochs

    async def _merged_stats(self) -> Dict[str, object]:
        """Sum the shard counters; attach per-shard and router detail."""
        replies = await self._fan_out(
            self._request(link, {"type": "stats"}, "stats") for link in self.links
        )
        summed = {
            key: sum(int(r.get(key, 0)) for r in replies)
            for key in (
                "batches_received",
                "reports_received",
                "reports_absorbed",
                "reports_rejected",
                "queries_answered",
                "snapshots_written",
                "connections_total",
                "state_size",
                "queue_depth",
            )
        }
        summed["drain_s"] = round(
            sum(float(r.get("drain_s", 0.0)) for r in replies), 6
        )
        summed.update(
            {
                "type": "stats",
                "server": ROUTER_ID,
                "protocol": self.params.protocol,
                "window": self.window,
                "epochs": sorted(
                    {int(e) for r in replies for e in r.get("epochs", [])}
                ),
                "router": self.stats.to_dict(),
                "shards": [
                    {
                        "shard": link.index,
                        "host": link.host,
                        "port": link.port,
                        "reports_absorbed": int(r.get("reports_absorbed", 0)),
                        "journal_reports": link.journal_reports,
                    }
                    for link, r in zip(self.links, replies, strict=True)
                ],
            }
        )
        return summed

    async def _health(self) -> Dict[str, object]:
        """Probe every shard without draining or recovering.

        Health is a *read* on the cluster's failure state, so an
        unreachable shard is reported (``status: "unreachable"``) rather
        than recovered — recovery stays on the ingest/query paths where it
        preserves exactness.  The dead link is closed so the next real
        request hits the not-connected guard and recovers normally.
        """
        degraded = False
        shards: List[Dict[str, object]] = []
        for link in self.links:
            entry: Dict[str, object] = {
                "shard": link.index,
                "host": link.host,
                "port": link.port,
                "membership": self.shard_map.status_of(link.index),
                "journal_frames": len(link.journal),
                "journal_reports": link.journal_reports,
                "reports_forwarded": link.reports_forwarded,
                "seq": link.seq,
                "last_fault": link.last_fault,
            }
            if self.supervisor is not None:
                entry["restarts"] = int(
                    self.supervisor.shards[link.index].restarts
                )
            async with link.lock:
                try:
                    reply = await self._request_on_link(
                        link, {"type": "health"}, "health"
                    )
                except _SHARD_FAILURES as exc:
                    degraded = True
                    link.last_fault = repr(exc)
                    entry["last_fault"] = link.last_fault
                    entry["status"] = "unreachable"
                    entry["error"] = str(exc)
                    await link.close()
                else:
                    entry["status"] = str(reply.get("status", "ok"))
                    for key in (
                        "queue_depth", "epochs", "num_reports", "max_seq"
                    ):
                        if key in reply:
                            entry[key] = reply[key]
            shards.append(entry)
        return {
            "type": "health",
            "server": ROUTER_ID,
            "status": "degraded" if degraded else "ok",
            "num_shards": self.num_shards,
            "map_version": self.shard_map.version,
            "shards": shards,
        }

    # ----- membership transitions -----------------------------------------------------

    def _journal_membership(self, entry: Dict[str, object]) -> None:
        """Durably record one membership state-machine step (audit + resume).

        Synchronous on purpose: membership transitions are rare operator
        actions, and the fsync *is* the durability point — the step must be
        on disk before the transition takes it.
        """
        if self._membership_journal is not None:
            self._membership_journal.append(dict(entry))

    async def _last_membership(
        self, op: str, shard: int
    ) -> Optional[Dict[str, object]]:
        """Newest journaled ``begin`` entry for ``op`` on ``shard``."""
        if self._membership_journal is None:
            return None
        loop = asyncio.get_running_loop()
        entries = await loop.run_in_executor(
            None, self._membership_journal.entries
        )
        for entry in reversed(entries):
            if (entry.get("op") == op and entry.get("shard") == shard
                    and entry.get("step") == "begin"):
                return entry
        return None

    async def _commit_map(self, new_map: ShardMap) -> None:
        """Persist then adopt a new shard map — the transition commit point.

        The atomic, fsynced map write happens *before* the in-memory swap:
        a crash leaves either the old committed map or the new one, never a
        router routing on a map that disk does not know.
        """
        if self._map_store is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._map_store.save, new_map)
        self.shard_map = new_map
        self.partition = new_map.newest_partition

    async def _retire_process(self, sid: int) -> None:
        """Reap and tombstone a shard process (idempotent, may be absent)."""
        if self.supervisor is None:
            return
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.retire, sid)

    def _handoff_path(self, hid: int) -> Optional[Path]:
        if self.journal_dir is None:
            return None
        return self.journal_dir / f"handoff-{hid:06d}.json"

    async def add_shard(self) -> Dict[str, object]:
        """Grow the cluster by one shard at an epoch cut (``§7.4``).

        The new shard is activated at ``cut = max(newest_epoch + 1,
        last_cut + 1)``: every epoch the router has ever routed stays with
        its old owner, the new shard takes only epochs nobody has touched —
        so no state moves and nothing can double-count.  Steps are
        journaled and the map write is the commit; a crash before the
        activation commit rolls the joining shard back on the next start.
        """
        if self.supervisor is None:
            raise ClusterError("add_shard needs a supervisor (it spawns "
                               "the new shard process)")
        loop = asyncio.get_running_loop()
        async with self._membership_lock:
            new_id = self.shard_map.next_id
            self._journal_membership(
                {"op": "add", "step": "begin", "shard": new_id}
            )
            await self._commit_map(self.shard_map.with_joining(new_id))
            link: Optional[_ShardLink] = None
            try:
                spawned, host, port = await loop.run_in_executor(
                    None, self.supervisor.add_shard
                )
                if spawned != new_id:
                    raise ClusterError(
                        f"supervisor spawned shard {spawned} but the map "
                        f"allocated id {new_id}"
                    )
                link = _ShardLink(
                    new_id, host, port,
                    shm_name=(self.supervisor.shm_name(new_id)
                              if self.transport == "shm" else None),
                )
                if self.journal_dir is not None:
                    link.disk = FrameJournal(
                        self._frame_journal_path(new_id), fsync=False
                    )
                    # ids are never reused, so any file here is stale debris
                    await loop.run_in_executor(None, link.disk.delete)
                await asyncio.wait_for(link.connect(), self.connect_timeout)
                reply = await self._request_on_link(
                    link, {"type": "hello"}, "params"
                )
                published = PublicParams.from_dict(dict(reply["params"]))
                if published != self.params:
                    raise ClusterError(
                        f"new shard {new_id} serves different public "
                        f"parameters than this router"
                    )
                last_cut = self.shard_map.entries[-1].cut_epoch
                cut = max(
                    self._newest_epoch + 1,
                    (last_cut + 1) if last_cut is not None else 0,
                )
                partition = ShardPartition.sample(
                    len(self.shard_map.active_ids) + 1, self._backoff_rng
                )
                self._journal_membership(
                    {"op": "add", "step": "activate", "shard": new_id,
                     "cut": cut}
                )
                # Register the link before the commit: the instant the new
                # map is adopted, a concurrent forward may route to new_id.
                self._links_by_id[new_id] = link
                await self._commit_map(
                    self.shard_map.with_activated(new_id, cut, partition)
                )
                self.links = [self._links_by_id[sid]
                              for sid in self.shard_map.active_ids]
                self._journal_membership(
                    {"op": "add", "step": "done", "shard": new_id}
                )
                return {
                    "type": "shard_added",
                    "shard": new_id,
                    "host": host,
                    "port": port,
                    "cut_epoch": cut,
                    "map_version": self.shard_map.version,
                }
            except Exception:
                # Roll back: a joining shard owns no epochs and holds no
                # state, so undoing it is pure bookkeeping.
                self._journal_membership(
                    {"op": "add", "step": "rollback", "shard": new_id}
                )
                if self.shard_map.status_of(new_id) == "joining":
                    await self._commit_map(
                        self.shard_map.with_removed(new_id)
                    )
                self._links_by_id.pop(new_id, None)
                if link is not None:
                    await link.close()
                await self._retire_process(new_id)
                raise

    async def drain_shard(
        self, shard: int, target: Optional[int] = None
    ) -> Dict[str, object]:
        """Drain one shard: reroute, hand its exact state off, then reap.

        The routing rewrite commit is the point of no return — from then on
        no new frame can reach the draining shard, and a crash anywhere
        later rolls the drain *forward* on the next start.  The handoff
        itself is idempotent end to end: the drained shard re-answers
        ``handoff`` with the same packed state (it accepts no reports once
        draining), the pulled blob is persisted before the push, and the
        survivor dedups ``absorb_state`` on the handoff id.
        """
        async with self._membership_lock:
            sid = int(shard)
            if sid in self.shard_map.retired:
                # A retried drain whose first attempt already finished
                # (the client timed out mid-transition): answer success.
                return {
                    "type": "drained",
                    "shard": sid,
                    "target": None,
                    "handoff": None,
                    "num_reports": 0,
                    "already": True,
                    "map_version": self.shard_map.version,
                }
            status = self.shard_map.status_of(sid)
            if status == "draining":
                return await self._resume_drain(sid)
            if status != "active":
                raise ClusterError(f"shard {sid} is {status}, not active")
            active = list(self.shard_map.active_ids)
            if target is None:
                target = next(i for i in active if i != sid)
            target = int(target)
            if target == sid or target not in active:
                raise ClusterError(
                    f"drain target must be a different active shard, "
                    f"got {target} (active: {active})"
                )
            # The handoff id is the version of the drained-routing map —
            # unique per transition, known before the commit.
            hid = self.shard_map.version + 1
            self._journal_membership(
                {"op": "drain", "step": "begin", "shard": sid,
                 "target": target, "handoff": hid}
            )
            self._pending_drains[sid] = (target, hid)
            await self._commit_map(
                self.shard_map.with_drained_routing(sid, target)
            )
            # Out of the fan-out set (merged reads would double-count its
            # reports once absorbed), still reachable by id for the pull.
            self.links = [self._links_by_id[s]
                          for s in self.shard_map.active_ids]
            return await self._drain_locked(sid, target, hid)

    async def _resume_drain(self, sid: int) -> Dict[str, object]:
        """Roll a committed drain forward (crash resume or operator retry)."""
        pending = self._pending_drains.get(sid)
        if pending is not None:
            target, hid = pending
        else:
            begin = await self._last_membership("drain", sid)
            target = (int(begin["target"])
                      if begin is not None and "target" in begin
                      else min(self.shard_map.active_ids))
            hid = (int(begin["handoff"])
                   if begin is not None and "handoff" in begin
                   else self.shard_map.version)
        return await self._drain_locked(sid, target, hid)

    async def _drain_locked(
        self, sid: int, target: int, hid: int
    ) -> Dict[str, object]:
        """Pull → persist → absorb → checkpoint → remove → reap (resumable).

        Caller holds the membership lock (or runs before serving starts).
        Every step is safe to repeat: the pull re-answers identically, the
        persisted blob write is atomic, the absorb dedups on ``hid``, the
        checkpoint is a plain barrier, and the removal commit + reap are
        idempotent.
        """
        loop = asyncio.get_running_loop()
        link = self._links_by_id.get(sid)
        target_link = self._links_by_id[target]
        blob_path = self._handoff_path(hid)
        payload: Optional[Dict[str, object]] = None
        if blob_path is not None:
            try:
                payload = await loop.run_in_executor(
                    None, read_snapshot, blob_path
                )
            except (OSError, ValueError):
                payload = None  # not pulled yet (or torn): pull fresh
        if payload is None:
            if link is None:
                raise ClusterError(
                    f"shard {sid} is draining but its link and persisted "
                    f"handoff {hid} are both gone"
                )
            reply = await self._request(
                link, {"type": "handoff", "handoff": hid}, "handoff_state"
            )
            payload = {
                "handoff": hid,
                "shard": sid,
                "target": target,
                "num_reports": int(reply["num_reports"]),
                "state": str(reply["state"]),
            }
            if blob_path is not None:
                await loop.run_in_executor(
                    None, write_snapshot, blob_path, payload
                )
            self._journal_membership(
                {"op": "drain", "step": "pulled", "shard": sid,
                 "handoff": hid,
                 "num_reports": int(payload["num_reports"])}
            )
        await self._request(
            target_link,
            {"type": "absorb_state", "handoff": hid,
             "state": str(payload["state"])},
            "absorbed",
        )
        # Checkpoint the survivor immediately: the absorbed state must not
        # live only in its memory once the source shard is reaped.
        async with target_link.lock:
            try:
                await self._checkpoint_locked(target_link)
            except _SHARD_FAILURES as exc:
                await self._recover_locked(target_link, exc)
                await self._checkpoint_locked(target_link)
        self._journal_membership(
            {"op": "drain", "step": "merged", "shard": sid, "handoff": hid}
        )
        await self._commit_map(self.shard_map.with_removed(sid))
        await self._retire_process(sid)
        if link is not None:
            await link.close()
            if link.disk is not None:
                await loop.run_in_executor(None, link.disk.delete)
        self._links_by_id.pop(sid, None)
        self.links = [self._links_by_id[s]
                      for s in self.shard_map.active_ids]
        if blob_path is not None:
            await loop.run_in_executor(
                None, lambda: blob_path.unlink(missing_ok=True)
            )
        self._journal_membership(
            {"op": "drain", "step": "done", "shard": sid, "handoff": hid}
        )
        self._pending_drains.pop(sid, None)
        return {
            "type": "drained",
            "shard": sid,
            "target": target,
            "handoff": hid,
            "num_reports": int(payload["num_reports"]),
            "map_version": self.shard_map.version,
        }

    async def rolling_restart(self) -> Dict[str, object]:
        """Checkpoint-restart every shard in sequence, zero data loss.

        Each shard is checkpointed (journal barrier) and restarted behind
        its own link lock, so forwards to the *other* shards continue
        throughout; forwards to the restarting shard simply queue on its
        lock and proceed after the replayed ``sync`` barrier.  Membership
        does not change — the journal entries are audit trail, and a crash
        mid-sequence needs no recovery beyond the normal per-link ladder.
        """
        if self.supervisor is None:
            raise ClusterError("rolling_restart needs a supervisor")
        restarted: List[int] = []
        async with self._membership_lock:
            for link in list(self.links):
                self._journal_membership(
                    {"op": "restart", "step": "begin", "shard": link.index}
                )
                async with link.lock:
                    try:
                        await self._checkpoint_locked(link)
                    except _SHARD_FAILURES as exc:
                        await self._recover_locked(link, exc)
                        await self._checkpoint_locked(link)
                    await self._restart_locked(link)
                self._journal_membership(
                    {"op": "restart", "step": "done", "shard": link.index}
                )
                restarted.append(link.index)
        return {
            "type": "restarted",
            "shards": restarted,
            "map_version": self.shard_map.version,
        }
