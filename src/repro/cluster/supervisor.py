"""Shard process supervision for the sharded serving tier.

A cluster (``docs/architecture.md``) is one router process in front of N
*shard* servers, where every shard is a complete, unmodified
:class:`~repro.server.service.AggregationServer` — same frame protocol, same
snapshot store, same exact-integer aggregator state.  This module owns the
process-management half of that picture:

* :func:`spawn_server_process` starts one ``python -m repro.cli`` server
  subprocess (``serve`` or ``serve-cluster``) and blocks until its
  parse-friendly ``LISTENING host port`` readiness line appears — the same
  contract ``repro.cli load-test`` and the benchmarks rely on.
* :class:`ClusterSupervisor` spawns the N shards of one cluster, each with
  its own snapshot directory under a shared base directory, polls them for
  liveness, and — the crash-recovery half of the router's failure story —
  **restarts a dead shard from its newest snapshot**.  The router then
  replays its journal of unacknowledged frames, so the revived shard
  converges to exactly the state it would have had without the crash (see
  :mod:`repro.cluster.router`).

The supervisor is deliberately synchronous (plain ``subprocess``): restarts
are rare and take a server start-up, so the router calls it through
``run_in_executor`` rather than complicating shard management with asyncio.
"""

from __future__ import annotations

import json
import os
import select
import signal
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.server.snapshot import SnapshotStore

__all__ = ["ClusterSupervisor", "ShardHandle", "spawn_server_process"]


#: how long a spawned server may take to print its ``LISTENING`` line
STARTUP_TIMEOUT = 30.0


def spawn_server_process(
    verb: str = "serve",
    params_file: Optional[Union[str, Path]] = None,
    extra_args: Sequence[str] = (),
    startup_timeout: float = STARTUP_TIMEOUT,
) -> Tuple[subprocess.Popen, str, int]:
    """Start a ``repro.cli`` server subprocess; returns ``(proc, host, port)``.

    The child gets ``PYTHONPATH`` pointing at this package's source tree, so
    it works both installed and from a checkout.  The child binds port 0 and
    announces the actual port on its ``LISTENING`` line, which this function
    waits for — at most ``startup_timeout`` seconds (a wedged child is
    killed and ``TimeoutError`` raised; the old behavior blocked forever on
    a child that never printed).  On any other first line the child is
    terminated and a ``RuntimeError`` carries the line for diagnosis.
    """
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-m", "repro.cli", verb]
    if params_file is not None:
        argv += ["--params-file", str(params_file)]
    argv += ["--host", "127.0.0.1", "--port", "0", "--quiet", *extra_args]
    proc = subprocess.Popen(argv, stdout=subprocess.PIPE, text=True, env=env)
    ready, _, _ = select.select([proc.stdout], [], [], startup_timeout)
    if not ready:
        proc.kill()
        proc.wait(timeout=10)
        proc.stdout.close()
        raise TimeoutError(f"server did not print its LISTENING line within "
                           f"{startup_timeout}s")
    line = proc.stdout.readline()
    if not line.startswith("LISTENING "):
        proc.terminate()
        proc.wait(timeout=10)
        proc.stdout.close()
        raise RuntimeError(f"server failed to start (got {line!r})")
    _, host, port = line.split()
    return proc, host, int(port)


@dataclass
class ShardHandle:
    """One supervised shard: its subprocess, endpoint, and snapshot home.

    A *retired* handle is the tombstone of a drained shard: its process is
    reaped and its slot in :attr:`ClusterSupervisor.shards` is kept so
    shard ids stay stable for the life of the cluster (ids are never
    reused — the shard map and the journals refer to them by id).  On a
    cold resume of a previously grown-and-drained cluster the handle may
    be a pure placeholder with no process at all (``proc is None``).
    """

    index: int
    snapshot_dir: Path
    proc: Optional[subprocess.Popen]
    host: str
    port: int
    restarts: int = 0
    retired: bool = False

    @property
    def alive(self) -> bool:
        return (not self.retired and self.proc is not None
                and self.proc.poll() is None)


class ClusterSupervisor:
    """Spawn, monitor, and snapshot-restart the N shard servers of a cluster.

    Parameters
    ----------
    params:
        Public parameters every shard serves (written once to
        ``base_dir/params.json``; restarts without a usable snapshot reuse
        it, so a shard always comes back with the exact same parameters).
    num_shards:
        Number of shard servers.
    base_dir:
        Home of the cluster on disk: the shared params file plus one
        ``shard-K`` snapshot directory per shard.
    window / wire_format / snapshot_format:
        Passed through to every shard's ``serve`` invocation.
    transport:
        ``"tcp"`` (default) or ``"shm"``.  With ``"shm"`` every spawned
        shard *additionally* binds a same-host shared-memory accept
        endpoint (:mod:`repro.transport`) under a supervisor-chosen ring
        name — :meth:`shm_name` — which the router dials for its
        shard links instead of TCP loopback.  The TCP endpoint (and its
        ``LISTENING`` readiness line) is kept either way.
    """

    #: distinguishes concurrent supervisors inside one process, so their
    #: shm control-segment names can never collide
    _instances = 0

    def __init__(
        self,
        params,
        num_shards: int,
        base_dir: Union[str, Path],
        *,
        window: Optional[int] = None,
        wire_format: str = "both",
        snapshot_format: str = "json",
        transport: str = "tcp",
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if transport not in ("tcp", "shm"):
            raise ValueError(f"transport must be 'tcp' or 'shm', "
                             f"got {transport!r}")
        self.params = params
        self.num_shards = int(num_shards)
        self.base_dir = Path(base_dir)
        self.window = window
        self.wire_format = wire_format
        self.snapshot_format = snapshot_format
        self.transport = transport
        ClusterSupervisor._instances += 1
        #: shm ring-name prefix: unique per (process, supervisor) so stale
        #: segments from another run can never be dialed by mistake
        self._shm_prefix = (f"repro-{os.getpid()}"
                            f"-c{ClusterSupervisor._instances}")
        self.shards: List[ShardHandle] = []
        self.base_dir.mkdir(parents=True, exist_ok=True)
        self.params_file = self.base_dir / "params.json"
        self.params_file.write_text(json.dumps(params.to_dict()))

    def shm_name(self, index: int) -> Optional[str]:
        """Current shm control-segment name of one shard (``None`` on tcp).

        The name carries the shard's restart generation, so a restarted
        shard binds a *fresh* segment and the router can never dial the
        leaked ring of its dead predecessor.
        """
        if self.transport != "shm":
            return None
        restarts = (self.shards[index].restarts
                    if index < len(self.shards) else 0)
        return f"{self._shm_prefix}-s{index}g{restarts}"

    def _serve_args(self, index: int, shard_dir: Path) -> List[str]:
        args = [
            "--snapshot-dir",
            str(shard_dir),
            "--snapshot-format",
            self.snapshot_format,
            "--wire-format",
            self.wire_format,
        ]
        if self.window is not None:
            args += ["--window", str(self.window)]
        if self.transport == "shm":
            args += ["--transport", "shm",
                     "--shm-name", str(self.shm_name(index))]
        return args

    # ----- lifecycle ------------------------------------------------------------------

    def _spawn(self, index: int) -> Tuple[subprocess.Popen, str, int]:
        """Spawn one shard server, restoring its newest *valid* snapshot.

        A fresh shard directory has no snapshots and starts empty; on a
        restart (or a cold cluster resume) the shard comes back at its last
        intact checkpoint — corrupt snapshot files are walked past, never
        restored (:meth:`SnapshotStore.latest_valid`).
        """
        shard_dir = self.base_dir / f"shard-{index}"
        store = SnapshotStore(shard_dir, format=self.snapshot_format)
        latest = store.latest_valid()
        if latest is not None:
            extra = ["--restore", str(latest),
                     *self._serve_args(index, shard_dir)]
            return spawn_server_process("serve", None, extra)
        return spawn_server_process(
            "serve", self.params_file, self._serve_args(index, shard_dir)
        )

    def start(self, shard_ids: Optional[Sequence[int]] = None,
              ) -> List[Tuple[str, int]]:
        """Spawn every shard; returns the live ``(host, port)`` endpoints.

        Without ``shard_ids`` this is the fresh-cluster path: shards
        ``0..num_shards-1``.  With ``shard_ids`` (a cold resume from a
        persisted shard map, possibly with drained gaps) only the named
        ids get processes; the gaps become retired placeholder handles so
        positional id lookups keep working.
        """
        if self.shards:
            raise RuntimeError("supervisor already started")
        if shard_ids is None:
            live = list(range(self.num_shards))
        else:
            live = sorted(int(i) for i in shard_ids)
            if not live:
                raise ValueError("shard_ids must name at least one shard")
        for index in range(max(live) + 1):
            shard_dir = self.base_dir / f"shard-{index}"
            if index in live:
                proc, host, port = self._spawn(index)
                handle = ShardHandle(index=index, snapshot_dir=shard_dir,
                                     proc=proc, host=host, port=port)
            else:
                handle = ShardHandle(index=index, snapshot_dir=shard_dir,
                                     proc=None, host="", port=0, retired=True)
            self.shards.append(handle)
        return self.endpoints()

    def add_shard(self) -> Tuple[int, str, int]:
        """Spawn one additional shard; returns ``(shard_id, host, port)``.

        The new shard takes the next never-used id (ids of drained shards
        are not recycled) and starts with an empty aggregator — the
        router's shard map guarantees it only ever receives traffic for
        epochs after its activation cut.
        """
        if not self.shards:
            raise RuntimeError("supervisor not started")
        index = len(self.shards)
        shard_dir = self.base_dir / f"shard-{index}"
        proc, host, port = self._spawn(index)
        self.shards.append(ShardHandle(index=index, snapshot_dir=shard_dir,
                                       proc=proc, host=host, port=port))
        return index, host, port

    def retire(self, index: int) -> None:
        """Reap a drained shard's process and tombstone its handle.

        Idempotent — retiring a retired shard is a no-op, which is what a
        crash-resumed drain needs.
        """
        shard = self.shards[index]
        if not shard.retired:
            self._reap(shard)
            shard.retired = True

    def endpoints(self) -> List[Tuple[str, int]]:
        """Current ``(host, port)`` of every live shard, in shard order."""
        return [(shard.host, shard.port) for shard in self.shards
                if not shard.retired]

    def endpoint_of(self, index: int) -> Tuple[str, int]:
        """Current ``(host, port)`` of one shard by id."""
        shard = self.shards[index]
        if shard.retired:
            raise ValueError(f"shard {index} is retired")
        return shard.host, shard.port

    def active_ids(self) -> List[int]:
        """Ids of every non-retired shard, ascending."""
        return [shard.index for shard in self.shards if not shard.retired]

    def poll(self) -> List[int]:
        """Indices of live shards whose process has exited."""
        return [shard.index for shard in self.shards
                if not shard.retired and not shard.alive]

    def restart(self, index: int) -> Tuple[str, int]:
        """Restart one shard from its newest valid snapshot (fresh if none).

        The dead (or wedged) process is reaped first; the replacement
        restores the newest *intact* snapshot in the shard's own directory
        — a corrupt newest checkpoint falls back to the one before it — so
        its state is exactly the last verified snapshot barrier and the
        router's journal replay covers everything since.
        """
        shard = self.shards[index]
        if shard.retired:
            raise ValueError(f"shard {index} is retired")
        self._reap(shard)
        # Bump the generation *before* spawning: on shm the replacement
        # must bind a fresh ring name, never its dead predecessor's.
        shard.restarts += 1
        proc, host, port = self._spawn(index)
        shard.proc, shard.host, shard.port = proc, host, port
        return host, port

    def kill(self, index: int, sig: int = signal.SIGKILL) -> None:
        """Send ``sig`` to one shard (the chaos hook used by the tests).

        Only fatal signals are awaited; a ``SIGSTOP`` leaves the process
        alive-but-frozen by design (waiting on it would block forever), to
        be thawed by :meth:`resume` or escalated to :meth:`restart`.
        """
        shard = self.shards[index]
        if shard.alive:
            shard.proc.send_signal(sig)
            if sig in (signal.SIGKILL, signal.SIGTERM, signal.SIGINT):
                shard.proc.wait(timeout=10)

    def resume(self, index: int) -> None:
        """SIGCONT one shard (undo a :meth:`kill` with ``SIGSTOP``)."""
        shard = self.shards[index]
        if shard.alive:
            shard.proc.send_signal(signal.SIGCONT)

    def stop(self) -> None:
        """Terminate and reap every shard."""
        for shard in self.shards:
            self._reap(shard)

    @staticmethod
    def _reap(shard: ShardHandle) -> None:
        if shard.proc is None:
            return
        if shard.alive:
            try:
                # A SIGSTOPped child never handles SIGTERM; thaw it first so
                # the graceful path below works on frozen shards too.
                shard.proc.send_signal(signal.SIGCONT)
            except (ProcessLookupError, OSError):  # pragma: no cover - raced
                pass
            shard.proc.terminate()
            try:
                shard.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                shard.proc.kill()
                shard.proc.wait(timeout=10)
        if shard.proc.stdout is not None:
            shard.proc.stdout.close()

    def __enter__(self) -> "ClusterSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
