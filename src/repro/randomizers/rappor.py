"""Basic RAPPOR: the Google Chrome LDP mechanism cited in the introduction [12].

The introduction motivates the heavy-hitters problem with Google's RAPPOR
deployment.  We implement the *basic one-time RAPPOR* variant: the value is
hashed into a Bloom filter of ``num_bits`` bits with ``num_hashes`` hash
functions, and each Bloom-filter bit is then randomized with the permanent
randomized response parameter ``f``:

    report bit = 1 with probability 1 - f/2   if the Bloom bit is 1
    report bit = 1 with probability f/2        if the Bloom bit is 0

The privacy level of one report is ``ε = 2 h ln((1 - f/2)/(f/2))`` where h is
the number of hash functions (Erlingsson et al., 2014).  The class exposes the
inverse: construct from a target ε and it derives f.

RAPPOR is used in this library as (a) an industrial baseline frequency oracle
(with candidate-set decoding, see :mod:`repro.baselines.rappor_hh`) and (b) a
non-trivial randomizer for exercising GenProt.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.hashing.kwise import KWiseHash, KWiseHashFamily
from repro.randomizers.base import LocalRandomizer
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_domain_element, check_epsilon, check_positive_int


class BasicRappor(LocalRandomizer):
    """One-time basic RAPPOR over an integer domain.

    Parameters
    ----------
    epsilon:
        Target privacy budget; the flip probability f is derived from it.
    domain_size:
        Size of the value domain |X|.
    num_bits:
        Bloom filter width (m in the RAPPOR paper).
    num_hashes:
        Number of Bloom hash functions (h).
    rng:
        Randomness used to sample the (public) Bloom hash functions.
    hashes:
        Explicit Bloom hash functions (e.g. rebuilt from serialized public
        parameters); when given, no sampling happens and ``rng`` is unused.
    """

    def __init__(self, epsilon: float, domain_size: int, num_bits: int = 128,
                 num_hashes: int = 2, rng: RandomState = None,
                 hashes: Optional[List[KWiseHash]] = None) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.delta = 0.0
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.num_bits = check_positive_int(num_bits, "num_bits")
        self.num_hashes = check_positive_int(num_hashes, "num_hashes")
        # epsilon = 2 h ln((1 - f/2) / (f/2))  =>  f = 2 / (exp(eps / 2h) + 1)
        self.flip_probability = 2.0 / (math.exp(epsilon / (2.0 * num_hashes)) + 1.0)
        if hashes is not None:
            if len(hashes) != num_hashes:
                raise ValueError("need exactly num_hashes Bloom hash functions")
            self._hashes: List[KWiseHash] = list(hashes)
        else:
            family = KWiseHashFamily.create(domain_size, num_bits, independence=2)
            self._hashes = family.sample_many(num_hashes, rng)

    # ----- encoding ------------------------------------------------------------

    def bloom_bits(self, x: int) -> np.ndarray:
        """The deterministic Bloom-filter encoding of ``x`` (before privatisation)."""
        x = check_domain_element(self.resolve_input(x), self.domain_size)
        bits = np.zeros(self.num_bits, dtype=np.int8)
        for h in self._hashes:
            bits[int(h(x))] = 1
        return bits

    def randomize(self, x, rng: RandomState = None) -> np.ndarray:
        gen = as_generator(rng)
        bloom = self.bloom_bits(self.resolve_input(x))
        f = self.flip_probability
        prob_one = np.where(bloom == 1, 1.0 - f / 2.0, f / 2.0)
        return (gen.random(self.num_bits) < prob_one).astype(np.int8)

    def log_prob(self, x, report) -> float:
        bloom = self.bloom_bits(self.resolve_input(x))
        report = np.asarray(report, dtype=np.int64)
        if report.shape != (self.num_bits,):
            raise ValueError("report must be a length-num_bits bit vector")
        f = self.flip_probability
        prob_one = np.where(bloom == 1, 1.0 - f / 2.0, f / 2.0)
        probs = np.where(report == 1, prob_one, 1.0 - prob_one)
        return float(np.log(probs).sum())

    def report_space(self) -> Optional[List]:
        if self.num_bits > 16:
            return None
        space = []
        for mask in range(1 << self.num_bits):
            space.append(np.array([(mask >> j) & 1 for j in range(self.num_bits)],
                                  dtype=np.int8))
        return space

    @property
    def report_bits(self) -> float:
        return float(self.num_bits)

    # ----- decoding over a candidate set -----------------------------------------

    def candidate_design_matrix(self, candidates) -> np.ndarray:
        """Bloom encodings of a candidate set, stacked as a (len(candidates), m) matrix."""
        candidates = list(candidates)
        if not candidates:
            return np.zeros((0, self.num_bits))
        return np.stack([self.bloom_bits(int(c)) for c in candidates]).astype(float)

    def estimate_candidate_frequencies(self, reports, candidates) -> np.ndarray:
        """Estimate candidate frequencies from a stack of individual reports.

        Thin wrapper over
        :meth:`estimate_candidate_frequencies_from_counts` — the decoder only
        ever needs the per-bit one-counts, which is exactly the state a
        sharded :class:`~repro.protocol.rappor.RapporAggregator` keeps.
        """
        reports = np.asarray(reports, dtype=float)
        if reports.ndim != 2 or reports.shape[1] != self.num_bits:
            raise ValueError("reports must be an (n, num_bits) array")
        return self.estimate_candidate_frequencies_from_counts(
            reports.sum(axis=0), reports.shape[0], candidates)

    def estimate_candidate_frequencies_from_counts(
            self, bit_counts, num_reports: int, candidates) -> np.ndarray:
        """Estimate candidate frequencies from aggregated per-bit one-counts.

        First debias the counts (each report bit equals the Bloom bit with
        probability 1 - f/2), then solve the least-squares system
        ``design^T freq ≈ debiased_counts``.  This mirrors RAPPOR's regression
        decoding restricted to a known candidate list.
        """
        bit_counts = np.asarray(bit_counts, dtype=float)
        if bit_counts.shape != (self.num_bits,):
            raise ValueError("bit_counts must be a length-num_bits vector")
        n = int(num_reports)
        f = self.flip_probability
        # E[count_j] = t_j (1 - f/2) + (n - t_j) (f/2) where t_j = #users whose bloom bit j is 1
        debiased = (bit_counts - n * f / 2.0) / (1.0 - f)
        design = self.candidate_design_matrix(candidates)
        if design.size == 0:
            return np.zeros(0)
        solution, *_ = np.linalg.lstsq(design.T, debiased, rcond=None)
        return solution
