"""Hadamard response: a communication-optimal one-bit local randomizer.

The Apple iOS deployment [33] and the Hashtogram frequency oracle of Bassily
et al. [3] both rely on randomizing a *single bit of a Hadamard transform* of
the one-hot encoding: user i holding value x samples a uniformly random index
j and reports ``(j, b)`` where b is the Hadamard entry ``H[j, x]`` flipped with
probability ``1/(e^ε + 1)``.

Privacy: for a fixed published index j, the report bit is a binary randomized
response on ``H[j, x]`` and is therefore ε-DP; the index itself is independent
of x.  Utility: ``E[b · H[j, v]] = (e^ε - 1)/(e^ε + 1) · H_hat`` allows an
unbiased frequency estimator for every v with O(1) communication per user —
exactly the O(1)-communication column of Table 1.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.randomizers.base import LocalRandomizer
from repro.utils.bits import next_power_of_two
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_domain_element, check_epsilon, check_positive_int


def hadamard_entry(row: int, column: int) -> int:
    """Entry ``H[row, column]`` of the (unnormalised) Hadamard matrix, in {-1, +1}.

    ``H[r, c] = (-1)^{<r, c>}`` where <r, c> is the inner product of the binary
    expansions; computed via the parity of ``popcount(r & c)``.
    """
    return -1 if bin(row & column).count("1") % 2 else 1


def hadamard_matrix(order: int) -> np.ndarray:
    """The full (unnormalised) ±1 Hadamard matrix of a power-of-two order.

    Built by Sylvester's recursion ``H_{2n} = [[H_n, H_n], [H_n, -H_n]]`` —
    ``log2(order)`` vectorized doubling steps instead of ``order**2``
    Python-level :func:`hadamard_entry` calls.  Entry for entry this equals
    ``hadamard_entry(r, c)`` (regression-tested), since Sylvester's
    recursion and the ``(-1)^{popcount(r & c)}`` definition describe the
    same matrix.
    """
    if order < 1 or order & (order - 1):
        raise ValueError("order must be a power of two")
    matrix = np.ones((1, 1), dtype=np.int64)
    while matrix.shape[0] < order:
        matrix = np.block([[matrix, matrix], [matrix, -matrix]])
    return matrix


class HadamardResponse(LocalRandomizer):
    """Hadamard-response local randomizer over a domain of size k.

    The domain is padded to the next power of two K >= k + 1 (index 0 of the
    Hadamard matrix is reserved so that every domain element maps to a
    non-trivial column).
    """

    def __init__(self, epsilon: float, domain_size: int) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.delta = 0.0
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.padded_size = next_power_of_two(domain_size + 1)
        exp_eps = math.exp(epsilon)
        self._keep_prob = exp_eps / (exp_eps + 1.0)
        #: multiplicative attenuation of the signal caused by the bit flipping
        self.attenuation = (exp_eps - 1.0) / (exp_eps + 1.0)

    def _column(self, x: int) -> int:
        """Column of the Hadamard matrix assigned to domain element x."""
        return x + 1  # reserve column 0 (the all-ones column carries no signal)

    def randomize(self, x, rng: RandomState = None) -> Tuple[int, int]:
        x = check_domain_element(self.resolve_input(x), self.domain_size)
        gen = as_generator(rng)
        row = int(gen.integers(0, self.padded_size))
        bit = hadamard_entry(row, self._column(x))
        if gen.random() >= self._keep_prob:
            bit = -bit
        return (row, bit)

    def log_prob(self, x, report) -> float:
        x = check_domain_element(self.resolve_input(x), self.domain_size)
        row, bit = int(report[0]), int(report[1])
        if not 0 <= row < self.padded_size or bit not in (-1, 1):
            raise ValueError("invalid Hadamard report")
        true_bit = hadamard_entry(row, self._column(x))
        p_bit = self._keep_prob if bit == true_bit else 1.0 - self._keep_prob
        return math.log(p_bit / self.padded_size)

    def report_space(self) -> Optional[List]:
        if self.padded_size > 64:
            return None
        return [(row, bit) for row in range(self.padded_size) for bit in (-1, 1)]

    @property
    def report_bits(self) -> float:
        return math.log2(self.padded_size) + 1.0

    # ----- aggregation -----------------------------------------------------------

    def unbiased_frequency(self, reports, value: int) -> float:
        """Unbiased estimate of the frequency of ``value`` from all reports.

        For a user holding v, ``E[bit * H[row, col(v')] ] = attenuation`` when
        v' = v and 0 otherwise (columns of H are orthogonal and row is uniform),
        so summing ``bit * H[row, col(value)] / attenuation`` over reports gives
        an unbiased frequency estimate.
        """
        value = check_domain_element(value, self.domain_size)
        col = self._column(value)
        total = 0.0
        for row, bit in reports:
            total += bit * hadamard_entry(int(row), col)
        return total / self.attenuation

    def unbiased_histogram(self, reports) -> np.ndarray:
        """Frequency estimates for the whole domain.

        The reports are first reduced to one exact signed count per Hadamard
        row (all ±1 additions, so integer arithmetic is bit-identical to the
        old per-value float accumulation), then hit with the Sylvester-built
        matrix in one integer matmul: O(n + K²) instead of the old O(n · k)
        per-value :meth:`unbiased_frequency` loop.  (K = ``padded_size``;
        for large domains prefer the FWHT decoding path of
        :mod:`repro.frequency.explicit`, which never materializes H.)
        """
        counts = np.zeros(self.padded_size, dtype=np.int64)
        entries = np.asarray(list(reports), dtype=np.int64).reshape(-1, 2)
        if entries.size:
            np.add.at(counts, entries[:, 0], entries[:, 1])
        matrix = hadamard_matrix(self.padded_size)
        totals = counts @ matrix[:, 1:self.domain_size + 1]
        return totals / self.attenuation

    @property
    def estimator_variance_per_user(self) -> float:
        """Per-user variance of the frequency estimator (for a non-held element)."""
        return 1.0 / self.attenuation**2
