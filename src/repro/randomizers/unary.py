"""Unary-encoding local randomizers (basic and optimised).

Both randomizers one-hot encode the user's value over a domain of size k and
then flip every bit independently:

* :class:`UnaryEncoding` (symmetric / "basic RAPPOR" flavour) keeps a one-bit
  with probability ``e^{ε/2}/(e^{ε/2}+1)`` and reports a zero-bit as one with
  the complementary probability, so each of the two differing coordinates
  contributes ε/2 of privacy loss.
* :class:`OptimizedUnaryEncoding` (OUE, Wang et al.) keeps a one-bit with
  probability 1/2 and flips a zero-bit with probability ``1/(e^ε+1)``,
  minimising estimator variance at the same ε.

These serve as the small-domain frequency oracle of Theorem 3.8 (the
per-bucket randomizer inside Hashtogram) and as industrial-baseline
components.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.randomizers.base import LocalRandomizer
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_domain_element, check_epsilon, check_positive_int


class _BitFlipEncoding(LocalRandomizer):
    """Shared machinery: one-hot encode then flip bits with probabilities (p, q).

    ``p`` is the probability of reporting 1 on the true coordinate, ``q`` the
    probability of reporting 1 on any other coordinate.
    """

    def __init__(self, epsilon: float, domain_size: int, p: float, q: float) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.delta = 0.0
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self._p = float(p)
        self._q = float(q)

    @property
    def p(self) -> float:
        """Probability that the true coordinate reports 1."""
        return self._p

    @property
    def q(self) -> float:
        """Probability that a non-true coordinate reports 1."""
        return self._q

    def randomize(self, x, rng: RandomState = None) -> np.ndarray:
        x = check_domain_element(self.resolve_input(x), self.domain_size)
        gen = as_generator(rng)
        bits = (gen.random(self.domain_size) < self._q).astype(np.int8)
        bits[x] = 1 if gen.random() < self._p else 0
        return bits

    def log_prob(self, x, report) -> float:
        x = check_domain_element(self.resolve_input(x), self.domain_size)
        report = np.asarray(report, dtype=np.int64)
        if report.shape != (self.domain_size,):
            raise ValueError("report must be a length-k bit vector")
        total = 0.0
        for j in range(self.domain_size):
            prob_one = self._p if j == x else self._q
            prob = prob_one if report[j] == 1 else 1.0 - prob_one
            if prob <= 0.0:
                return -math.inf
            total += math.log(prob)
        return total

    def report_space(self) -> Optional[List]:
        if self.domain_size > 16:
            return None
        space = []
        for mask in range(1 << self.domain_size):
            space.append(np.array([(mask >> j) & 1 for j in range(self.domain_size)],
                                  dtype=np.int8))
        return space

    @property
    def report_bits(self) -> float:
        return float(self.domain_size)

    def unbiased_histogram(self, reports) -> np.ndarray:
        """Debiased frequency estimates from a stack of bit-vector reports.

        ``reports`` is an (n, k) array; the column sums c_v satisfy
        ``E[c_v] = f_v p + (n - f_v) q``.
        """
        reports = np.asarray(reports, dtype=float)
        if reports.ndim != 2 or reports.shape[1] != self.domain_size:
            raise ValueError("reports must be an (n, k) array")
        n = reports.shape[0]
        counts = reports.sum(axis=0)
        return (counts - n * self._q) / (self._p - self._q)

    @property
    def estimator_variance_per_user(self) -> float:
        """Per-user variance of the debiased estimator for a non-held element."""
        return self._q * (1.0 - self._q) / (self._p - self._q) ** 2


class UnaryEncoding(_BitFlipEncoding):
    """Symmetric unary encoding (each differing coordinate spends ε/2)."""

    def __init__(self, epsilon: float, domain_size: int) -> None:
        half = math.exp(epsilon / 2.0)
        p = half / (half + 1.0)
        q = 1.0 / (half + 1.0)
        super().__init__(epsilon, domain_size, p, q)


class OptimizedUnaryEncoding(_BitFlipEncoding):
    """Optimised unary encoding (OUE): p = 1/2, q = 1/(e^ε + 1).

    Changing the input toggles exactly two coordinates; the worst likelihood
    ratio is ``(p/q) * ((1-q)/(1-p)) = e^ε``, so the mechanism is ε-DP while
    minimising the variance ``q(1-q)/(p-q)^2 = 4e^ε/(e^ε-1)^2`` per user.
    """

    def __init__(self, epsilon: float, domain_size: int) -> None:
        p = 0.5
        q = 1.0 / (math.exp(epsilon) + 1.0)
        super().__init__(epsilon, domain_size, p, q)
