"""Local randomizers: the per-user building blocks of every LDP protocol.

A *local randomizer* (Definition 2.2) is a differentially private algorithm
applied to a database of size one — the single user's value.  Every protocol
in this library (frequency oracles, the heavy-hitters sketch, the baselines,
and the structural transformations of Sections 5 and 6) is assembled from the
randomizers defined here.

Each randomizer knows its exact privacy parameters ``(epsilon, delta)``,
can sample a report for a given input, and — crucially for the GenProt
transformation of Section 6 — can evaluate the (log-)likelihood of any report
under any input, so that rejection-sampling probabilities
``Pr[A(x) = y] / Pr[A(⊥) = y]`` are computable.
"""

from repro.randomizers.base import LocalRandomizer, ReportSpace
from repro.randomizers.hadamard import HadamardResponse, hadamard_entry, hadamard_matrix
from repro.randomizers.laplace import (
    GaussianHistogramRandomizer,
    LaplaceHistogramRandomizer,
)
from repro.randomizers.randomized_response import (
    BinaryRandomizedResponse,
    KaryRandomizedResponse,
)
from repro.randomizers.rappor import BasicRappor
from repro.randomizers.unary import OptimizedUnaryEncoding, UnaryEncoding

__all__ = [
    "LocalRandomizer",
    "ReportSpace",
    "BinaryRandomizedResponse",
    "KaryRandomizedResponse",
    "UnaryEncoding",
    "OptimizedUnaryEncoding",
    "BasicRappor",
    "HadamardResponse",
    "hadamard_entry",
    "hadamard_matrix",
    "LaplaceHistogramRandomizer",
    "GaussianHistogramRandomizer",
]
