"""Abstract interface for local randomizers (Definition 2.2 of the paper).

The interface is deliberately richer than "sample a report":

* :meth:`LocalRandomizer.log_prob` evaluates the log-likelihood of a report
  under a given input.  GenProt (Section 6) needs the likelihood *ratio*
  ``Pr[A(x) = y] / Pr[A(⊥) = y]`` for rejection sampling, and the empirical
  privacy audits in the test suite verify the ε guarantee by enumerating
  reports and checking these ratios directly.
* :meth:`LocalRandomizer.report_space` enumerates the output space when it is
  small and discrete (enabling exact TV-distance and privacy computations);
  randomizers with large or continuous outputs return ``None``.
* ``null_input`` defines what the paper writes as ⊥: a fixed reference input
  used by transformations that must sample "input-independent" reports.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, List, Optional

import numpy as np

from repro.utils.rng import RandomState, as_generator


# A report space is either an explicit list of possible reports or None when
# enumeration is impractical (continuous or exponentially large spaces).
ReportSpace = Optional[List]


class LocalRandomizer(abc.ABC):
    """A randomized map from one user's value to a differentially private report."""

    #: Pure-DP parameter ε of this randomizer.
    epsilon: float
    #: Approximate-DP parameter δ (0 for pure randomizers).
    delta: float = 0.0

    # ----- required interface --------------------------------------------------

    @abc.abstractmethod
    def randomize(self, x, rng: RandomState = None):
        """Sample one report for input ``x`` (``None`` means the null input ⊥)."""

    @abc.abstractmethod
    def log_prob(self, x, report) -> float:
        """Log-probability (or log-density) of ``report`` when the input is ``x``."""

    # ----- optional interface ---------------------------------------------------

    def report_space(self) -> ReportSpace:
        """Enumerate all possible reports, or None when not enumerable."""
        return None

    @property
    def null_input(self):
        """The reference input ⊥ used by input-oblivious sampling (default 0)."""
        return 0

    @property
    def report_bits(self) -> float:
        """Number of bits needed to communicate one report (may be fractional)."""
        space = self.report_space()
        if space is None:
            return float("nan")
        return max(math.log2(len(space)), 1.0)

    # ----- derived helpers --------------------------------------------------------

    def prob(self, x, report) -> float:
        """Probability (or density) of ``report`` under input ``x``."""
        return math.exp(self.log_prob(x, report))

    def resolve_input(self, x):
        """Map ``None`` to the null input ⊥, pass anything else through."""
        return self.null_input if x is None else x

    def likelihood_ratio(self, x, x_prime, report) -> float:
        """``Pr[A(x) = report] / Pr[A(x') = report]``."""
        return math.exp(self.log_prob(x, report) - self.log_prob(x_prime, report))

    def privacy_loss(self, x, x_prime, report) -> float:
        """The privacy loss ``ln(Pr[A(x)=report]/Pr[A(x')=report])`` (Definition 4.1)."""
        return self.log_prob(x, report) - self.log_prob(x_prime, report)

    def sample_privacy_losses(self, x, x_prime, num_samples: int,
                              rng: RandomState = None) -> np.ndarray:
        """Monte-Carlo samples of the privacy loss random variable L_{A(x),A(x')}.

        Reports are drawn from ``A(x)`` and the loss is evaluated at each; used
        by the advanced-grouposition experiments (Section 4).
        """
        gen = as_generator(rng)
        losses = np.empty(num_samples, dtype=float)
        for i in range(num_samples):
            report = self.randomize(x, gen)
            losses[i] = self.privacy_loss(x, x_prime, report)
        return losses

    def verify_pure_dp(self, inputs: Iterable, tolerance: float = 1e-9) -> float:
        """Exhaustively verify the pure-DP guarantee over an enumerable report space.

        Returns the worst observed privacy loss; raises ``ValueError`` if the
        report space is not enumerable.  Tests use this to confirm each
        randomizer's claimed ε is genuine (up to ``tolerance``).
        """
        space = self.report_space()
        if space is None:
            raise ValueError("report space is not enumerable; cannot verify exactly")
        inputs = list(inputs)
        worst = 0.0
        for x in inputs:
            for x_prime in inputs:
                if x == x_prime:
                    continue
                for report in space:
                    p = self.prob(x, report)
                    q = self.prob(x_prime, report)
                    if p <= tolerance and q <= tolerance:
                        continue
                    if q <= tolerance < p:
                        return float("inf")
                    worst = max(worst, abs(math.log(p / q)))
        return worst

    def output_distribution(self, x) -> dict:
        """Exact output distribution {report: probability} for enumerable spaces."""
        space = self.report_space()
        if space is None:
            raise ValueError("report space is not enumerable")
        return {report: self.prob(x, report) for report in space}
