"""Additive-noise local randomizers over histogram encodings.

These provide the *approximate* (ε, δ)-LDP mechanisms that the GenProt
transformation of Section 6 consumes, plus a pure Laplace mechanism for
completeness:

* :class:`LaplaceHistogramRandomizer` — one-hot encode and add Laplace(2/ε)
  noise to every coordinate (L1 sensitivity of a one-hot change is 2), giving
  pure ε-LDP with a continuous report.
* :class:`GaussianHistogramRandomizer` — one-hot encode and add Gaussian noise
  calibrated to (ε, δ) via the analytic Gaussian mechanism bound
  ``σ = sqrt(2 ln(1.25/δ)) · Δ2 / ε`` with L2 sensitivity ``Δ2 = sqrt(2)``.
  This is the canonical example of a protocol that is *approximately* private
  and not purely private, which is exactly what GenProt converts.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.randomizers.base import LocalRandomizer
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import (
    check_delta,
    check_domain_element,
    check_epsilon,
    check_positive_int,
)


class LaplaceHistogramRandomizer(LocalRandomizer):
    """One-hot encoding plus per-coordinate Laplace(2/ε) noise (pure ε-LDP)."""

    def __init__(self, epsilon: float, domain_size: int) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.delta = 0.0
        self.domain_size = check_positive_int(domain_size, "domain_size")
        self.scale = 2.0 / epsilon

    def _one_hot(self, x: int) -> np.ndarray:
        vec = np.zeros(self.domain_size)
        vec[x] = 1.0
        return vec

    def randomize(self, x, rng: RandomState = None) -> np.ndarray:
        x = check_domain_element(self.resolve_input(x), self.domain_size)
        gen = as_generator(rng)
        return self._one_hot(x) + gen.laplace(0.0, self.scale, size=self.domain_size)

    def log_prob(self, x, report) -> float:
        """Log-density of the report under input x (product of Laplace densities)."""
        x = check_domain_element(self.resolve_input(x), self.domain_size)
        report = np.asarray(report, dtype=float)
        if report.shape != (self.domain_size,):
            raise ValueError("report must be a length-k vector")
        residual = report - self._one_hot(x)
        return float(np.sum(-np.abs(residual) / self.scale
                            - math.log(2.0 * self.scale)))

    def report_space(self) -> Optional[list]:
        return None

    @property
    def report_bits(self) -> float:
        # Continuous report; with 64-bit floats per coordinate.
        return 64.0 * self.domain_size

    def unbiased_histogram(self, reports) -> np.ndarray:
        """Frequency estimates: the noise is zero-mean so the column sums are unbiased."""
        reports = np.asarray(reports, dtype=float)
        if reports.ndim != 2 or reports.shape[1] != self.domain_size:
            raise ValueError("reports must be an (n, k) array")
        return reports.sum(axis=0)

    @property
    def estimator_variance_per_user(self) -> float:
        return 2.0 * self.scale**2


class GaussianHistogramRandomizer(LocalRandomizer):
    """One-hot encoding plus Gaussian noise calibrated to (ε, δ)-LDP."""

    def __init__(self, epsilon: float, delta: float, domain_size: int) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.delta = check_delta(delta)
        if self.delta <= 0:
            raise ValueError("the Gaussian mechanism requires delta > 0")
        self.domain_size = check_positive_int(domain_size, "domain_size")
        sensitivity_l2 = math.sqrt(2.0)
        self.sigma = math.sqrt(2.0 * math.log(1.25 / delta)) * sensitivity_l2 / epsilon

    def _one_hot(self, x: int) -> np.ndarray:
        vec = np.zeros(self.domain_size)
        vec[x] = 1.0
        return vec

    def randomize(self, x, rng: RandomState = None) -> np.ndarray:
        x = check_domain_element(self.resolve_input(x), self.domain_size)
        gen = as_generator(rng)
        return self._one_hot(x) + gen.normal(0.0, self.sigma, size=self.domain_size)

    def log_prob(self, x, report) -> float:
        """Log-density of the report under input x (product of Gaussian densities)."""
        x = check_domain_element(self.resolve_input(x), self.domain_size)
        report = np.asarray(report, dtype=float)
        if report.shape != (self.domain_size,):
            raise ValueError("report must be a length-k vector")
        residual = report - self._one_hot(x)
        var = self.sigma**2
        return float(np.sum(-(residual**2) / (2.0 * var)
                            - 0.5 * math.log(2.0 * math.pi * var)))

    def report_space(self) -> Optional[list]:
        return None

    @property
    def report_bits(self) -> float:
        return 64.0 * self.domain_size

    def unbiased_histogram(self, reports) -> np.ndarray:
        """Frequency estimates from summed reports (noise is zero-mean)."""
        reports = np.asarray(reports, dtype=float)
        if reports.ndim != 2 or reports.shape[1] != self.domain_size:
            raise ValueError("reports must be an (n, k) array")
        return reports.sum(axis=0)

    @property
    def estimator_variance_per_user(self) -> float:
        return float(self.sigma**2)
