"""Randomized response: the canonical pure ε-LDP randomizer.

Two flavours:

* :class:`BinaryRandomizedResponse` — Warner's mechanism on a single bit; this
  is exactly the mechanism ``M_i`` of Theorem 5.1 (report the true bit with
  probability ``e^ε/(e^ε+1)``, flip it otherwise).
* :class:`KaryRandomizedResponse` — generalised randomized response over a
  k-element domain; report the truth with probability ``e^ε/(e^ε+k-1)`` and a
  uniformly random *other* element otherwise.  It doubles as a small-domain
  frequency oracle building block and as the per-bucket randomizer used by
  Hashtogram.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.randomizers.base import LocalRandomizer
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_domain_element, check_epsilon, check_positive_int


class BinaryRandomizedResponse(LocalRandomizer):
    """Warner's randomized response on {0, 1}.

    Reports the true bit with probability ``e^ε / (e^ε + 1)`` and the flipped
    bit otherwise; this is ε-DP with equality, making it the extremal example
    for the composition results of Section 5.
    """

    def __init__(self, epsilon: float) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.delta = 0.0
        self._keep_prob = math.exp(epsilon) / (math.exp(epsilon) + 1.0)

    @property
    def keep_probability(self) -> float:
        """Probability of reporting the true bit."""
        return self._keep_prob

    def randomize(self, x, rng: RandomState = None) -> int:
        x = int(self.resolve_input(x))
        if x not in (0, 1):
            raise ValueError("input must be a bit")
        gen = as_generator(rng)
        if gen.random() < self._keep_prob:
            return x
        return 1 - x

    def randomize_many(self, bits, rng: RandomState = None) -> np.ndarray:
        """Vectorised randomization of an array of bits (one report per entry)."""
        gen = as_generator(rng)
        bits = np.asarray(bits, dtype=np.int64)
        if bits.size and not np.isin(bits, (0, 1)).all():
            raise ValueError("inputs must be bits")
        keep = gen.random(bits.shape) < self._keep_prob
        return np.where(keep, bits, 1 - bits).astype(np.int64)

    def log_prob(self, x, report) -> float:
        x = int(self.resolve_input(x))
        report = int(report)
        if x not in (0, 1) or report not in (0, 1):
            raise ValueError("inputs and reports must be bits")
        p = self._keep_prob if report == x else 1.0 - self._keep_prob
        return math.log(p)

    def report_space(self) -> List[int]:
        return [0, 1]

    def unbiased_count(self, reports) -> float:
        """Debiased estimate of the number of ones given all users' reports."""
        reports = np.asarray(reports, dtype=float)
        n = reports.size
        p = self._keep_prob
        # E[sum reports] = ones * p + (n - ones) * (1 - p)
        return float((reports.sum() - n * (1.0 - p)) / (2.0 * p - 1.0))

    @property
    def estimator_variance_per_user(self) -> float:
        """Variance contributed by one user to the debiased count estimator."""
        p = self._keep_prob
        return p * (1.0 - p) / (2.0 * p - 1.0) ** 2


class KaryRandomizedResponse(LocalRandomizer):
    """Generalised randomized response over the domain ``[0, k)``.

    Reports the true value with probability ``e^ε/(e^ε + k - 1)``; any specific
    other value has probability ``1/(e^ε + k - 1)``.  The likelihood ratio
    between any two inputs for any report is at most ``e^ε``, so the mechanism
    is ε-DP with equality.
    """

    def __init__(self, epsilon: float, domain_size: int) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.delta = 0.0
        self.domain_size = check_positive_int(domain_size, "domain_size")
        exp_eps = math.exp(epsilon)
        self._p_true = exp_eps / (exp_eps + domain_size - 1.0)
        self._p_other = 1.0 / (exp_eps + domain_size - 1.0)

    @property
    def truth_probability(self) -> float:
        return self._p_true

    @property
    def lie_probability(self) -> float:
        return self._p_other

    def randomize(self, x, rng: RandomState = None) -> int:
        x = check_domain_element(self.resolve_input(x), self.domain_size)
        gen = as_generator(rng)
        if self.domain_size == 1:
            return 0
        if gen.random() < self._p_true:
            return x
        # Uniform over the other k-1 values.
        other = int(gen.integers(0, self.domain_size - 1))
        return other if other < x else other + 1

    def randomize_many(self, values, rng: RandomState = None) -> np.ndarray:
        """Vectorised randomization of an array of domain elements."""
        gen = as_generator(rng)
        values = np.asarray(values, dtype=np.int64)
        if self.domain_size == 1:
            return np.zeros_like(values)
        keep = gen.random(values.shape) < self._p_true
        others = gen.integers(0, self.domain_size - 1, size=values.shape)
        others = np.where(others < values, others, others + 1)
        return np.where(keep, values, others).astype(np.int64)

    def log_prob(self, x, report) -> float:
        x = check_domain_element(self.resolve_input(x), self.domain_size)
        report = check_domain_element(report, self.domain_size, "report")
        if self.domain_size == 1:
            return 0.0
        return math.log(self._p_true if report == x else self._p_other)

    def report_space(self) -> List[int]:
        return list(range(self.domain_size))

    def unbiased_histogram(self, reports) -> np.ndarray:
        """Debiased frequency estimates for every domain element.

        With n reports, the raw count c_v of value v satisfies
        ``E[c_v] = f_v * p_true + (n - f_v) * p_other``; inverting gives an
        unbiased estimator of every f_v simultaneously.
        """
        reports = np.asarray(reports, dtype=np.int64)
        n = reports.size
        counts = np.bincount(reports, minlength=self.domain_size).astype(float)
        return (counts - n * self._p_other) / (self._p_true - self._p_other)

    @property
    def estimator_variance_per_user(self) -> float:
        """Per-user variance of the debiased frequency estimator (worst case)."""
        p, q = self._p_true, self._p_other
        return q * (1.0 - q) / (p - q) ** 2
