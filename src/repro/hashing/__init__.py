"""Hash function families with limited independence.

Algorithm ``PrivateExpanderSketch`` needs, as public randomness,

* pairwise independent hash functions ``h_1, ..., h_M : X -> [Y]``,
* a ``(C_g log |X|)``-wise independent hash function ``g : X -> [B]``.

Both are provided by :class:`KWiseHash` (polynomial hashing over a prime
field), with :func:`pairwise_hash` as the ``k = 2`` convenience constructor.
The frequency oracles additionally use sign hashes for count-sketch style
debiasing.
"""

from repro.hashing.kwise import KWiseHash, KWiseHashFamily, pairwise_hash, sign_hash
from repro.hashing.primes import next_prime, is_prime

__all__ = [
    "KWiseHash",
    "KWiseHashFamily",
    "pairwise_hash",
    "sign_hash",
    "next_prime",
    "is_prime",
]
