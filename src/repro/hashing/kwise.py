"""k-wise independent hash functions via polynomial hashing.

A degree-(k-1) polynomial with uniformly random coefficients over a prime
field ``F_p`` with ``p >= |X|`` evaluates to a k-wise independent family on
``X``; reducing the value modulo the range size gives an (almost uniform)
k-wise independent hash into ``[range_size]``.  This is the textbook
construction the paper relies on for its pairwise independent hashes
``h_1, ..., h_M`` and the ``O(log |X|)``-wise independent partition hash ``g``.

All evaluations are vectorised over numpy arrays using Python integers for the
modular arithmetic when the modulus exceeds 63 bits (never the case for the
domains used here, but guarded anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.hashing.primes import next_prime
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

ArrayLike = Union[int, Sequence[int], np.ndarray]


@dataclass(frozen=True)
class KWiseHash:
    """A single hash function drawn from a k-wise independent family.

    Parameters
    ----------
    coefficients:
        Tuple of ``k`` coefficients in ``[0, prime)``; ``coefficients[0]`` is
        the constant term.
    prime:
        The field modulus (a prime >= the domain size).
    range_size:
        The size of the hash range ``[0, range_size)``.

    Notes
    -----
    The description length of the function is ``k * ceil(log2(prime))`` bits;
    this is what the protocol counts as "public randomness per user" in
    Table 1.
    """

    coefficients: tuple
    prime: int
    range_size: int

    def __post_init__(self) -> None:
        # Horner state cached once per hash: the reversed coefficients as
        # plain ints.  `_evaluate` used to walk `reversed(self.coefficients)`
        # (rebuilding the reversed view and re-normalizing each coefficient
        # on every call); with millions of per-chunk evaluations the cached
        # tuple is measurably cheaper and also powers the allocation-free
        # scalar path below.  (frozen dataclass: set via object.__setattr__;
        # not a field, so eq/repr/asdict are unchanged.)
        object.__setattr__(self, "_rev_coefficients",
                           tuple(int(c) for c in reversed(self.coefficients)))

    @property
    def independence(self) -> int:
        """The k of the k-wise independent family this was drawn from."""
        return len(self.coefficients)

    @property
    def description_bits(self) -> int:
        """Number of bits needed to communicate this hash function."""
        return self.independence * max(int(self.prime - 1).bit_length(), 1)

    def __call__(self, x: ArrayLike) -> Union[int, np.ndarray]:
        """Evaluate the hash on a scalar or an array of domain elements."""
        if isinstance(x, (int, np.integer)):
            # Fast scalar path: pure-int Horner, no np.atleast_1d allocation.
            if x < 0:
                raise ValueError("hash inputs must be non-negative integers")
            return self._evaluate_scalar(int(x))
        scalar = np.isscalar(x)
        arr = np.atleast_1d(np.asarray(x, dtype=np.int64))
        if arr.size and (arr.min() < 0):
            raise ValueError("hash inputs must be non-negative integers")
        out = self._evaluate(arr)
        if scalar:
            return int(out[0])
        return out

    def _evaluate_scalar(self, x: int) -> int:
        # Python ints are exact for any prime, so one code path serves both
        # the word-sized and the >2^31 primes; results match `_evaluate`
        # bit for bit (int64 arithmetic never overflows for p < 2^31).
        p = self.prime
        x_mod = x % p
        value = 0
        for coef in self._rev_coefficients:
            value = (value * x_mod + coef) % p
        return value % self.range_size

    def _evaluate(self, arr: np.ndarray) -> np.ndarray:
        p = self.prime
        # Horner evaluation modulo p.  Use object dtype when p^2 could
        # overflow int64; for the usual primes (< 2^31) int64 is exact.
        if p < (1 << 31):
            vals = np.zeros(arr.shape, dtype=np.int64)
            x_mod = arr % p
            for coef in self._rev_coefficients:
                vals = (vals * x_mod + coef) % p
            return (vals % self.range_size).astype(np.int64)
        vals = np.zeros(arr.shape, dtype=object)
        x_mod = arr.astype(object) % p
        for coef in self._rev_coefficients:
            vals = (vals * x_mod + coef) % p
        return np.array([int(v) % self.range_size for v in vals], dtype=np.int64)


@dataclass(frozen=True)
class KWiseHashFamily:
    """A k-wise independent hash family ``X -> [range_size]``.

    Draw members with :meth:`sample`; the family is characterised by the
    domain size (which fixes the prime field), the range size, and the
    independence parameter k.
    """

    domain_size: int
    range_size: int
    independence: int
    prime: int

    @classmethod
    def create(cls, domain_size: int, range_size: int, independence: int = 2
               ) -> "KWiseHashFamily":
        """Build a family for ``[0, domain_size) -> [0, range_size)``."""
        check_positive_int(domain_size, "domain_size")
        check_positive_int(range_size, "range_size")
        check_positive_int(independence, "independence")
        prime = next_prime(max(domain_size, range_size, 2))
        return cls(domain_size=domain_size, range_size=range_size,
                   independence=independence, prime=prime)

    def sample(self, rng: RandomState = None) -> KWiseHash:
        """Draw one hash function uniformly from the family."""
        gen = as_generator(rng)
        coefs = [int(gen.integers(0, self.prime)) for _ in range(self.independence)]
        # Degree-(k-1) coefficient should be non-zero so the polynomial has
        # full degree; this does not affect independence and avoids the
        # degenerate constant function for tiny families.
        if self.independence > 1 and coefs[-1] == 0:
            coefs[-1] = int(gen.integers(1, self.prime))
        return KWiseHash(coefficients=tuple(coefs), prime=self.prime,
                         range_size=self.range_size)

    def sample_many(self, count: int, rng: RandomState = None) -> List[KWiseHash]:
        """Draw ``count`` independent hash functions."""
        gen = as_generator(rng)
        return [self.sample(gen) for _ in range(count)]


def pairwise_hash(domain_size: int, range_size: int, rng: RandomState = None) -> KWiseHash:
    """Draw a single pairwise independent hash ``[domain_size] -> [range_size]``."""
    family = KWiseHashFamily.create(domain_size, range_size, independence=2)
    return family.sample(rng)


def kwise_hash(domain_size: int, range_size: int, independence: int,
               rng: RandomState = None) -> KWiseHash:
    """Draw a single k-wise independent hash with the given independence."""
    family = KWiseHashFamily.create(domain_size, range_size, independence)
    return family.sample(rng)


def sign_hash(domain_size: int, rng: RandomState = None, independence: int = 4) -> "SignHash":
    """Draw a +/-1 valued hash (used by count-sketch style estimators)."""
    base = KWiseHashFamily.create(domain_size, 2, independence).sample(rng)
    return SignHash(base)


@dataclass(frozen=True)
class SignHash:
    """A hash function into {-1, +1}, built from a k-wise binary hash."""

    base: KWiseHash

    def __call__(self, x: ArrayLike) -> Union[int, np.ndarray]:
        val = self.base(x)
        if np.isscalar(val):
            return 1 if val == 1 else -1
        return np.where(np.asarray(val) == 1, 1, -1).astype(np.int64)

    @property
    def description_bits(self) -> int:
        return self.base.description_bits


def total_description_bits(hashes: Iterable) -> int:
    """Sum of description lengths for a collection of hash functions."""
    return int(sum(h.description_bits for h in hashes))
