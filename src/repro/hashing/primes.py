"""Primality testing and prime search.

Polynomial hash families and Reed-Solomon codes both need a prime modulus
slightly larger than the domain they operate on.  Deterministic Miller-Rabin
with the standard witness set is exact for all 64-bit integers, which covers
every domain size this library works with (and far beyond).
"""

from __future__ import annotations

# Deterministic Miller-Rabin witnesses valid for all n < 3.3 * 10^24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)


def is_prime(n: int) -> bool:
    """Exact primality test (deterministic Miller-Rabin) for n < 3.3e24."""
    n = int(n)
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        if a % n == 0:
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime >= n (n may be any integer; result is at least 2)."""
    n = max(int(n), 2)
    candidate = n
    while not is_prime(candidate):
        candidate += 1
    return candidate


def previous_prime(n: int) -> int:
    """Largest prime <= n; raises ValueError if n < 2."""
    n = int(n)
    if n < 2:
        raise ValueError("no prime <= n for n < 2")
    candidate = n
    while not is_prime(candidate):
        candidate -= 1
    return candidate
