"""Seeded fault schedules: which fault, at which frame, against which peer.

A :class:`FaultSchedule` is the deterministic heart of the chaos harness
(``docs/chaos.md``): a list of :class:`FaultEvent` records derived from a
single integer seed via ``numpy.random.Generator`` — no wall-clock, no OS
entropy — so ``python -m repro.cli chaos-test --seed N`` injects the exact
same faults at the exact same frame counts on every run, and a failure
reproduces from nothing but its seed.

Two event families share the schedule:

* **wire faults** (``delay`` / ``reset`` / ``truncate`` / ``corrupt`` /
  ``stall``) fire inside a :class:`~repro.chaos.transport.FaultyTransport`
  proxy when its monotone ``reports``-frame counter reaches
  ``event.frame``;
* **process faults** (``kill`` / ``sigstop``) fire in the
  :class:`~repro.chaos.runner.ChaosRunner` send loop when the client's
  batch send index reaches ``event.frame``, via the cluster supervisor.

``corrupt`` is deliberately excluded from the client→router leg: the
router *silently drops* undecodable ``reports`` frames (they are
fire-and-forget, dropped-and-accounted like the single server), so a
corrupted client frame would be undetectable loss rather than a
recoverable fault.  On the router→shard leg corruption is safe to inject:
the frame is already journaled, the shard rejects-and-closes, and the
replay redelivers the original bytes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.rng import RandomState, as_generator

__all__ = [
    "CLIENT_WIRE_KINDS",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "MEMBERSHIP_KINDS",
    "PROCESS_KINDS",
    "WIRE_KINDS",
]

#: every fault kind the harness can inject, in canonical order (the
#: generator cycles this order first, so a schedule with >= 7 events is
#: guaranteed to cover every kind)
FAULT_KINDS = (
    "delay", "reset", "truncate", "corrupt", "stall", "kill", "sigstop",
)

#: membership-mode fault kinds (``chaos-test --membership``), injected by
#: the runner around elastic add/drain transitions rather than by a wire
#: proxy.  Deliberately *not* folded into :data:`FAULT_KINDS`: the default
#: :meth:`FaultSchedule.generate` cycles that tuple, so extending it would
#: silently change every existing seeded schedule and its digest.
#:
#: * ``drain-race`` — SIGKILL the shard being drained right as the drain
#:   begins, so the handoff pull lands on a dead process and must recover
#:   through snapshot-restore + journal replay;
#: * ``torn-journal`` — stop the router mid-stream, tear the tail of a
#:   per-shard frame journal, and resume with a *new* router over the same
#:   directories (exercises torn-tail truncation + §7.1 dedup end to end);
#: * ``corrupt-snapshot`` — checkpoint twice back to back, flip bytes in
#:   the newest snapshot, then SIGKILL its shard, so the restart must walk
#:   back to the newest *valid* restore point.
MEMBERSHIP_KINDS = ("drain-race", "torn-journal", "corrupt-snapshot")

#: kinds a :class:`~repro.chaos.transport.FaultyTransport` proxy injects
WIRE_KINDS = ("delay", "reset", "truncate", "corrupt", "stall")

#: wire kinds allowed on the client→router leg (no ``corrupt``: the router
#: drops undecodable reports frames silently, which would be undetectable
#: loss instead of a recoverable fault)
CLIENT_WIRE_KINDS = ("delay", "reset", "truncate", "stall")

#: kinds the runner injects through the cluster supervisor
PROCESS_KINDS = ("kill", "sigstop")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is ``"client"`` (the client→router proxy) or ``"shard-K"``
    (the router→shard-K proxy, or shard K's process for ``kill`` /
    ``sigstop``).  ``frame`` is the proxy's ``reports``-frame count for
    wire faults and the client's batch send index for process faults.
    ``arg`` parameterizes the kind: delay duration in seconds for
    ``delay``, SIGCONT resume delay in seconds for ``sigstop``, unused
    otherwise.
    """

    target: str
    frame: int
    kind: str
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS and self.kind not in MEMBERSHIP_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.frame < 0:
            raise ValueError("fault frame must be >= 0")
        if self.kind in PROCESS_KINDS or self.kind in (
            "corrupt", "drain-race", "corrupt-snapshot"
        ):
            if not self.target.startswith("shard-"):
                raise ValueError(
                    f"{self.kind!r} faults must target a shard, "
                    f"got {self.target!r}"
                )
        if self.kind == "torn-journal" and self.target != "router":
            raise ValueError(f"'torn-journal' faults must target the "
                             f"router, got {self.target!r}")

    @property
    def shard(self) -> Optional[int]:
        """Shard index for ``shard-K`` targets, ``None`` for the client."""
        if self.target.startswith("shard-"):
            return int(self.target.split("-", 1)[1])
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "frame": self.frame,
            "kind": self.kind,
            "arg": self.arg,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        return cls(
            target=str(data["target"]),
            frame=int(data["frame"]),  # type: ignore[call-overload]
            kind=str(data["kind"]),
            arg=float(data.get("arg", 0.0)),  # type: ignore[arg-type]
        )


class FaultSchedule:
    """An ordered, seed-reproducible list of :class:`FaultEvent` records."""

    def __init__(self, events: Sequence[FaultEvent],
                 seed: Optional[int] = None) -> None:
        self.events = list(events)
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def kinds(self) -> Tuple[str, ...]:
        """Distinct fault kinds present, in canonical order."""
        present = {event.kind for event in self.events}
        return tuple(kind for kind in FAULT_KINDS + MEMBERSHIP_KINDS
                     if kind in present)

    def membership_faults(self) -> Dict[int, List[FaultEvent]]:
        """``send index -> events`` map of the membership-mode faults."""
        out: Dict[int, List[FaultEvent]] = {}
        for event in self.events:
            if event.kind in MEMBERSHIP_KINDS:
                out.setdefault(event.frame, []).append(event)
        return out

    def wire_faults(self, target: str) -> Dict[int, FaultEvent]:
        """``frame -> event`` map of the wire faults aimed at ``target``."""
        return {
            event.frame: event
            for event in self.events
            if event.target == target and event.kind in WIRE_KINDS
        }

    def process_faults(self) -> Dict[int, List[FaultEvent]]:
        """``send index -> events`` map of the kill/sigstop faults."""
        out: Dict[int, List[FaultEvent]] = {}
        for event in self.events:
            if event.kind in PROCESS_KINDS:
                out.setdefault(event.frame, []).append(event)
        return out

    @classmethod
    def generate(
        cls,
        seed: RandomState,
        num_frames: int,
        num_shards: int,
        extra_events: int = 3,
    ) -> "FaultSchedule":
        """Derive a schedule covering **every** fault kind from one seed.

        The canonical :data:`FAULT_KINDS` order is cycled first — one event
        per kind, then ``extra_events`` more drawn uniformly — so any
        generated schedule exercises all seven kinds.  Placement keeps the
        faults live:

        * shard-leg wire faults land at frame counts 1–4, which every
          shard's proxy reaches under any routing partition;
        * client-leg wire faults and process faults land in the first half
          of the client's send sequence, so they fire before the stream
          runs out.

        Events are deduplicated on ``(target, frame)``: one fault per
        counter value keeps each firing unambiguous.
        """
        if num_frames < 2:
            raise ValueError("num_frames must be >= 2 to place faults")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        rng = as_generator(seed)
        wanted = list(FAULT_KINDS)
        wanted += [
            FAULT_KINDS[int(i)]
            for i in rng.integers(0, len(FAULT_KINDS), size=max(0, extra_events))
        ]
        events: List[FaultEvent] = []
        used: set = set()
        send_high = max(2, num_frames // 2)
        for kind in wanted:
            for _ in range(16):  # bounded redraws around (target, frame) clashes
                if kind in PROCESS_KINDS or kind == "corrupt":
                    target = f"shard-{int(rng.integers(0, num_shards))}"
                elif kind in CLIENT_WIRE_KINDS and rng.random() < 0.5:
                    target = "client"
                else:
                    target = f"shard-{int(rng.integers(0, num_shards))}"
                if kind in PROCESS_KINDS:
                    frame = int(rng.integers(1, send_high))
                elif target == "client":
                    frame = int(rng.integers(1, send_high))
                else:
                    frame = int(rng.integers(1, 5))
                if (target, frame) in used:
                    continue
                used.add((target, frame))
                if kind == "delay":
                    arg = round(0.05 + 0.15 * float(rng.random()), 3)
                elif kind == "sigstop":
                    arg = round(0.5 + 0.5 * float(rng.random()), 3)
                else:
                    arg = 0.0
                events.append(FaultEvent(target, frame, kind, arg))
                break
        events.sort(key=lambda e: (e.frame, e.target, e.kind))
        seed_int = None if seed is None else (
            int(seed) if isinstance(seed, (int, np.integer)) else None
        )
        return cls(events, seed=seed_int)

    @classmethod
    def generate_membership(
        cls,
        seed: RandomState,
        num_frames: int,
        num_shards: int,
        add_frame: int,
        drain_frame: int,
        drain_shard: int = 0,
    ) -> "FaultSchedule":
        """A seeded schedule for ``chaos-test --membership``.

        The runner scripts an ``add_shard`` at send index ``add_frame`` and
        a drain of ``drain_shard`` at ``drain_frame``; this schedule aims
        the membership fault kinds at that choreography:

        * ``drain-race`` fires exactly at ``drain_frame`` against the shard
          being drained — the SIGKILL races the handoff pull;
        * ``torn-journal`` fires at a seeded index strictly between the add
          and the drain, while all three shards hold journaled traffic;
        * ``corrupt-snapshot`` fires at a seeded index before the add,
          against a seeded original shard;
        * one plain ``kill`` fires shortly after the add against the *new*
          shard (``shard-num_shards``) — a crash inside the joining shard's
          first epochs must recover like any other.
        """
        if not 0 < add_frame < drain_frame < num_frames:
            raise ValueError(
                f"need 0 < add_frame < drain_frame < num_frames, got "
                f"add={add_frame} drain={drain_frame} frames={num_frames}"
            )
        if not 0 <= drain_shard < num_shards:
            raise ValueError(f"drain_shard {drain_shard} out of range")
        rng = as_generator(seed)
        corrupt_at = int(rng.integers(1, add_frame))
        corrupt_target = int(rng.integers(0, num_shards))
        tear_at = int(rng.integers(add_frame + 1, drain_frame))
        kill_at = min(drain_frame - 1, add_frame + 1
                      + int(rng.integers(0, max(1, drain_frame
                                                - add_frame - 1))))
        events = [
            FaultEvent(f"shard-{corrupt_target}", corrupt_at,
                       "corrupt-snapshot"),
            FaultEvent(f"shard-{num_shards}", kill_at, "kill"),
            FaultEvent("router", tear_at, "torn-journal"),
            FaultEvent(f"shard-{drain_shard}", drain_frame, "drain-race"),
        ]
        events.sort(key=lambda e: (e.frame, e.target, e.kind))
        seed_int = None if seed is None else (
            int(seed) if isinstance(seed, (int, np.integer)) else None
        )
        return cls(events, seed=seed_int)

    # ----- persistence (the CI failure artifact) --------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "digest": self.digest(),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSchedule":
        events = [
            FaultEvent.from_dict(entry)
            for entry in data.get("events", [])  # type: ignore[union-attr]
        ]
        seed = data.get("seed")
        return cls(events, seed=int(seed) if seed is not None else None)  # type: ignore[call-overload]

    def digest(self) -> str:
        """sha256 of the canonical event list — the replay fingerprint."""
        canonical = json.dumps(
            [event.to_dict() for event in self.events],
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def save(self, path: Union[str, Path]) -> Path:
        """Write the schedule as JSON (uploaded by CI when a run fails)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultSchedule":
        return cls.from_dict(json.loads(Path(path).read_text()))
