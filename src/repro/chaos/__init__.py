"""Deterministic fault injection for the cluster serving tier.

The chaos harness answers one question about the sharded service
(:mod:`repro.cluster`): does its exactness guarantee — served answers
bit-identical to the offline engine — survive real failures, or only the
happy path?  Every component is seeded and wall-clock-free, so a failing
run replays from its integer seed alone (``docs/chaos.md``):

* :class:`~repro.chaos.schedule.FaultSchedule` — derives *which* fault
  fires at *which* frame count from one seed: connection resets,
  mid-frame truncation, bit-flipped headers, stalled reads, injected
  delays, shard SIGKILL and SIGSTOP.
* :class:`~repro.chaos.transport.FaultyTransport` — a frame-aware asyncio
  proxy threaded between client↔router and router↔shard connections;
  it counts ``reports`` frames and injects the scheduled wire faults at
  exact counts, independent of timing.
* :class:`~repro.chaos.runner.ChaosRunner` — drives the engine's
  canonical chunk stream through the faulted cluster and asserts the
  served queries equal :func:`repro.engine.run_simulation` bit for bit;
  surfaced as ``python -m repro.cli chaos-test``.

The harness exists to exercise the hardening it forced: explicit
deadlines on every cluster exchange, sequence-number idempotent journal
replay (``docs/wire-protocol.md`` §7.1), bounded recovery ladders with
seeded backoff, and the typed
:class:`~repro.server.client.ShardUnavailable` failure.
"""

from repro.chaos.runner import ChaosResult, ChaosRunner, ChaosSupervisor
from repro.chaos.schedule import (
    CLIENT_WIRE_KINDS,
    FAULT_KINDS,
    MEMBERSHIP_KINDS,
    PROCESS_KINDS,
    WIRE_KINDS,
    FaultEvent,
    FaultSchedule,
)
from repro.chaos.transport import FaultyTransport

__all__ = [
    "CLIENT_WIRE_KINDS",
    "ChaosResult",
    "ChaosRunner",
    "ChaosSupervisor",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultyTransport",
    "MEMBERSHIP_KINDS",
    "PROCESS_KINDS",
    "WIRE_KINDS",
]
